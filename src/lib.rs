//! # Naplet-RS
//!
//! A Rust reproduction of *"Naplet: A Flexible Mobile Agent Framework
//! for Network-Centric Applications"* (Cheng-Zhong Xu, IPPS 2002).
//!
//! Naplets are mobile agents: they carry code, data and running state
//! between servers, travelling along **structured itineraries**
//! (`Singleton`/`Seq`/`Alt`/`Par` with conditional visits and
//! post-actions), communicating through a **post-office messenger**
//! that chases moving agents, controlled by per-server **monitors,
//! security policies and resource managers**, and reaching privileged
//! host services only through **service channels**.
//!
//! This crate is a facade over the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `naplet-core` | agent model: ids, credentials, state, itineraries, behaviours |
//! | [`vm`] | `naplet-vm` | mobile bytecode with serializable execution state (strong mobility) |
//! | [`net`] | `naplet-net` | metered in-process network fabric |
//! | [`obs`] | `naplet-obs` | journey tracing + metrics registry with deterministic exports |
//! | [`server`] | `naplet-server` | the NapletServer and the simulation runtime |
//! | [`snmp`] | `naplet-snmp` | SNMP/MIB substrate with simulated devices |
//! | [`man`] | `naplet-man` | the network-management application (paper §6) + baseline |
//!
//! ## Quickstart
//!
//! ```
//! use naplet::prelude::*;
//!
//! // a world of three servers on a simulated LAN
//! let fabric = Fabric::lan();
//! let mut rt = SimRuntime::new(fabric);
//! let mut registry = CodebaseRegistry::new();
//! registry.register("hello", 1024, || Greeter);
//! for host in ["home", "s0", "s1"] {
//!     let mut cfg = ServerConfig::open(host, LocationMode::ForwardingTrace);
//!     cfg.codebase = registry.clone();
//!     rt.add_server(cfg);
//! }
//!
//! // an agent whose business logic greets every host it visits
//! struct Greeter;
//! impl NapletBehavior for Greeter {
//!     fn on_start(&mut self, ctx: &mut dyn NapletContext) -> naplet::core::Result<()> {
//!         let line = format!("hello from {}", ctx.host_name());
//!         ctx.report_home(Value::from(line))
//!     }
//! }
//!
//! let key = SigningKey::new("demo", b"secret");
//! let itinerary = Itinerary::new(Pattern::seq_of_hosts(&["s0", "s1"], None)).unwrap();
//! let naplet = Naplet::create(
//!     &key, "demo", "home", Millis(0), "hello",
//!     AgentKind::Native, itinerary, vec![],
//! ).unwrap();
//!
//! rt.launch(naplet).unwrap();
//! rt.run_to_quiescence(100_000);
//! assert_eq!(rt.drain_reports("home").len(), 2);
//! ```

pub use naplet_core as core;
pub use naplet_man as man;
pub use naplet_net as net;
pub use naplet_obs as obs;
pub use naplet_server as server;
pub use naplet_snmp as snmp;
pub use naplet_vm as vm;

/// The names most programs need, in one import.
pub mod prelude {
    pub use naplet_core::behavior::{ActionRegistry, NapletBehavior, Operable};
    pub use naplet_core::clock::{Clock, Millis};
    pub use naplet_core::codebase::CodebaseRegistry;
    pub use naplet_core::context::NapletContext;
    pub use naplet_core::credential::SigningKey;
    pub use naplet_core::itinerary::{ActionSpec, Guard, Itinerary, Pattern, Step, Visit};
    pub use naplet_core::message::{ControlVerb, Payload, Sender};
    pub use naplet_core::naplet::{AgentKind, Naplet};
    pub use naplet_core::value::Value;
    pub use naplet_core::NapletId;
    pub use naplet_net::{Bandwidth, Fabric, LatencyModel, TrafficClass};
    pub use naplet_obs::{
        chrome_trace_json, render_event_log, MetricsRegistry, ObsSink, TraceEvent, TraceKind,
        Tracer,
    };
    pub use naplet_server::{
        LocationMode, MonitorPolicy, NapletServer, Policy, ServerConfig, SimRuntime,
    };
}
