//! Workspace-level integration tests: scenarios that span every crate
//! through the public facade (`naplet::prelude`).

use naplet::man::{ManWorld, NET_MANAGEMENT};
use naplet::prelude::*;
use naplet::server::{Matcher, Permission};
use naplet::snmp::oids;

fn man_world(devices: usize) -> ManWorld {
    let mut w = ManWorld::build(
        devices,
        4,
        LatencyModel::Constant(3),
        Bandwidth::fast_ethernet(),
        99,
    );
    w.tick_devices(20_000);
    w
}

#[test]
fn both_management_paradigms_return_identical_stable_data() {
    let mut w = man_world(4);
    // stable (non-evolving) scalars only
    let vars = [oids::sys_name(), oids::sys_location(), oids::if_number()];
    let agent = w.agent_poll(&vars, true, None).unwrap();
    let central = w.centralized_poll(&vars, false).unwrap();
    assert_eq!(agent.per_device.len(), 4);
    for host in w.devices.clone() {
        let a = agent
            .per_device
            .get(&host)
            .unwrap()
            .as_list()
            .unwrap()
            .to_vec();
        let c = central
            .per_device
            .get(&host)
            .unwrap()
            .as_list()
            .unwrap()
            .to_vec();
        assert_eq!(a.len(), c.len(), "host {host}");
        for (x, y) in a.iter().zip(c.iter()) {
            assert_eq!(x.get("value"), y.get("value"), "host {host}");
        }
    }
}

#[test]
fn vm_and_native_agents_collect_the_same_variables() {
    let mut w = man_world(3);
    let vars = [oids::sys_name(), oids::if_number()];
    let native = w.agent_poll(&vars, false, None).unwrap();
    let vm = w.vm_agent_poll(&vars).unwrap();
    for host in w.devices.clone() {
        let n = native
            .per_device
            .get(&host)
            .unwrap()
            .as_list()
            .unwrap()
            .to_vec();
        let v = vm
            .per_device
            .get(&host)
            .unwrap()
            .as_list()
            .unwrap()
            .to_vec();
        assert_eq!(n.len(), v.len(), "host {host}");
        for (x, y) in n.iter().zip(v.iter()) {
            assert_eq!(x.get("value"), y.get("value"), "host {host}");
        }
    }
}

#[test]
fn role_based_policy_gates_the_privileged_service() {
    let mut w = man_world(2);
    // tighten every device's policy: only role=net-mgmt may open the
    // NetManagement channel (plus the basic travel permissions)
    for host in w.devices.clone() {
        let mut policy = Policy::deny_all();
        policy.add_rule(
            Matcher::any().with_attribute("role", "net-mgmt"),
            [
                Permission::Launch,
                Permission::Landing,
                Permission::Clone,
                Permission::Messaging,
                Permission::PrivilegedService(NET_MANAGEMENT.into()),
            ],
        );
        policy.add_rule(
            Matcher::any(),
            [
                Permission::Launch,
                Permission::Landing,
                Permission::Clone,
                Permission::Messaging,
            ],
        );
        w.rt.server_mut(&host)
            .unwrap()
            .security_mut()
            .set_policy(policy);
    }

    // the NM naplet carries role=net-mgmt and still works
    let vars = [oids::sys_name()];
    let ok = w.agent_poll(&vars, false, None).unwrap();
    assert_eq!(ok.per_device.len(), 2);

    // an agent without the role is denied at channel allocation
    struct Snooper;
    impl NapletBehavior for Snooper {
        fn on_start(&mut self, ctx: &mut dyn NapletContext) -> naplet::core::Result<()> {
            let result = ctx.channel_exchange(NET_MANAGEMENT, Value::from("1.3.6.1.2.1.1.5"));
            ctx.report_home(Value::map([("denied", Value::Bool(result.is_err()))]))
        }
    }
    let mut registry = CodebaseRegistry::new();
    registry.register("snooper", 512, || Snooper);
    // snooper's codebase must exist on device servers too: widen the
    // world registry by re-registering on the NOC-launched route.
    // ManWorld servers share a registry built at construction; install
    // the snooper codebase into each server's registry is not exposed,
    // so run the snooper in its own small world instead.
    let fabric = Fabric::lan();
    let mut rt = SimRuntime::new(fabric);
    for host in ["home", "dev"] {
        let mut cfg = ServerConfig::open(host, LocationMode::ForwardingTrace);
        cfg.codebase = registry.clone();
        rt.add_server(cfg);
    }
    // privileged service exists at `dev`, but policy denies everyone
    let mut policy = Policy::deny_all();
    policy.add_rule(
        Matcher::any(),
        [
            Permission::Launch,
            Permission::Landing,
            Permission::Messaging,
        ],
    );
    let dev = rt.server_mut("dev").unwrap();
    dev.resources
        .register_privileged(NET_MANAGEMENT, |io: &mut naplet::server::ChannelIo<'_>| {
            while let Some(v) = io.read_line() {
                io.write_line(v);
            }
            Ok(())
        });
    dev.security_mut().set_policy(policy);

    let key = SigningKey::new("mallory", b"k");
    let it = Itinerary::new(Pattern::seq_of_hosts(&["dev"], None)).unwrap();
    let naplet = Naplet::create(
        &key,
        "mallory",
        "home",
        Millis(0),
        "snooper",
        AgentKind::Native,
        it,
        vec![],
    )
    .unwrap();
    rt.launch(naplet).unwrap();
    rt.run_to_quiescence(100_000);
    let reports = rt.drain_reports("home");
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].1.get("denied"), Value::Bool(true));
}

#[test]
fn network_loss_strands_agents_but_is_accounted() {
    let mut w = man_world(3);
    w.rt.fabric().set_loss(0.9);
    let vars = [oids::sys_name()];
    // with heavy loss the round fails (handshakes or transfers die)
    let result = w.agent_poll(&vars, true, None);
    w.rt.fabric().set_loss(0.0);
    if result.is_err() {
        assert!(w.rt.dropped > 0, "drops must be accounted");
    }
    // the fabric heals: a later round succeeds
    let ok = w.agent_poll(&vars, true, None).unwrap();
    assert_eq!(ok.per_device.len(), 3);
}

#[test]
fn device_workload_is_visible_through_agents_over_time() {
    let mut w = man_world(1);
    let vars = [oids::sys_uptime()];
    let first = w.agent_poll(&vars, false, None).unwrap();
    w.tick_devices(50_000);
    let second = w.agent_poll(&vars, false, None).unwrap();
    let read = |o: &naplet::man::PollOutcome| {
        o.per_device["d0"].as_list().unwrap()[0]
            .get("value")
            .as_int()
            .unwrap()
    };
    assert!(read(&second) > read(&first), "uptime must advance");
}

#[test]
fn facade_prelude_supports_full_agent_lifecycle() {
    // condensed version of the crate-level doc example
    struct Greeter;
    impl NapletBehavior for Greeter {
        fn on_start(&mut self, ctx: &mut dyn NapletContext) -> naplet::core::Result<()> {
            let line = format!("hello from {}", ctx.host_name());
            ctx.report_home(Value::from(line))
        }
    }
    let mut registry = CodebaseRegistry::new();
    registry.register("hello", 1024, || Greeter);
    let mut rt = SimRuntime::new(Fabric::lan());
    for host in ["home", "s0", "s1"] {
        let mut cfg = ServerConfig::open(host, LocationMode::HomeManagers);
        cfg.codebase = registry.clone();
        rt.add_server(cfg);
    }
    let key = SigningKey::new("demo", b"secret");
    let itinerary = Itinerary::new(Pattern::seq_of_hosts(&["s0", "s1"], None)).unwrap();
    let naplet = Naplet::create(
        &key,
        "demo",
        "home",
        Millis(0),
        "hello",
        AgentKind::Native,
        itinerary,
        vec![],
    )
    .unwrap();
    rt.launch(naplet).unwrap();
    rt.run_to_quiescence(100_000);
    let reports = rt.drain_reports("home");
    assert_eq!(reports.len(), 2);
    assert_eq!(reports[0].1, Value::from("hello from s0"));
    assert_eq!(reports[1].1, Value::from("hello from s1"));
}
