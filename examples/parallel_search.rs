//! Parallel search with clones, guards and termination by system
//! message — the paper's §3 motivating scenario: "in the case of a
//! parallel search, naplets need to communicate with each other about
//! their latest search results. Success of the search in a naplet may
//! need to terminate the execution of the others."
//!
//! A fleet of clones fans out over two halves of a server pool looking
//! for the host that stores a wanted item; whichever clone finds it
//! reports home, and the owner terminates the rest.
//!
//! ```text
//! cargo run --example parallel_search
//! ```

use naplet::prelude::*;

/// Searches the host's catalog service for the wanted item.
struct Searcher;

impl NapletBehavior for Searcher {
    fn on_start(&mut self, ctx: &mut dyn NapletContext) -> naplet::core::Result<()> {
        let wanted = ctx.state().get("wanted");
        let found = ctx.call_service("catalog.lookup", wanted.clone())?;
        if found.is_truthy() {
            let host = ctx.host_name().to_string();
            ctx.state().set("found-at", host.clone());
            ctx.report_home(Value::map([
                ("found", Value::Bool(true)),
                ("host", Value::Str(host)),
                ("item", wanted),
            ]))?;
        }
        Ok(())
    }
}

fn main() {
    let fabric = Fabric::lan();
    let mut rt = SimRuntime::new(fabric);
    let mut registry = CodebaseRegistry::new();
    registry.register("naplet://code/searcher.jar", 4096, || Searcher);

    let hosts: Vec<String> = (0..8).map(|i| format!("shop-{i}")).collect();
    let treasure_host = "shop-5";
    for host in std::iter::once("home".to_string()).chain(hosts.iter().cloned()) {
        let mut cfg = ServerConfig::open(&host, LocationMode::HomeManagers);
        cfg.codebase = registry.clone();
        let has_item = host == treasure_host;
        let server = rt.add_server(cfg);
        server
            .resources
            .register_open("catalog.lookup", move |_item: Value| {
                Ok(Value::Bool(has_item))
            });
    }

    // par(seq(first half), seq(second half)) with conditional visits:
    // each clone keeps searching only while it has not found the item
    let keep_going = Guard::not(Guard::state_truthy("found-at"));
    let refs: Vec<&str> = hosts.iter().map(String::as_str).collect();
    let (left, right) = refs.split_at(refs.len() / 2);
    let itinerary = Itinerary::new(Pattern::par(vec![
        Pattern::conditional_route(left, keep_going.clone()),
        Pattern::conditional_route(right, keep_going),
    ]))
    .expect("valid itinerary");

    let key = SigningKey::new("demo", b"search-secret");
    let mut naplet = Naplet::create(
        &key,
        "demo",
        "home",
        Millis(0),
        "naplet://code/searcher.jar",
        AgentKind::Native,
        itinerary,
        vec![],
    )
    .expect("naplet built");
    naplet.state.set("wanted", "ipps-2002-proceedings");

    let family = naplet.id().clone();
    rt.launch(naplet).expect("launched");

    // run until the first success report, then terminate the rest
    let mut winner = None;
    for _ in 0..200 {
        rt.run_until(Millis(rt.now().0 + 5));
        let reports = rt.drain_reports("home");
        if let Some((id, body)) = reports.into_iter().next() {
            winner = Some((id, body));
            break;
        }
    }
    let (winner_id, body) = winner.expect("some clone finds the item");
    println!(
        "{} found `{}` at {} — terminating the other branch",
        winner_id,
        body.get("item"),
        body.get("host")
    );

    // the other branch is the family too; terminate every sibling
    for k in 0..4u32 {
        let sibling = if k == 0 {
            family.clone()
        } else {
            family.clone_child(k)
        };
        if sibling != winner_id {
            let _ = rt.owner_post("home", sibling, Payload::System(ControlVerb::Terminate));
        }
    }
    rt.run_to_quiescence(100_000);

    assert_eq!(body.get("host"), Value::from(treasure_host));
    println!(
        "done at t={} — {} total transfers on the fabric",
        rt.now(),
        rt.fabric().stats().snapshot().total_messages()
    );
}
