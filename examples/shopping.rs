//! The paper's §2.1 motivating scenario: "a shopping agent that visits
//! hosts to collect price information about a product would keep the
//! gathered data in a **private** access state. The gathered
//! information can also be stored in a **protected** state so that a
//! naplet server can update a returning naplet with new information."
//!
//! Here a shopper tours three vendors. Its quote list is *private* —
//! vendor servers provably cannot read or tamper with competitors'
//! quotes — while a *protected* `home-deals` entry is writable only by
//! the home server, which refreshes it when the shopper returns. A
//! *public* `looking-for` entry advertises the product so vendors can
//! see what is wanted.
//!
//! ```text
//! cargo run --example shopping
//! ```

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use naplet::prelude::*;

/// Asks the vendor's quoting service for a price and records it
/// privately.
struct Shopper;

impl NapletBehavior for Shopper {
    fn on_start(&mut self, ctx: &mut dyn NapletContext) -> naplet::core::Result<()> {
        let host = ctx.host_name().to_string();
        if host == "home" {
            return Ok(()); // the homecoming visit: nothing to buy here
        }
        let product = ctx.state().get("looking-for");
        let quote = ctx.call_service("vendor.quote", product)?;
        ctx.state().update("quotes", |v| {
            if let Value::Map(m) = v {
                m.insert(host.clone(), quote.clone());
            }
        })?;
        Ok(())
    }
}

fn main() {
    let fabric = Fabric::lan();
    let mut rt = SimRuntime::new(fabric);
    let mut registry = CodebaseRegistry::new();
    registry.register("shopper", 2048, || Shopper);

    let vendors = [("acme", 149i64), ("bestbuy", 129), ("corner-shop", 137)];
    let snoop_attempts = Arc::new(AtomicU32::new(0));
    let tamper_attempts = Arc::new(AtomicU32::new(0));

    for host in std::iter::once("home").chain(vendors.iter().map(|(h, _)| *h)) {
        let mut cfg = ServerConfig::open(host, LocationMode::CentralDirectory("home".into()));
        cfg.codebase = registry.clone();
        let server = rt.add_server(cfg);
        if let Some((_, price)) = vendors.iter().find(|(h, _)| *h == host) {
            let price = *price;
            server
                .resources
                .register_open("vendor.quote", move |_product| Ok(Value::Int(price)));
            // a nosy vendor: on every arrival it tries to read the
            // shopper's private quotes and to tamper with them —
            // the protection modes refuse both
            let snoops = Arc::clone(&snoop_attempts);
            let tampers = Arc::clone(&tamper_attempts);
            server.set_arrival_state_hook(move |view| {
                if view.get("quotes").is_err() {
                    snoops.fetch_add(1, Ordering::Relaxed);
                }
                if view.set("quotes", Value::from("all ours!")).is_err() {
                    tampers.fetch_add(1, Ordering::Relaxed);
                }
                // the public advert IS visible — that's the point
                let _ = view
                    .get("looking-for")
                    .expect("public entries are readable");
            });
        } else {
            // the home server refreshes the protected entry when the
            // shopper returns (paper: "update a returning naplet with
            // new information")
            server.set_arrival_state_hook(move |view| {
                view.set("home-deals", Value::from("coupon: SAVE10"))
                    .expect("home is listed in the protected entry");
            });
        }
    }

    // itinerary: tour the vendors, come home, then report
    let key = SigningKey::new("buyer", b"wallet-secret");
    let itinerary = Itinerary::new(Pattern::seq_of_hosts(
        &["acme", "bestbuy", "corner-shop", "home"],
        None,
    ))
    .unwrap()
    .with_final_action(ActionSpec::ReportHome);

    let mut shopper = Naplet::create(
        &key,
        "buyer",
        "home",
        Millis(0),
        "shopper",
        AgentKind::Native,
        itinerary,
        vec![("role".into(), "shopping".into())],
    )
    .unwrap();
    shopper
        .state
        .set("quotes", Value::map::<[(&str, Value); 0], &str>([])); // private
    shopper
        .state
        .set_public("looking-for", "ipps-2002-proceedings");
    shopper
        .state
        .set_protected("home-deals", Value::Nil, ["home"]);

    rt.launch(shopper).unwrap();
    rt.run_to_quiescence(100_000);

    let reports = rt.drain_reports("home");
    let report = &reports[0].1;
    println!("shopping report:");
    let quotes = report.get("quotes");
    let mut best: Option<(String, i64)> = None;
    if let Value::Map(m) = &quotes {
        for (vendor, price) in m {
            println!("  {vendor:<12} {price}");
            let p = price.as_int().unwrap();
            if best.as_ref().map(|(_, b)| p < *b).unwrap_or(true) {
                best = Some((vendor.clone(), p));
            }
        }
    }
    let (vendor, price) = best.expect("quotes gathered");
    println!("best offer: {vendor} at {price}");
    println!(
        "home updated the protected entry: {}",
        report.get("home-deals")
    );
    println!(
        "vendors tried to snoop {}x and tamper {}x — all refused by state protection modes",
        snoop_attempts.load(Ordering::Relaxed),
        tamper_attempts.load(Ordering::Relaxed),
    );
    assert_eq!(vendor, "bestbuy");
    assert_eq!(report.get("home-deals"), Value::from("coupon: SAVE10"));
    assert_eq!(snoop_attempts.load(Ordering::Relaxed), 3);
    assert_eq!(tamper_attempts.load(Ordering::Relaxed), 3);
}
