//! Live deployment shape: every NapletServer runs on its own OS
//! thread, autonomously, over the threaded transport with real
//! (scaled) link delays — "the NapletServers are running autonomously
//! and they collectively form an agent flow space for the Naplets."
//!
//! The same event-handler servers the deterministic simulation drives
//! are pumped here by `naplet::server::LiveRuntime`.
//!
//! ```text
//! cargo run --example live_threaded
//! ```

use std::time::Duration;

use naplet::net::LatencyModel;
use naplet::prelude::*;
use naplet::server::LiveRuntime;

/// Greets and reports at every host.
struct Tourist;
impl NapletBehavior for Tourist {
    fn on_start(&mut self, ctx: &mut dyn NapletContext) -> naplet::core::Result<()> {
        let line = format!("visited {}", ctx.host_name());
        ctx.report_home(Value::from(line))
    }
}

fn main() {
    let fabric = Fabric::new(LatencyModel::Constant(3), Bandwidth::fast_ethernet(), 5);
    // 1000 µs of real sleep per modelled ms: real-time link delays
    let mut live = LiveRuntime::new(fabric, 1000);

    let mut registry = CodebaseRegistry::new();
    registry.register("tourist", 1024, || Tourist);

    for host in ["home", "lisbon", "detroit", "kyoto"] {
        let mut cfg = ServerConfig::open(host, LocationMode::HomeManagers);
        cfg.codebase = registry.clone();
        live.add_server(cfg);
    }

    let key = SigningKey::new("demo", b"live-secret");
    let it = Itinerary::new(Pattern::seq_of_hosts(&["lisbon", "detroit", "kyoto"], None)).unwrap();
    let naplet = Naplet::create(
        &key,
        "demo",
        "home",
        Millis(0),
        "tourist",
        AgentKind::Native,
        it,
        vec![],
    )
    .unwrap();
    live.launch(naplet).expect("launched");
    live.start();

    // give the agent a real second to tour the world
    std::thread::sleep(Duration::from_millis(1000));
    let stats = live.fabric().stats().snapshot();
    let servers = live.shutdown();

    println!("reports collected at home (live threads, real delays):");
    let home = servers
        .iter()
        .find(|(h, _)| h == "home")
        .expect("home server");
    for (id, report) in &home.1.reports {
        println!("  {id}: {report}");
    }
    assert_eq!(home.1.reports.len(), 3, "all three visits should report");
    println!(
        "fabric: {} transfers, {} bytes total",
        stats.total_messages(),
        stats.total_bytes()
    );
}
