//! Strong mobility: an agent written in Naplet VM assembly that
//! pauses *mid-loop* with `travel_next`, migrates — stack, locals and
//! program counter included — and resumes on the next host.
//!
//! Java Naplet restarts agents at `onStart()` after every hop (weak
//! mobility); the VM substrate carries the whole execution image, so
//! this program's loop variable survives migration.
//!
//! ```text
//! cargo run --example mobile_bytecode
//! ```

use naplet::prelude::*;

const AGENT_ASM: &str = r#"
.program census
.func main locals=2
    mklist 0
    store 0              ; survey results, accumulated ACROSS hosts
visit:
    ; ask the local open service how many users this host has
    const "census.population"
    nil
    hcall svc_call
    store 1
    ; entry = {host: <name>, population: <n>}
    const "host"
    hcall host_name
    const "population"
    load 1
    mkmap 2
    ; results.push(entry)
    load 0
    swap
    lpush
    store 0
    ; log progress: "surveyed <host>"
    const "surveyed "
    hcall host_name
    scat
    hcall log
    pop
    ; migrate; nil means the journey is over
    hcall travel_next
    dup
    jmpf finished
    pop
    jmp visit
finished:
    pop
    load 0
    hcall report         ; ship the accumulated survey home
    pop
    nil
    halt
.end
"#;

fn main() {
    // assemble once; the bytecode travels inside the naplet
    let program = naplet::vm::assemble(AGENT_ASM).expect("assembles");
    println!(
        "program `{}`: {} function(s), {} bytes on the wire\n",
        program.name,
        program.funcs.len(),
        program.wire_size()
    );
    println!("{}", naplet::vm::disassemble(&program));

    let fabric = Fabric::lan();
    let mut rt = SimRuntime::new(fabric);
    let hosts = ["home", "campus-a", "campus-b", "campus-c"];
    for (i, host) in hosts.iter().enumerate() {
        let cfg = ServerConfig::open(host, LocationMode::CentralDirectory("home".into()));
        let server = rt.add_server(cfg);
        server
            .resources
            .register_open("census.population", move |_| {
                Ok(Value::Int(1000 + 137 * i as i64))
            });
    }

    let image = naplet::vm::VmImage::new(program).expect("image");
    let itinerary = Itinerary::new(Pattern::seq_of_hosts(
        &["campus-a", "campus-b", "campus-c"],
        None,
    ))
    .expect("itinerary");
    let key = SigningKey::new("demo", b"vm-secret");
    let naplet = Naplet::create(
        &key,
        "demo",
        "home",
        Millis(0),
        "vm:census",
        AgentKind::Vm(image.to_wire().expect("serializable")),
        itinerary,
        vec![],
    )
    .expect("naplet built");

    rt.launch(naplet).expect("launched");
    rt.run_to_quiescence(100_000);

    for (id, report) in rt.drain_reports("home") {
        println!("census from {id}:");
        for entry in report.as_list().unwrap_or(&[]) {
            println!(
                "  {:<10} population {}",
                entry.get("host"),
                entry.get("population")
            );
        }
    }
}
