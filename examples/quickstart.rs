//! Quickstart: launch one naplet around three servers, watch it
//! gather data and report home.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use naplet::prelude::*;

/// The agent's business logic `S`: read the host's advertised load
//  via an open service and remember it.
struct LoadScout;

impl NapletBehavior for LoadScout {
    fn on_start(&mut self, ctx: &mut dyn NapletContext) -> naplet::core::Result<()> {
        let host = ctx.host_name().to_string();
        let load = ctx.call_service("sysinfo.load", Value::Nil)?;
        ctx.log(&format!("measured load {load} at {host}"));
        ctx.state().update("loads", |v| {
            if let Value::Map(m) = v {
                m.insert(host.clone(), load.clone());
            }
        })?;
        Ok(())
    }
}

fn main() {
    // 1. a simulated LAN with four hosts; record the journey so we can
    //    dump a trace at the end (metrics are always on, traces opt-in)
    let fabric = Fabric::lan();
    let mut rt = SimRuntime::new(fabric);
    rt.enable_tracing();

    // 2. every server knows the LoadScout codebase (lazy-loaded on
    //    first visit) and exposes an open `sysinfo.load` service
    let mut registry = CodebaseRegistry::new();
    registry.register("naplet://code/load-scout.jar", 2048, || LoadScout);

    for (i, host) in ["home", "alpha", "beta", "gamma"].iter().enumerate() {
        let mut cfg = ServerConfig::open(host, LocationMode::CentralDirectory("home".into()));
        cfg.codebase = registry.clone();
        let server = rt.add_server(cfg);
        server
            .resources
            .register_open("sysinfo.load", move |_args: Value| {
                Ok(Value::Float(0.25 * i as f64))
            });
    }

    // 3. create the naplet: identity, signed credential, itinerary
    let key = SigningKey::new("demo", b"quickstart-secret");
    let itinerary = Itinerary::new(Pattern::seq_of_hosts(&["alpha", "beta", "gamma"], None))
        .expect("valid itinerary")
        .with_final_action(ActionSpec::ReportHome);
    let mut naplet = Naplet::create(
        &key,
        "demo",
        "home",
        Millis(0),
        "naplet://code/load-scout.jar",
        AgentKind::Native,
        itinerary,
        vec![("role".into(), "load-scout".into())],
    )
    .expect("naplet built");
    naplet
        .state
        .set("loads", Value::map::<[(&str, Value); 0], &str>([]));

    // 4. launch and run the world to quiescence
    rt.launch(naplet).expect("launched");
    rt.run_to_quiescence(100_000);

    // 5. the report arrived at home
    for (id, report) in rt.drain_reports("home") {
        println!("report from {id}:");
        if let Value::Map(loads) = report.get("loads") {
            for (host, load) in loads {
                println!("  {host:<8} load {load}");
            }
        }
    }
    let snap = rt.fabric().stats().snapshot();
    println!(
        "\ntraffic: {} migrations ({} bytes), {} control transfers, {} code bytes",
        snap.messages(TrafficClass::Migration),
        snap.bytes(TrafficClass::Migration),
        snap.messages(TrafficClass::Control),
        snap.bytes(TrafficClass::Code),
    );

    // 6. the journey trace: one causally ordered event stream across
    //    every server, plus the always-on metrics registry
    let obs = rt.obs().snapshot();
    println!("\njourney trace ({} events; first 10):", obs.events.len());
    for line in render_event_log(&obs.events).lines().take(10) {
        println!("  {line}");
    }
    std::fs::write("quickstart-trace.json", chrome_trace_json(&obs.events))
        .expect("write trace file");
    println!("full trace in quickstart-trace.json — load it in chrome://tracing or Perfetto");
    print!("\n{}", obs.metrics.render_text());
}
