//! The paper's §6 application: mobile-agent network management vs the
//! conventional centralized SNMP manager, on the same simulated
//! network of devices.
//!
//! ```text
//! cargo run --release --example network_management
//! ```

use naplet::man::{health_oids, ManWorld};
use naplet::net::{Bandwidth, LatencyModel, TrafficClass};
use naplet::snmp::oids;

fn main() {
    // a NOC and 8 managed devices (4 interfaces each) on a WAN-ish fabric
    let mut world = ManWorld::build(8, 4, LatencyModel::Constant(20), Bandwidth::t1(), 7);
    world.tick_devices(60_000); // one minute of device workload
    world.warm().expect("code caches warm");

    // inject a fault for the diagnosis to find
    world
        .shared
        .get("d3")
        .unwrap()
        .lock()
        .inject_errors(2, 5_000);

    println!("== health poll: 16 variables on each of 8 devices ==");
    let vars = health_oids(16, 4);

    let agent = world.agent_poll(&vars, true, None).expect("agent round");
    println!(
        "mobile agents : {:>8} bytes, {:>5} virtual ms, {:>3} station ops",
        agent.total_bytes(),
        agent.completion_ms,
        agent.station_ops
    );

    let central = world.centralized_poll(&vars, true).expect("central round");
    println!(
        "centralized   : {:>8} bytes, {:>5} virtual ms, {:>3} station ops",
        central.total_bytes(),
        central.completion_ms,
        central.station_ops
    );

    println!("\n== interface-table walk (the round-trip-bound task) ==");
    let root = oids::if_entry();
    let agent = world.agent_walk(&root).expect("agent walk");
    let central = world.centralized_walk(&root).expect("central walk");
    println!(
        "mobile agents : {:>6} virtual ms   centralized: {:>6} virtual ms   ({:.1}x)",
        agent.completion_ms,
        central.completion_ms,
        central.completion_ms as f64 / agent.completion_ms.max(1) as f64
    );

    println!("\n== diagnosis with on-site filtering: only anomalies travel ==");
    let diag = naplet::man::diagnosis_oids(4);
    let filtered = world.agent_poll(&diag, true, Some(100)).expect("diagnosis");
    for (host, lines) in &filtered.per_device {
        let lines = lines.as_list().unwrap_or(&[]);
        if lines.is_empty() {
            continue;
        }
        println!("  {host}: {} anomalous counters", lines.len());
        for line in lines {
            println!("    {} = {}", line.get("oid"), line.get("value"));
        }
    }
    println!(
        "  report traffic: {} bytes (raw collection would ship every counter)",
        filtered.stats.bytes(TrafficClass::Message)
    );
}
