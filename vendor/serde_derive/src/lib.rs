//! Derive-macro half of the vendored `serde` shim.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for
//! the shapes the workspace actually uses: **non-generic** structs
//! (unit, tuple, named) and enums whose variants are unit, newtype,
//! tuple, or struct-like. Field and variant order defines the wire
//! layout, which is exactly the contract the positional `napcode`
//! codec in `naplet-core` relies on.
//!
//! The parser walks the raw `proc_macro::TokenStream` by hand (no
//! `syn`/`quote`), collecting only what code generation needs: item
//! kind, item name, field names / arities, and variant shapes. Field
//! *types* are never parsed — generated code lets inference pick them
//! up from the struct/variant constructors.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Shape of a struct body or enum-variant body.
enum Fields {
    Unit,
    /// Tuple-like; the payload is the field count.
    Tuple(usize),
    /// Named fields in declaration order.
    Named(Vec<String>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// ---------------------------------------------------------------------------
// parsing
// ---------------------------------------------------------------------------

/// Skip leading outer attributes (`#[...]`) and a visibility modifier.
fn skip_attrs_and_vis(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next(); // pub(crate) / pub(super)
                    }
                }
            }
            _ => return,
        }
    }
}

/// Consume tokens of one type expression, stopping after the `,` that
/// terminates it (or at end of stream). Tracks `<...>` nesting so the
/// comma in `BTreeMap<K, V>` does not end the field.
fn skip_type(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    let mut angle_depth = 0usize;
    let mut prev_dash = false;
    for tok in iter.by_ref() {
        if let TokenTree::Punct(p) = &tok {
            let c = p.as_char();
            match c {
                '<' => angle_depth += 1,
                '>' if !prev_dash => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => return,
                _ => {}
            }
            prev_dash = c == '-';
        } else {
            prev_dash = false;
        }
    }
}

/// Parse `name: Type, ...` named-field lists (struct bodies and
/// struct-variant bodies).
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut iter = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs_and_vis(&mut iter);
        match iter.next() {
            None => return Ok(fields),
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            Some(t) => return Err(format!("expected field name, found `{t}`")),
        }
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            t => return Err(format!("expected `:` after field name, found `{t:?}`")),
        }
        skip_type(&mut iter);
    }
}

/// Count the fields of a tuple struct / tuple variant.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut iter = stream.into_iter().peekable();
    let mut count = 0usize;
    loop {
        skip_attrs_and_vis(&mut iter);
        if iter.peek().is_none() {
            return count;
        }
        count += 1;
        skip_type(&mut iter);
    }
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut iter = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut iter);
        let name = match iter.next() {
            None => return Ok(variants),
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(t) => return Err(format!("expected variant name, found `{t}`")),
        };
        let fields = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                iter.next();
                Fields::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let named = parse_named_fields(g.stream())?;
                iter.next();
                Fields::Named(named)
            }
            _ => Fields::Unit,
        };
        // skip an explicit discriminant, then the trailing comma
        if let Some(TokenTree::Punct(p)) = iter.peek() {
            if p.as_char() == '=' {
                iter.next();
                for tok in iter.by_ref() {
                    if matches!(&tok, TokenTree::Punct(p) if p.as_char() == ',') {
                        break;
                    }
                }
                variants.push(Variant { name, fields });
                continue;
            }
        }
        match iter.next() {
            None => {
                variants.push(Variant { name, fields });
                return Ok(variants);
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                variants.push(Variant { name, fields });
            }
            Some(t) => return Err(format!("expected `,` after variant, found `{t}`")),
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut iter = input.into_iter().peekable();
    skip_attrs_and_vis(&mut iter);
    let kw = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        t => return Err(format!("expected `struct` or `enum`, found `{t:?}`")),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        t => return Err(format!("expected item name, found `{t:?}`")),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "serde shim derive does not support generic type `{name}`"
            ));
        }
    }
    match kw.as_str() {
        "struct" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Struct {
                name,
                fields: Fields::Named(parse_named_fields(g.stream())?),
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Item::Struct {
                    name,
                    fields: Fields::Tuple(count_tuple_fields(g.stream())),
                })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::Struct {
                name,
                fields: Fields::Unit,
            }),
            t => Err(format!("unsupported struct body: `{t:?}`")),
        },
        "enum" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Enum {
                name,
                variants: parse_variants(g.stream())?,
            }),
            t => Err(format!("expected enum body, found `{t:?}`")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

// ---------------------------------------------------------------------------
// Serialize codegen
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => (name, serialize_struct_body(name, fields)),
        Item::Enum { name, variants } => (name, serialize_enum_body(name, variants)),
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(warnings, clippy::all, clippy::pedantic)]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize<__S: ::serde::Serializer>(&self, __s: __S)\n\
                 -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn serialize_struct_body(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => {
            format!("::serde::Serializer::serialize_unit_struct(__s, \"{name}\")")
        }
        Fields::Tuple(1) => {
            format!("::serde::Serializer::serialize_newtype_struct(__s, \"{name}\", &self.0)")
        }
        Fields::Tuple(n) => {
            let mut out = format!(
                "let mut __t = ::serde::Serializer::serialize_tuple_struct(__s, \"{name}\", {n}usize)?;\n"
            );
            for i in 0..*n {
                out.push_str(&format!(
                    "::serde::ser::SerializeTupleStruct::serialize_field(&mut __t, &self.{i})?;\n"
                ));
            }
            out.push_str("::serde::ser::SerializeTupleStruct::end(__t)");
            out
        }
        Fields::Named(fs) => {
            let n = fs.len();
            let mut out = format!(
                "let mut __t = ::serde::Serializer::serialize_struct(__s, \"{name}\", {n}usize)?;\n"
            );
            for f in fs {
                out.push_str(&format!(
                    "::serde::ser::SerializeStruct::serialize_field(&mut __t, \"{f}\", &self.{f})?;\n"
                ));
            }
            out.push_str("::serde::ser::SerializeStruct::end(__t)");
            out
        }
    }
}

fn serialize_enum_body(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for (i, v) in variants.iter().enumerate() {
        let vn = &v.name;
        match &v.fields {
            Fields::Unit => arms.push_str(&format!(
                "{name}::{vn} => ::serde::Serializer::serialize_unit_variant(__s, \"{name}\", {i}u32, \"{vn}\"),\n"
            )),
            Fields::Tuple(1) => arms.push_str(&format!(
                "{name}::{vn}(__f0) => ::serde::Serializer::serialize_newtype_variant(__s, \"{name}\", {i}u32, \"{vn}\", __f0),\n"
            )),
            Fields::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                let mut arm = format!(
                    "{name}::{vn}({}) => {{\n\
                     let mut __t = ::serde::Serializer::serialize_tuple_variant(__s, \"{name}\", {i}u32, \"{vn}\", {n}usize)?;\n",
                    binds.join(", ")
                );
                for b in &binds {
                    arm.push_str(&format!(
                        "::serde::ser::SerializeTupleVariant::serialize_field(&mut __t, {b})?;\n"
                    ));
                }
                arm.push_str("::serde::ser::SerializeTupleVariant::end(__t)\n},\n");
                arms.push_str(&arm);
            }
            Fields::Named(fs) => {
                let n = fs.len();
                let mut arm = format!(
                    "{name}::{vn} {{ {} }} => {{\n\
                     let mut __t = ::serde::Serializer::serialize_struct_variant(__s, \"{name}\", {i}u32, \"{vn}\", {n}usize)?;\n",
                    fs.join(", ")
                );
                for f in fs {
                    arm.push_str(&format!(
                        "::serde::ser::SerializeStructVariant::serialize_field(&mut __t, \"{f}\", {f})?;\n"
                    ));
                }
                arm.push_str("::serde::ser::SerializeStructVariant::end(__t)\n},\n");
                arms.push_str(&arm);
            }
        }
    }
    format!("match self {{\n{arms}}}")
}

// ---------------------------------------------------------------------------
// Deserialize codegen
// ---------------------------------------------------------------------------

/// Emit `let __fK = ...next_element...` lines followed by a
/// constructor expression, for use inside a `visit_seq` body.
fn seq_field_lines(prefix: &str, count: usize) -> String {
    let mut out = String::new();
    for k in 0..count {
        out.push_str(&format!(
            "let {prefix}{k} = match ::serde::de::SeqAccess::next_element(&mut __seq)? {{\n\
                 ::core::option::Option::Some(__v) => __v,\n\
                 ::core::option::Option::None => return ::core::result::Result::Err(\n\
                     <__A::Error as ::serde::de::Error>::custom(\"missing field {k}\")),\n\
             }};\n"
        ));
    }
    out
}

/// A full `visit_seq`-based visitor declaration + an expression that
/// drives it through `$driver`.
fn seq_visitor(value_ty: &str, field_count: usize, constructor: &str, driver: &str) -> String {
    format!(
        "struct __Visitor;\n\
         impl<'de> ::serde::de::Visitor<'de> for __Visitor {{\n\
             type Value = {value_ty};\n\
             fn visit_seq<__A: ::serde::de::SeqAccess<'de>>(self, mut __seq: __A)\n\
                 -> ::core::result::Result<Self::Value, __A::Error> {{\n\
                 {lines}\n\
                 ::core::result::Result::Ok({constructor})\n\
             }}\n\
         }}\n\
         {driver}",
        lines = seq_field_lines("__f", field_count),
    )
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => (name, deserialize_struct_body(name, fields)),
        Item::Enum { name, variants } => (name, deserialize_enum_body(name, variants)),
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(warnings, clippy::all, clippy::pedantic)]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<__D: ::serde::Deserializer<'de>>(__d: __D)\n\
                 -> ::core::result::Result<Self, __D::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn quoted_list(names: &[String]) -> String {
    let quoted: Vec<String> = names.iter().map(|f| format!("\"{f}\"")).collect();
    quoted.join(", ")
}

fn deserialize_struct_body(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => format!(
            "struct __Visitor;\n\
             impl<'de> ::serde::de::Visitor<'de> for __Visitor {{\n\
                 type Value = {name};\n\
                 fn visit_unit<__E: ::serde::de::Error>(self)\n\
                     -> ::core::result::Result<Self::Value, __E> {{\n\
                     ::core::result::Result::Ok({name})\n\
                 }}\n\
             }}\n\
             ::serde::Deserializer::deserialize_unit_struct(__d, \"{name}\", __Visitor)"
        ),
        Fields::Tuple(1) => format!(
            "struct __Visitor;\n\
             impl<'de> ::serde::de::Visitor<'de> for __Visitor {{\n\
                 type Value = {name};\n\
                 fn visit_newtype_struct<__D2: ::serde::Deserializer<'de>>(self, __d2: __D2)\n\
                     -> ::core::result::Result<Self::Value, __D2::Error> {{\n\
                     ::core::result::Result::Ok({name}(::serde::Deserialize::deserialize(__d2)?))\n\
                 }}\n\
             }}\n\
             ::serde::Deserializer::deserialize_newtype_struct(__d, \"{name}\", __Visitor)"
        ),
        Fields::Tuple(n) => {
            let args: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
            let ctor = format!("{name}({})", args.join(", "));
            seq_visitor(
                name,
                *n,
                &ctor,
                &format!(
                    "::serde::Deserializer::deserialize_tuple_struct(__d, \"{name}\", {n}usize, __Visitor)"
                ),
            )
        }
        Fields::Named(fs) => {
            let inits: Vec<String> = fs
                .iter()
                .enumerate()
                .map(|(k, f)| format!("{f}: __f{k}"))
                .collect();
            let ctor = format!("{name} {{ {} }}", inits.join(", "));
            seq_visitor(
                name,
                fs.len(),
                &ctor,
                &format!(
                    "::serde::Deserializer::deserialize_struct(__d, \"{name}\", &[{}], __Visitor)",
                    quoted_list(fs)
                ),
            )
        }
    }
}

fn deserialize_enum_body(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for (i, v) in variants.iter().enumerate() {
        let vn = &v.name;
        match &v.fields {
            Fields::Unit => arms.push_str(&format!(
                "{i}u32 => {{\n\
                     ::serde::de::VariantAccess::unit_variant(__var)?;\n\
                     ::core::result::Result::Ok({name}::{vn})\n\
                 }}\n"
            )),
            Fields::Tuple(1) => arms.push_str(&format!(
                "{i}u32 => ::core::result::Result::Ok({name}::{vn}(\n\
                     ::serde::de::VariantAccess::newtype_variant(__var)?)),\n"
            )),
            Fields::Tuple(n) => {
                let args: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                arms.push_str(&format!(
                    "{i}u32 => {{\n\
                         struct __V{i};\n\
                         impl<'de> ::serde::de::Visitor<'de> for __V{i} {{\n\
                             type Value = {name};\n\
                             fn visit_seq<__A: ::serde::de::SeqAccess<'de>>(self, mut __seq: __A)\n\
                                 -> ::core::result::Result<Self::Value, __A::Error> {{\n\
                                 {lines}\n\
                                 ::core::result::Result::Ok({name}::{vn}({args}))\n\
                             }}\n\
                         }}\n\
                         ::serde::de::VariantAccess::tuple_variant(__var, {n}usize, __V{i})\n\
                     }}\n",
                    lines = seq_field_lines("__f", *n),
                    args = args.join(", "),
                ));
            }
            Fields::Named(fs) => {
                let inits: Vec<String> = fs
                    .iter()
                    .enumerate()
                    .map(|(k, f)| format!("{f}: __f{k}"))
                    .collect();
                arms.push_str(&format!(
                    "{i}u32 => {{\n\
                         struct __V{i};\n\
                         impl<'de> ::serde::de::Visitor<'de> for __V{i} {{\n\
                             type Value = {name};\n\
                             fn visit_seq<__A: ::serde::de::SeqAccess<'de>>(self, mut __seq: __A)\n\
                                 -> ::core::result::Result<Self::Value, __A::Error> {{\n\
                                 {lines}\n\
                                 ::core::result::Result::Ok({name}::{vn} {{ {inits} }})\n\
                             }}\n\
                         }}\n\
                         ::serde::de::VariantAccess::struct_variant(__var, &[{fields}], __V{i})\n\
                     }}\n",
                    lines = seq_field_lines("__f", fs.len()),
                    inits = inits.join(", "),
                    fields = quoted_list(fs),
                ));
            }
        }
    }
    let variant_names: Vec<String> = variants.iter().map(|v| v.name.clone()).collect();
    format!(
        "struct __Visitor;\n\
         impl<'de> ::serde::de::Visitor<'de> for __Visitor {{\n\
             type Value = {name};\n\
             fn visit_enum<__A: ::serde::de::EnumAccess<'de>>(self, __a: __A)\n\
                 -> ::core::result::Result<Self::Value, __A::Error> {{\n\
                 let (__idx, __var): (u32, __A::Variant) = ::serde::de::EnumAccess::variant(__a)?;\n\
                 match __idx {{\n\
                     {arms}\n\
                     __other => ::core::result::Result::Err(\n\
                         <__A::Error as ::serde::de::Error>::custom(\n\
                             ::std::format!(\"invalid variant index {{__other}} for enum {name}\"))),\n\
                 }}\n\
             }}\n\
         }}\n\
         ::serde::Deserializer::deserialize_enum(__d, \"{name}\", &[{vars}], __Visitor)",
        vars = quoted_list(&variant_names),
    )
}

// ---------------------------------------------------------------------------
// entry points
// ---------------------------------------------------------------------------

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen(&item)
            .parse()
            .expect("serde shim derive generated invalid Rust"),
        Err(msg) => format!("::core::compile_error!(\"serde shim derive: {msg}\");")
            .parse()
            .expect("compile_error emission failed"),
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}
