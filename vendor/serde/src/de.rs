//! Deserialization half of the vendored serde shim.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt::Display;
use std::hash::Hash;
use std::marker::PhantomData;

/// Error trait for deserializers.
pub trait Error: Sized + std::fmt::Debug + Display {
    /// Build an error from an arbitrary message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A type constructible from any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Stateful deserialization entry point; the stateless case is
/// `PhantomData<T>`, which forwards to [`Deserialize`].
pub trait DeserializeSeed<'de>: Sized {
    type Value;
    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error>;
}

impl<'de, T: Deserialize<'de>> DeserializeSeed<'de> for PhantomData<T> {
    type Value = T;
    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<T, D::Error> {
        T::deserialize(deserializer)
    }
}

macro_rules! visit_default {
    ($($method:ident : $ty:ty),+ $(,)?) => {
        $(
            fn $method<E: Error>(self, _v: $ty) -> Result<Self::Value, E> {
                Err(E::custom(concat!("unexpected ", stringify!($method))))
            }
        )+
    };
}

/// Receives values from a [`Deserializer`]; every method defaults to
/// an error so implementors only write the cases they expect.
pub trait Visitor<'de>: Sized {
    type Value;

    visit_default! {
        visit_bool: bool,
        visit_i8: i8,
        visit_i16: i16,
        visit_i32: i32,
        visit_i64: i64,
        visit_u8: u8,
        visit_u16: u16,
        visit_u32: u32,
        visit_u64: u64,
        visit_f32: f32,
        visit_f64: f64,
        visit_char: char,
    }

    fn visit_str<E: Error>(self, _v: &str) -> Result<Self::Value, E> {
        Err(E::custom("unexpected string"))
    }
    fn visit_borrowed_str<E: Error>(self, v: &'de str) -> Result<Self::Value, E> {
        self.visit_str(v)
    }
    fn visit_string<E: Error>(self, v: String) -> Result<Self::Value, E> {
        self.visit_str(&v)
    }
    fn visit_bytes<E: Error>(self, _v: &[u8]) -> Result<Self::Value, E> {
        Err(E::custom("unexpected bytes"))
    }
    fn visit_borrowed_bytes<E: Error>(self, v: &'de [u8]) -> Result<Self::Value, E> {
        self.visit_bytes(v)
    }
    fn visit_byte_buf<E: Error>(self, v: Vec<u8>) -> Result<Self::Value, E> {
        self.visit_bytes(&v)
    }
    fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::custom("unexpected none"))
    }
    fn visit_some<D: Deserializer<'de>>(self, _deserializer: D) -> Result<Self::Value, D::Error> {
        Err(D::Error::custom("unexpected some"))
    }
    fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::custom("unexpected unit"))
    }
    fn visit_newtype_struct<D: Deserializer<'de>>(
        self,
        _deserializer: D,
    ) -> Result<Self::Value, D::Error> {
        Err(D::Error::custom("unexpected newtype struct"))
    }
    fn visit_seq<A: SeqAccess<'de>>(self, _seq: A) -> Result<Self::Value, A::Error> {
        Err(A::Error::custom("unexpected sequence"))
    }
    fn visit_map<A: MapAccess<'de>>(self, _map: A) -> Result<Self::Value, A::Error> {
        Err(A::Error::custom("unexpected map"))
    }
    fn visit_enum<A: EnumAccess<'de>>(self, _data: A) -> Result<Self::Value, A::Error> {
        Err(A::Error::custom("unexpected enum"))
    }
}

/// Format driver: produces the serde data model.
pub trait Deserializer<'de>: Sized {
    type Error: Error;

    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        name: &'static str,
        variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_identifier<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_ignored_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;

    /// Whether the format is human readable (napcode is not).
    fn is_human_readable(&self) -> bool {
        true
    }
}

/// Access to the elements of a sequence.
pub trait SeqAccess<'de> {
    type Error: Error;
    fn next_element_seed<T: DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, Self::Error>;
    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error> {
        self.next_element_seed(PhantomData)
    }
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to the entries of a map.
pub trait MapAccess<'de> {
    type Error: Error;
    fn next_key_seed<K: DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, Self::Error>;
    fn next_value_seed<V: DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, Self::Error>;
    fn next_key<K: Deserialize<'de>>(&mut self) -> Result<Option<K>, Self::Error> {
        self.next_key_seed(PhantomData)
    }
    fn next_value<V: Deserialize<'de>>(&mut self) -> Result<V, Self::Error> {
        self.next_value_seed(PhantomData)
    }
    fn next_entry<K: Deserialize<'de>, V: Deserialize<'de>>(
        &mut self,
    ) -> Result<Option<(K, V)>, Self::Error> {
        match self.next_key()? {
            Some(k) => Ok(Some((k, self.next_value()?))),
            None => Ok(None),
        }
    }
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to the variant tag of an enum.
pub trait EnumAccess<'de>: Sized {
    type Error: Error;
    type Variant: VariantAccess<'de, Error = Self::Error>;
    fn variant_seed<V: DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant), Self::Error>;
    fn variant<V: Deserialize<'de>>(self) -> Result<(V, Self::Variant), Self::Error> {
        self.variant_seed(PhantomData)
    }
}

/// Access to the payload of an enum variant.
pub trait VariantAccess<'de>: Sized {
    type Error: Error;
    fn unit_variant(self) -> Result<(), Self::Error>;
    fn newtype_variant_seed<T: DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, Self::Error>;
    fn newtype_variant<T: Deserialize<'de>>(self) -> Result<T, Self::Error> {
        self.newtype_variant_seed(PhantomData)
    }
    fn tuple_variant<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
}

/// Conversion of a plain value into a [`Deserializer`], used for
/// enum variant indices.
pub trait IntoDeserializer<'de, E: Error> {
    type Deserializer: Deserializer<'de, Error = E>;
    fn into_deserializer(self) -> Self::Deserializer;
}

pub mod value {
    //! Deserializers over plain in-memory values.

    use super::*;

    /// Deserializer yielding a single `u32` (enum variant index).
    pub struct U32Deserializer<E> {
        value: u32,
        marker: PhantomData<E>,
    }

    impl<E> U32Deserializer<E> {
        pub fn new(value: u32) -> Self {
            U32Deserializer {
                value,
                marker: PhantomData,
            }
        }
    }

    macro_rules! forward_to_visit_u32 {
        ($($method:ident)+) => {
            $(
                fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
                    visitor.visit_u32(self.value)
                }
            )+
        };
    }

    impl<'de, E: Error> Deserializer<'de> for U32Deserializer<E> {
        type Error = E;

        forward_to_visit_u32! {
            deserialize_any deserialize_bool
            deserialize_i8 deserialize_i16 deserialize_i32 deserialize_i64
            deserialize_u8 deserialize_u16 deserialize_u32 deserialize_u64
            deserialize_f32 deserialize_f64 deserialize_char
            deserialize_str deserialize_string deserialize_bytes deserialize_byte_buf
            deserialize_option deserialize_unit deserialize_seq deserialize_map
            deserialize_identifier deserialize_ignored_any
        }

        fn deserialize_unit_struct<V: Visitor<'de>>(
            self,
            _name: &'static str,
            visitor: V,
        ) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }
        fn deserialize_newtype_struct<V: Visitor<'de>>(
            self,
            _name: &'static str,
            visitor: V,
        ) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }
        fn deserialize_tuple<V: Visitor<'de>>(
            self,
            _len: usize,
            visitor: V,
        ) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }
        fn deserialize_tuple_struct<V: Visitor<'de>>(
            self,
            _name: &'static str,
            _len: usize,
            visitor: V,
        ) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }
        fn deserialize_struct<V: Visitor<'de>>(
            self,
            _name: &'static str,
            _fields: &'static [&'static str],
            visitor: V,
        ) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }
        fn deserialize_enum<V: Visitor<'de>>(
            self,
            _name: &'static str,
            _variants: &'static [&'static str],
            visitor: V,
        ) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }
    }
}

impl<'de, E: Error> IntoDeserializer<'de, E> for u32 {
    type Deserializer = value::U32Deserializer<E>;
    fn into_deserializer(self) -> Self::Deserializer {
        value::U32Deserializer::new(self)
    }
}

// ---------------------------------------------------------------------------
// std impls
// ---------------------------------------------------------------------------

macro_rules! primitive_deserialize {
    ($($ty:ty => ($deserialize:ident, $visit:ident)),+ $(,)?) => {
        $(
            impl<'de> Deserialize<'de> for $ty {
                fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                    struct PrimitiveVisitor;
                    impl<'de> Visitor<'de> for PrimitiveVisitor {
                        type Value = $ty;
                        fn $visit<E: Error>(self, v: $ty) -> Result<$ty, E> {
                            Ok(v)
                        }
                    }
                    deserializer.$deserialize(PrimitiveVisitor)
                }
            }
        )+
    };
}

primitive_deserialize! {
    bool => (deserialize_bool, visit_bool),
    i8 => (deserialize_i8, visit_i8),
    i16 => (deserialize_i16, visit_i16),
    i32 => (deserialize_i32, visit_i32),
    i64 => (deserialize_i64, visit_i64),
    u8 => (deserialize_u8, visit_u8),
    u16 => (deserialize_u16, visit_u16),
    u32 => (deserialize_u32, visit_u32),
    u64 => (deserialize_u64, visit_u64),
    f32 => (deserialize_f32, visit_f32),
    f64 => (deserialize_f64, visit_f64),
    char => (deserialize_char, visit_char),
}

impl<'de> Deserialize<'de> for usize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let v = u64::deserialize(deserializer)?;
        usize::try_from(v).map_err(|_| D::Error::custom("usize out of range"))
    }
}

impl<'de> Deserialize<'de> for isize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let v = i64::deserialize(deserializer)?;
        isize::try_from(v).map_err(|_| D::Error::custom("isize out of range"))
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct StringVisitor;
        impl<'de> Visitor<'de> for StringVisitor {
            type Value = String;
            fn visit_str<E: Error>(self, v: &str) -> Result<String, E> {
                Ok(v.to_owned())
            }
            fn visit_string<E: Error>(self, v: String) -> Result<String, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_string(StringVisitor)
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct UnitVisitor;
        impl<'de> Visitor<'de> for UnitVisitor {
            type Value = ();
            fn visit_unit<E: Error>(self) -> Result<(), E> {
                Ok(())
            }
        }
        deserializer.deserialize_unit(UnitVisitor)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct OptionVisitor<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for OptionVisitor<T> {
            type Value = Option<T>;
            fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
                Ok(None)
            }
            fn visit_some<D: Deserializer<'de>>(
                self,
                deserializer: D,
            ) -> Result<Self::Value, D::Error> {
                T::deserialize(deserializer).map(Some)
            }
        }
        deserializer.deserialize_option(OptionVisitor(PhantomData))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

/// Visitor collecting a sequence into any `FromIterator` container.
struct SeqCollectVisitor<C, T> {
    marker: PhantomData<(C, T)>,
}

impl<'de, C, T> Visitor<'de> for SeqCollectVisitor<C, T>
where
    T: Deserialize<'de>,
    C: Default + Extend<T>,
{
    type Value = C;
    fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<C, A::Error> {
        let mut out = C::default();
        while let Some(item) = seq.next_element::<T>()? {
            out.extend(std::iter::once(item));
        }
        Ok(out)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_seq(SeqCollectVisitor {
            marker: PhantomData,
        })
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for VecDeque<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_seq(SeqCollectVisitor {
            marker: PhantomData,
        })
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for BTreeSet<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_seq(SeqCollectVisitor {
            marker: PhantomData,
        })
    }
}

impl<'de, T: Deserialize<'de> + Hash + Eq> Deserialize<'de> for HashSet<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_seq(SeqCollectVisitor {
            marker: PhantomData,
        })
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct ArrayVisitor<T, const N: usize>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>, const N: usize> Visitor<'de> for ArrayVisitor<T, N> {
            type Value = [T; N];
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
                let mut items = Vec::with_capacity(N);
                for _ in 0..N {
                    match seq.next_element::<T>()? {
                        Some(item) => items.push(item),
                        None => return Err(A::Error::custom("array too short")),
                    }
                }
                items
                    .try_into()
                    .map_err(|_| A::Error::custom("array length mismatch"))
            }
        }
        deserializer.deserialize_tuple(N, ArrayVisitor::<T, N>(PhantomData))
    }
}

impl<'de, T: Deserialize<'de>, U: Deserialize<'de>> Deserialize<'de> for Result<T, U> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct ResultVisitor<T, U>(PhantomData<(T, U)>);
        impl<'de, T: Deserialize<'de>, U: Deserialize<'de>> Visitor<'de> for ResultVisitor<T, U> {
            type Value = Result<T, U>;
            fn visit_enum<A: EnumAccess<'de>>(self, access: A) -> Result<Self::Value, A::Error> {
                let (idx, variant): (u32, A::Variant) = access.variant()?;
                match idx {
                    0 => variant.newtype_variant::<T>().map(Ok),
                    1 => variant.newtype_variant::<U>().map(Err),
                    other => Err(A::Error::custom(format!(
                        "invalid Result variant index {other}"
                    ))),
                }
            }
        }
        deserializer.deserialize_enum("Result", &["Ok", "Err"], ResultVisitor(PhantomData))
    }
}

struct MapCollectVisitor<C, K, V> {
    marker: PhantomData<(C, K, V)>,
}

impl<'de, K, V> Visitor<'de> for MapCollectVisitor<BTreeMap<K, V>, K, V>
where
    K: Deserialize<'de> + Ord,
    V: Deserialize<'de>,
{
    type Value = BTreeMap<K, V>;
    fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
        let mut out = BTreeMap::new();
        while let Some((k, v)) = map.next_entry::<K, V>()? {
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<'de, K, V> Visitor<'de> for MapCollectVisitor<HashMap<K, V>, K, V>
where
    K: Deserialize<'de> + Hash + Eq,
    V: Deserialize<'de>,
{
    type Value = HashMap<K, V>;
    fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
        let mut out = HashMap::new();
        while let Some((k, v)) = map.next_entry::<K, V>()? {
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_map(MapCollectVisitor::<BTreeMap<K, V>, K, V> {
            marker: PhantomData,
        })
    }
}

impl<'de, K: Deserialize<'de> + Hash + Eq, V: Deserialize<'de>> Deserialize<'de> for HashMap<K, V> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_map(MapCollectVisitor::<HashMap<K, V>, K, V> {
            marker: PhantomData,
        })
    }
}

macro_rules! tuple_deserialize {
    ($($len:expr => ($($idx:tt $T:ident),+))+) => {
        $(
            impl<'de, $($T: Deserialize<'de>),+> Deserialize<'de> for ($($T,)+) {
                fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                    struct TupleVisitor<$($T),+>(PhantomData<($($T,)+)>);
                    impl<'de, $($T: Deserialize<'de>),+> Visitor<'de> for TupleVisitor<$($T),+> {
                        type Value = ($($T,)+);
                        fn visit_seq<A: SeqAccess<'de>>(
                            self,
                            mut seq: A,
                        ) -> Result<Self::Value, A::Error> {
                            Ok((
                                $(
                                    match seq.next_element::<$T>()? {
                                        Some(v) => v,
                                        None => {
                                            return Err(A::Error::custom(concat!(
                                                "missing tuple element ",
                                                stringify!($idx)
                                            )))
                                        }
                                    },
                                )+
                            ))
                        }
                    }
                    deserializer.deserialize_tuple($len, TupleVisitor(PhantomData))
                }
            }
        )+
    };
}

tuple_deserialize! {
    1 => (0 T0)
    2 => (0 T0, 1 T1)
    3 => (0 T0, 1 T1, 2 T2)
    4 => (0 T0, 1 T1, 2 T2, 3 T3)
    5 => (0 T0, 1 T1, 2 T2, 3 T3, 4 T4)
    6 => (0 T0, 1 T1, 2 T2, 3 T3, 4 T4, 5 T5)
    7 => (0 T0, 1 T1, 2 T2, 3 T3, 4 T4, 5 T5, 6 T6)
    8 => (0 T0, 1 T1, 2 T2, 3 T3, 4 T4, 5 T5, 6 T6, 7 T7)
}
