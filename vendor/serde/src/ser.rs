//! Serialization half of the vendored serde shim.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt::Display;

/// Error trait for serializers.
pub trait Error: Sized + std::fmt::Debug + Display {
    /// Build an error from an arbitrary message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A value that can be serialized into any [`Serializer`].
pub trait Serialize {
    /// Feed `self` into `serializer`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// Format driver: receives the serde data model.
pub trait Serializer: Sized {
    /// Output produced on success.
    type Ok;
    /// Error type produced on failure.
    type Error: Error;
    /// Compound serializer for sequences.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for tuples.
    type SerializeTuple: SerializeTuple<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for tuple structs.
    type SerializeTupleStruct: SerializeTupleStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for tuple enum variants.
    type SerializeTupleVariant: SerializeTupleVariant<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for maps.
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for structs.
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for struct enum variants.
    type SerializeStructVariant: SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;

    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    fn serialize_i8(self, v: i8) -> Result<Self::Ok, Self::Error>;
    fn serialize_i16(self, v: i16) -> Result<Self::Ok, Self::Error>;
    fn serialize_i32(self, v: i32) -> Result<Self::Ok, Self::Error>;
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error>;
    fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error>;
    fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error>;
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error>;
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    fn serialize_char(self, v: char) -> Result<Self::Ok, Self::Error>;
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    fn serialize_unit_struct(self, name: &'static str) -> Result<Self::Ok, Self::Error>;
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Self::Error>;
    fn serialize_tuple_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleStruct, Self::Error>;
    fn serialize_tuple_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleVariant, Self::Error>;
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error>;

    /// Whether the format is human readable (napcode is not).
    fn is_human_readable(&self) -> bool {
        true
    }
}

/// Compound serializer returned by [`Serializer::serialize_seq`].
pub trait SerializeSeq {
    type Ok;
    type Error: Error;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer returned by [`Serializer::serialize_tuple`].
pub trait SerializeTuple {
    type Ok;
    type Error: Error;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer returned by [`Serializer::serialize_tuple_struct`].
pub trait SerializeTupleStruct {
    type Ok;
    type Error: Error;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer returned by [`Serializer::serialize_tuple_variant`].
pub trait SerializeTupleVariant {
    type Ok;
    type Error: Error;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer returned by [`Serializer::serialize_map`].
pub trait SerializeMap {
    type Ok;
    type Error: Error;
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), Self::Error>;
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer returned by [`Serializer::serialize_struct`].
pub trait SerializeStruct {
    type Ok;
    type Error: Error;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer returned by [`Serializer::serialize_struct_variant`].
pub trait SerializeStructVariant {
    type Ok;
    type Error: Error;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

// ---------------------------------------------------------------------------
// std impls
// ---------------------------------------------------------------------------

macro_rules! primitive_serialize {
    ($($ty:ty => $method:ident),+ $(,)?) => {
        $(
            impl Serialize for $ty {
                fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                    serializer.$method(*self)
                }
            }
        )+
    };
}

primitive_serialize! {
    bool => serialize_bool,
    i8 => serialize_i8,
    i16 => serialize_i16,
    i32 => serialize_i32,
    i64 => serialize_i64,
    u8 => serialize_u8,
    u16 => serialize_u16,
    u32 => serialize_u32,
    u64 => serialize_u64,
    f32 => serialize_f32,
    f64 => serialize_f64,
    char => serialize_char,
}

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self as u64)
    }
}

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self as i64)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

impl<T: Serialize, E: Serialize> Serialize for Result<T, E> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Ok(v) => serializer.serialize_newtype_variant("Result", 0, "Ok", v),
            Err(e) => serializer.serialize_newtype_variant("Result", 1, "Err", e),
        }
    }
}

fn serialize_iter<S, I>(serializer: S, len: usize, iter: I) -> Result<S::Ok, S::Error>
where
    S: Serializer,
    I: IntoIterator,
    I::Item: Serialize,
{
    let mut seq = serializer.serialize_seq(Some(len))?;
    for item in iter {
        seq.serialize_element(&item)?;
    }
    seq.end()
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self)
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self)
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self)
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut tup = serializer.serialize_tuple(N)?;
        for item in self {
            tup.serialize_element(item)?;
        }
        tup.end()
    }
}

fn serialize_map_iter<'a, S, K, V, I>(serializer: S, len: usize, iter: I) -> Result<S::Ok, S::Error>
where
    S: Serializer,
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: IntoIterator<Item = (&'a K, &'a V)>,
{
    let mut map = serializer.serialize_map(Some(len))?;
    for (k, v) in iter {
        map.serialize_key(k)?;
        map.serialize_value(v)?;
    }
    map.end()
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_map_iter(serializer, self.len(), self)
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_map_iter(serializer, self.len(), self)
    }
}

macro_rules! tuple_serialize {
    ($($len:expr => ($($idx:tt $T:ident),+))+) => {
        $(
            impl<$($T: Serialize),+> Serialize for ($($T,)+) {
                fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                    let mut tup = serializer.serialize_tuple($len)?;
                    $(SerializeTuple::serialize_element(&mut tup, &self.$idx)?;)+
                    SerializeTuple::end(tup)
                }
            }
        )+
    };
}

tuple_serialize! {
    1 => (0 T0)
    2 => (0 T0, 1 T1)
    3 => (0 T0, 1 T1, 2 T2)
    4 => (0 T0, 1 T1, 2 T2, 3 T3)
    5 => (0 T0, 1 T1, 2 T2, 3 T3, 4 T4)
    6 => (0 T0, 1 T1, 2 T2, 3 T3, 4 T4, 5 T5)
    7 => (0 T0, 1 T1, 2 T2, 3 T3, 4 T4, 5 T5, 6 T6)
    8 => (0 T0, 1 T1, 2 T2, 3 T3, 4 T4, 5 T5, 6 T6, 7 T7)
}
