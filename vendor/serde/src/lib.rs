//! Vendored shim of the `serde` data model.
//!
//! The build environment for this repository has no crates.io access,
//! so this crate re-implements the subset of serde's serializer /
//! deserializer traits that the workspace uses: the full positional
//! data model consumed by `naplet-core::codec` (napcode) plus the
//! std-type impls the derived types need. It is API-compatible for the
//! call sites in this repository, not a general serde replacement.
//!
//! Layout mirrors upstream: [`ser`] holds the serialization half,
//! [`de`] the deserialization half, and the derive macros re-export
//! from `serde_derive` under the `derive` feature.

pub mod de;
pub mod ser;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
