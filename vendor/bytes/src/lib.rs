//! Vendored shim of the `bytes` crate subset used by this workspace.
//!
//! [`Bytes`] is a cheaply-cloneable immutable byte buffer (an `Arc`'d
//! vector plus a range); [`BytesMut`] is a growable buffer with a
//! consumed-prefix cursor so `advance`/`split_to` are O(1). The
//! [`Buf`]/[`BufMut`] traits carry the big-endian accessors the frame
//! codec uses.

use std::ops::{Deref, DerefMut, Index, IndexMut};
use std::sync::Arc;

/// Immutable, cheaply-cloneable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Bytes {
        Bytes::default()
    }

    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Zero-copy sub-slice sharing the same backing allocation.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len());
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        let end = data.len();
        Bytes {
            data: Arc::new(data),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }
}

impl From<&str> for Bytes {
    fn from(data: &str) -> Bytes {
        Bytes::from(data.as_bytes().to_vec())
    }
}

impl From<String> for Bytes {
    fn from(data: String) -> Bytes {
        Bytes::from(data.into_bytes())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            write!(f, "{}", std::ascii::escape_default(b))?;
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

/// Growable byte buffer with an O(1) consumed-prefix cursor.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
    /// Bytes before this offset have been consumed by `advance`/`split_to`.
    head: usize,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
            head: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.data.len() - self.head
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.head..]
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(mut self) -> Bytes {
        if self.head > 0 {
            self.data.drain(..self.head);
        }
        Bytes::from(self.data)
    }

    /// Split off and return the first `n` bytes.
    pub fn split_to(&mut self, n: usize) -> BytesMut {
        assert!(n <= self.len(), "split_to out of bounds");
        let out = BytesMut {
            data: self.as_slice()[..n].to_vec(),
            head: 0,
        };
        self.head += n;
        self.maybe_compact();
        out
    }

    fn maybe_compact(&mut self) {
        // reclaim the consumed prefix once it dominates the buffer
        if self.head > 4096 && self.head * 2 > self.data.len() {
            self.data.drain(..self.head);
            self.head = 0;
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        let head = self.head;
        &mut self.data[head..]
    }
}

impl<I: std::slice::SliceIndex<[u8]>> Index<I> for BytesMut {
    type Output = I::Output;
    fn index(&self, idx: I) -> &I::Output {
        &self.as_slice()[idx]
    }
}

impl<I: std::slice::SliceIndex<[u8]>> IndexMut<I> for BytesMut {
    fn index_mut(&mut self, idx: I) -> &mut I::Output {
        let head = self.head;
        &mut self.data[head..][idx]
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> BytesMut {
        BytesMut {
            data: src.to_vec(),
            head: 0,
        }
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut({} bytes)", self.len())
    }
}

/// Read-side accessors (big-endian, as in the real crate).
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, n: usize);

    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    fn get_u16(&mut self) -> u16 {
        let c = self.chunk();
        let v = u16::from_be_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }

    fn get_u32(&mut self) -> u32 {
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    fn get_u64(&mut self) -> u64 {
        let c = self.chunk();
        let v = u64::from_be_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
        self.advance(8);
        v
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance out of bounds");
        self.head += n;
        self.maybe_compact();
    }
}

/// Write-side accessors (big-endian, as in the real crate).
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_accessors() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u32(0xdead_beef);
        b.put_u16(7);
        b.put_u8(9);
        b.put_slice(b"xy");
        assert_eq!(b.len(), 9);
        assert_eq!(b.get_u32(), 0xdead_beef);
        assert_eq!(b.get_u16(), 7);
        assert_eq!(b.get_u8(), 9);
        assert_eq!(&b[..], b"xy");
    }

    #[test]
    fn split_and_freeze() {
        let mut b = BytesMut::from(&b"hello world"[..]);
        let head = b.split_to(5);
        assert_eq!(&head[..], b"hello");
        b.advance(1);
        let frozen = b.freeze();
        assert_eq!(&frozen[..], b"world");
        let sub = frozen.slice(1..3);
        assert_eq!(&sub[..], b"or");
    }

    #[test]
    fn bytes_equality_and_clone() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
    }
}
