//! `any::<T>()` support for primitive types.

use std::marker::PhantomData;

use rand::{Rng, RngCore};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($ty:ty),+ $(,)?) => {
        $(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )+
    };
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.gen_range(-1e9f64..1e9)
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        rng.gen_range(-1e9f32..1e9)
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // printable ASCII keeps generated text debuggable
        rng.gen_range(0x20u32..0x7f)
            .try_into()
            .expect("printable ascii")
    }
}

/// Strategy form of [`Arbitrary`]; produced by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
