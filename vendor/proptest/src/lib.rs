//! Vendored shim of the `proptest` API subset used by this workspace.
//!
//! Supports the strategy combinators the repo's property tests rely on
//! (ranges, regex-subset string literals, `prop_map`, `prop_recursive`,
//! `prop_oneof!`, tuples, collections, `option::of`) plus the
//! `proptest!` / `prop_assert*` / `prop_assume!` macros. Differences
//! from the real crate: no shrinking (failures report the case seed
//! instead of a minimized input), and no persisted regression files.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod regex_gen;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! The usual `use proptest::prelude::*;` surface.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// One generated test case: bind each argument from its strategy, run
/// the body, treat `prop_assume!` rejections as skips.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(stringify!($name), |__rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                    let mut __case = move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    __case()
                });
            }
        )*
    };
}

/// Uniform choice between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Assert inside a `proptest!` body; failure aborts the case with a
/// message instead of panicking mid-generation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`",
                    stringify!($left),
                    stringify!($right),
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Discard the current case (counted separately from failures).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}
