//! The [`Strategy`] trait and core combinators.

use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

use rand::Rng;

use crate::regex_gen;
use crate::test_runner::TestRng;

/// A recipe for generating values of one type. Unlike the real crate
/// there is no shrinking: `generate` produces a value directly.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Build a recursive strategy: at each of `depth` levels, choose
    /// between a leaf (`self`) and whatever `recurse` builds from the
    /// previous level. `_desired_size` / `_expected_branch` are
    /// accepted for API compatibility; depth alone bounds growth here.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            // leaves twice as likely as recursion keeps expected size
            // small while still exercising deep structure
            level = Union::weighted(vec![(2, leaf.clone()), (1, recurse(level).boxed())]).boxed();
        }
        level
    }

    /// Type-erase into a cloneable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let strat = self;
        BoxedStrategy {
            inner: Arc::new(move |rng: &mut TestRng| strat.generate(rng)),
        }
    }
}

/// Cloneable, type-erased strategy handle.
pub struct BoxedStrategy<T> {
    inner: Arc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.inner)(rng)
    }
}

/// Always produce a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted choice among same-typed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u32,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        Union::weighted(options.into_iter().map(|s| (1, s)).collect())
    }

    pub fn weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        let total_weight = options.iter().map(|(w, _)| *w).sum();
        Union {
            options,
            total_weight,
        }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
            total_weight: self.total_weight,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.gen_range(0..self.total_weight);
        for (weight, strat) in &self.options {
            if pick < *weight {
                return strat.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weights exhausted")
    }
}

macro_rules! range_strategy {
    ($($ty:ty),+ $(,)?) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }
        )+
    };
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// String literals are regex-subset strategies, as in the real crate.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        regex_gen::generate(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+
    };
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
