//! Generator for the regex subset the workspace's string strategies
//! use: character classes (`[a-z0-9_.-]`), the `.` wildcard, literal
//! characters, and the `{n}` / `{n,m}` / `*` / `+` / `?` quantifiers.
//! Anchors, groups, and alternation are not supported.

use rand::Rng;

use crate::test_runner::TestRng;

enum Atom {
    /// Explicit choice set from a `[...]` class or a literal char.
    Choice(Vec<char>),
    /// `.` — any printable ASCII character.
    Any,
}

struct Quantified {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse(pattern: &str) -> Vec<Quantified> {
    let mut chars = pattern.chars().peekable();
    let mut atoms = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    let item = chars
                        .next()
                        .unwrap_or_else(|| panic!("unterminated class in regex {pattern:?}"));
                    match item {
                        ']' => break,
                        '-' if prev.is_some() && chars.peek() != Some(&']') => {
                            let start = prev.take().expect("range start");
                            let end = chars.next().expect("range end");
                            for ch in start..=end {
                                set.push(ch);
                            }
                        }
                        _ => {
                            if let Some(p) = prev.replace(item) {
                                set.push(p);
                            }
                        }
                    }
                }
                if let Some(p) = prev {
                    set.push(p);
                }
                assert!(!set.is_empty(), "empty class in regex {pattern:?}");
                Atom::Choice(set)
            }
            '.' => Atom::Any,
            '\\' => {
                let escaped = chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in regex {pattern:?}"));
                Atom::Choice(vec![escaped])
            }
            other => Atom::Choice(vec![other]),
        };
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for d in chars.by_ref() {
                    if d == '}' {
                        break;
                    }
                    spec.push(d);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.parse().expect("quantifier lower bound"),
                        hi.parse().expect("quantifier upper bound"),
                    ),
                    None => {
                        let n = spec.parse().expect("quantifier count");
                        (n, n)
                    }
                }
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            _ => (1, 1),
        };
        atoms.push(Quantified { atom, min, max });
    }
    atoms
}

/// Produce one random string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for q in parse(pattern) {
        let count = rng.gen_range(q.min..=q.max);
        for _ in 0..count {
            let ch = match &q.atom {
                Atom::Choice(set) => set[rng.gen_range(0..set.len())],
                Atom::Any => char::from_u32(rng.gen_range(0x20u32..0x7f)).expect("ascii"),
            };
            out.push(ch);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::generate;
    use crate::test_runner::TestRng;

    #[test]
    fn matches_shape() {
        let mut rng = TestRng::seeded(1);
        for _ in 0..200 {
            let s = generate("[a-z][a-z0-9_.-]{0,12}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 13, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "_.-".contains(c)));
        }
    }

    #[test]
    fn fixed_count_and_wildcard() {
        let mut rng = TestRng::seeded(2);
        for _ in 0..50 {
            assert_eq!(generate("[0-9]{4}", &mut rng).len(), 4);
            let any = generate(".{0,24}", &mut rng);
            assert!(any.len() <= 24);
            assert!(any.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn literals_pass_through() {
        let mut rng = TestRng::seeded(3);
        assert_eq!(generate("abc", &mut rng), "abc");
        assert_eq!(generate("a\\.b", &mut rng), "a.b");
    }
}
