//! Case runner: deterministic per-test seeding, rejection accounting,
//! and the error type `prop_assert!` / `prop_assume!` produce.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Outcome of a single generated case (other than success).
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// A `prop_assert!` failed; the whole test fails.
    Fail(String),
    /// A `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

/// RNG handed to strategies during generation.
pub struct TestRng(StdRng);

impl TestRng {
    pub fn seeded(seed: u64) -> TestRng {
        TestRng(StdRng::seed_from_u64(seed))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

fn fnv1a(name: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn case_count() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Run `f` against `PROPTEST_CASES` (default 64) generated cases.
/// Seeding is a pure function of the test name and case index, so
/// failures are reproducible run-to-run.
pub fn run<F>(name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let cases = case_count();
    let max_rejects = cases.saturating_mul(64);
    let base = fnv1a(name);
    let mut passed = 0u64;
    let mut rejects = 0u64;
    let mut case = 0u64;
    while passed < cases {
        let seed = base ^ case.wrapping_mul(0x9e3779b97f4a7c15);
        case += 1;
        let mut rng = TestRng::seeded(seed);
        match f(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejects += 1;
                assert!(
                    rejects <= max_rejects,
                    "{name}: too many prop_assume rejections ({rejects}) \
                     after {passed} passing cases"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{name}: property failed (case {case}, seed {seed:#x}): {msg}");
            }
        }
    }
}
