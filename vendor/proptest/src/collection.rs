//! Collection strategies: `vec` and `btree_map`.

use std::collections::BTreeMap;
use std::ops::Range;

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Vectors whose length is drawn from `len` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.gen_range(self.len.clone());
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Maps with `len`-many insertions; duplicate keys collapse, so the
/// final size may be smaller (matching the real crate's behavior).
pub fn btree_map<K, V>(key: K, value: V, len: Range<usize>) -> BTreeMapStrategy<K, V> {
    BTreeMapStrategy { key, value, len }
}

#[derive(Clone)]
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    len: Range<usize>,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
        let n = rng.gen_range(self.len.clone());
        (0..n)
            .map(|_| (self.key.generate(rng), self.value.generate(rng)))
            .collect()
    }
}
