//! Vendored shim of the `criterion` API subset used by this
//! workspace's benches. It keeps the call surface (`Criterion`,
//! `benchmark_group`, `bench_with_input`, `BenchmarkId`, `b.iter`,
//! `criterion_group!`, `criterion_main!`) but replaces the statistics
//! engine with a simple calibrated timer: each benchmark is warmed up,
//! the iteration count is sized to a per-sample time budget, and the
//! mean/min across samples is printed.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    sample_budget: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 10,
            sample_budget: Duration::from_millis(5),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, self.sample_budget, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_benchmark(&label, samples, self.criterion.sample_budget, f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iterations` calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F>(label: &str, samples: usize, budget: Duration, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // warmup + calibration: time one iteration, then size batches to
    // fill the per-sample budget
    let mut b = Bencher {
        iterations: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let iters_per_sample = (budget.as_nanos() / per_iter.as_nanos()).clamp(1, 100_000) as u64;

    let mut means = Vec::with_capacity(samples);
    for _ in 0..samples.max(1) {
        let mut b = Bencher {
            iterations: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        means.push(b.elapsed.as_nanos() as f64 / b.iterations.max(1) as f64);
    }
    means.sort_by(|a, b| a.total_cmp(b));
    let min = means.first().copied().unwrap_or(0.0);
    let median = means[means.len() / 2];
    let mean = means.iter().sum::<f64>() / means.len() as f64;
    println!(
        "{label:<50} time: [{} {} {}]",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Collect benchmark functions into one runner, mirroring the real
/// macro's shape.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_run() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::new("add", 4), &4u64, |b, &n| {
            b.iter(|| n * 2);
        });
        g.bench_with_input(BenchmarkId::from_parameter("p"), &1u8, |b, _| {
            b.iter(|| ());
        });
        g.finish();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
