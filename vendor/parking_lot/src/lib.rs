//! Vendored shim of `parking_lot` over `std::sync` primitives.
//!
//! The build environment has no crates.io access; this crate provides
//! the `parking_lot` lock API surface the workspace uses (guards
//! without `Result`, no poisoning) on top of the standard library.
//! A poisoned std lock is recovered rather than propagated, matching
//! parking_lot's no-poisoning semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// Mutual exclusion lock whose `lock()` returns the guard directly.
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|p| p.into_inner()))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(sync::MutexGuard<'a, T>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Reader-writer lock whose `read()`/`write()` return guards directly.
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|p| p.into_inner()))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|p| p.into_inner()))
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
