//! Vendored shim of the `rand` 0.8 API subset used by this workspace.
//!
//! Deterministic, dependency-free: [`rngs::StdRng`] is xoshiro256++
//! seeded via SplitMix64, which gives high-quality 64-bit output for
//! the simulation and property-test workloads here. Only the surface
//! the repo calls is provided: `Rng::{gen_range, gen_bool, gen}`,
//! `SeedableRng::{seed_from_u64, from_seed}`, and range sampling over
//! integer and float ranges.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// High-level sampling helpers, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range (`a..b` or `a..=b`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli trial with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }

    /// Sample a value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Map a `u64` to the unit interval `[0, 1)` with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable uniformly over their whole domain via `Rng::gen`.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($ty:ty),+ $(,)?) => {
        $(
            impl Standard for $ty {
                fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                    rng.next_u64() as $ty
                }
            }
        )+
    };
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($ty:ty),+ $(,)?) => {
        $(
            impl SampleRange<$ty> for Range<$ty> {
                fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "gen_range over empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $ty
                }
            }

            impl SampleRange<$ty> for RangeInclusive<$ty> {
                fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "gen_range over empty range");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let offset = (rng.next_u64() as u128) % span;
                    (start as i128 + offset as i128) as $ty
                }
            }
        )+
    };
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($ty:ty),+ $(,)?) => {
        $(
            impl SampleRange<$ty> for Range<$ty> {
                fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "gen_range over empty range");
                    let u = unit_f64(rng.next_u64()) as $ty;
                    self.start + u * (self.end - self.start)
                }
            }

            impl SampleRange<$ty> for RangeInclusive<$ty> {
                fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "gen_range over empty range");
                    let u = unit_f64(rng.next_u64()) as $ty;
                    start + u * (end - start)
                }
            }
        )+
    };
}

float_sample_range!(f32, f64);

/// RNGs constructible from seed material.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64, used for seed expansion.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

pub mod rngs {
    //! Concrete RNG implementations.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // xoshiro must not start from the all-zero state
            if s == [0, 0, 0, 0] {
                s = [
                    0x9e3779b97f4a7c15,
                    0x6a09e667f3bcc909,
                    0xbb67ae8584caa73b,
                    0x3c6ef372fe94f82b,
                ];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(10u64..=20);
            assert!((10..=20).contains(&v));
            let f = r.gen_range(0.5f64..1.5);
            assert!((0.5..1.5).contains(&f));
            let i = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(99);
        let hits = (0..20_000).filter(|_| r.gen_bool(0.3)).count();
        let observed = hits as f64 / 20_000.0;
        assert!((observed - 0.3).abs() < 0.02, "observed {observed}");
    }
}
