//! Vendored shim of the `crossbeam::channel` subset used by this
//! workspace: an unbounded MPMC channel with timeout receive, built on
//! `std::sync::{Mutex, Condvar}`. Only the call surface the repo uses
//! is provided.

pub mod channel {
    //! Multi-producer multi-consumer FIFO channel.

    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when no receiver remains.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueue a message; fails only when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            let mut queue = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            queue.push_back(value);
            drop(queue);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // last sender: wake blocked receivers so they observe
                // the disconnect
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        fn disconnected(&self) -> bool {
            self.shared.senders.load(Ordering::Acquire) == 0
        }

        /// Dequeue without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            match queue.pop_front() {
                Some(v) => Ok(v),
                None if self.disconnected() => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Block until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.disconnected() {
                    return Err(RecvError);
                }
                queue = self
                    .shared
                    .ready
                    .wait(queue)
                    .unwrap_or_else(|p| p.into_inner());
            }
        }

        /// Block up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.disconnected() {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timed_out) = self
                    .shared
                    .ready
                    .wait_timeout(queue, deadline - now)
                    .unwrap_or_else(|p| p.into_inner());
                queue = guard;
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.try_recv().unwrap(), 2);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn timeout_and_disconnect() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn concurrent_producers() {
            let (tx, rx) = unbounded();
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let tx = tx.clone();
                    std::thread::spawn(move || {
                        for i in 0..100 {
                            tx.send(i).unwrap();
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            let mut count = 0;
            while rx.try_recv().is_ok() {
                count += 1;
            }
            assert_eq!(count, 400);
        }
    }
}
