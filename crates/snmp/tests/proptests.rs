//! Property tests for the SNMP substrate.

use proptest::collection::vec;
use proptest::prelude::*;

use naplet_core::value::Value;
use naplet_snmp::{DeviceProfile, Mib, Oid, SimulatedDevice, SnmpAgent, SnmpOp, SnmpRequest};

fn oid_strategy() -> impl Strategy<Value = Oid> {
    vec(0u32..64, 1..8).prop_map(Oid::new)
}

proptest! {
    #[test]
    fn oid_parse_display_round_trip(oid in oid_strategy()) {
        let text = oid.to_string();
        let back: Oid = text.parse().unwrap();
        prop_assert_eq!(back, oid);
    }

    #[test]
    fn oid_ordering_is_total_and_consistent_with_parts(
        a in oid_strategy(),
        b in oid_strategy(),
    ) {
        // Ord on Oid == lexicographic Ord on the component slices
        prop_assert_eq!(a.cmp(&b), a.parts().cmp(b.parts()));
        // prefix implies less-or-equal
        if a.is_prefix_of(&b) {
            prop_assert!(a <= b);
        }
    }

    #[test]
    fn prefix_relation_laws(a in oid_strategy(), arcs in vec(0u32..8, 0..4)) {
        let b = a.extend(&arcs);
        prop_assert!(a.is_prefix_of(&b));
        if !arcs.is_empty() {
            prop_assert!(!b.is_prefix_of(&a));
        }
    }

    #[test]
    fn walk_equals_getnext_sweep(root in oid_strategy(), ifcount in 1u32..6) {
        let mib = Mib::standard("dev", "d", "lab", ifcount);
        let mut agent = SnmpAgent::standard(mib);

        // server-side walk
        let walk = agent.handle(&SnmpRequest {
            community: "public".into(),
            op: SnmpOp::Walk(root.clone()),
        });

        // manual get-next sweep constrained to the subtree
        let mut sweep = Vec::new();
        let mut cursor = root.clone();
        loop {
            let resp = agent.handle(&SnmpRequest {
                community: "public".into(),
                op: SnmpOp::GetNext(cursor.clone()),
            });
            if !resp.is_ok() {
                break;
            }
            let (oid, value) = resp.bindings[0].clone();
            if !root.is_prefix_of(&oid) {
                break;
            }
            cursor = oid.clone();
            sweep.push((oid, value));
        }

        // the sweep itself bumps snmpInPkts between reads, so that one
        // self-observing counter is excluded from the value comparison
        let volatile = naplet_snmp::oids::snmp_in_pkts();
        let strip = |v: Vec<(Oid, Value)>| -> Vec<(Oid, Value)> {
            v.into_iter()
                .map(|(o, val)| if o == volatile { (o, Value::Nil) } else { (o, val) })
                .collect()
        };
        if walk.is_ok() {
            prop_assert_eq!(strip(walk.bindings), strip(sweep));
        } else {
            prop_assert!(sweep.is_empty());
        }
    }

    #[test]
    fn device_counters_are_monotone(seed in any::<u64>(), ticks in 1usize..20) {
        let mut d = SimulatedDevice::new(
            "r",
            DeviceProfile { flap_prob: 0.0, ..DeviceProfile::default() },
            seed,
        );
        let oid = naplet_snmp::oids::if_entry().extend(&[naplet_snmp::oids::IF_IN_OCTETS, 1]);
        let mut last = 0i64;
        for _ in 0..ticks {
            d.tick(100);
            let v = d.read(&oid).unwrap().as_int().unwrap();
            prop_assert!(v >= last, "counters never decrease");
            last = v;
        }
        let uptime = d.read(&naplet_snmp::oids::sys_uptime()).unwrap().as_int().unwrap();
        prop_assert_eq!(uptime, (ticks as i64) * 10);
    }

    #[test]
    fn agent_get_returns_exactly_what_set_wrote(
        value in "[a-zA-Z0-9 ]{0,32}",
    ) {
        let mib = Mib::standard("dev", "d", "lab", 2);
        let mut agent = SnmpAgent::standard(mib);
        let oid = naplet_snmp::oids::sys_location();
        let set = agent.handle(&SnmpRequest {
            community: "private".into(),
            op: SnmpOp::Set(oid.clone(), Value::from(value.as_str())),
        });
        prop_assert!(set.is_ok());
        let get = agent.handle(&SnmpRequest {
            community: "public".into(),
            op: SnmpOp::Get(vec![oid]),
        });
        prop_assert!(get.is_ok());
        prop_assert_eq!(get.bindings[0].1.clone(), Value::from(value.as_str()));
    }

    #[test]
    fn pdu_codec_round_trip(oids in vec(oid_strategy(), 1..6)) {
        let req = SnmpRequest { community: "public".into(), op: SnmpOp::Get(oids) };
        let bytes = naplet_core::codec::to_bytes(&req).unwrap();
        let back: SnmpRequest = naplet_core::codec::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, req);
    }
}
