//! # naplet-snmp
//!
//! The SNMP/MIB substrate for the paper's network-management
//! application (§6): an RFC1213-like MIB subset ([`mib`]), per-device
//! SNMP agents ([`agent`]) speaking get/get-next/set/walk ([`pdu`]),
//! and simulated managed devices with synthetic workloads and fault
//! injection ([`device`]).
//!
//! This replaces the AdventNet SNMP package + physical devices of the
//! paper's testbed (see DESIGN.md §2): the privileged `NetManagement`
//! service in `naplet-man` binds a naplet server to the local device's
//! agent exactly where AdventNet sat in the original.

#![warn(missing_docs)]

pub mod agent;
pub mod device;
pub mod mib;
pub mod oid;
pub mod pdu;

pub use agent::SnmpAgent;
pub use device::{DeviceProfile, SimulatedDevice};
pub use mib::{oids, Mib};
pub use oid::Oid;
pub use pdu::{SnmpError, SnmpOp, SnmpRequest, SnmpResponse};
