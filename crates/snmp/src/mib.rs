//! The management information base: an ordered OID → value store with
//! an RFC1213-like standard layout (system, interfaces, ip, snmp
//! groups) — the subset the paper's MAN framework queries.

use std::collections::BTreeMap;

use naplet_core::value::Value;

use crate::oid::Oid;

/// Well-known OIDs of the RFC1213-like subset.
pub mod oids {
    use crate::oid::Oid;

    /// `mib-2` = 1.3.6.1.2.1
    pub fn mib2() -> Oid {
        Oid::new(vec![1, 3, 6, 1, 2, 1])
    }
    /// system group (mib-2.1).
    pub fn system() -> Oid {
        mib2().child(1)
    }
    /// sysDescr.0
    pub fn sys_descr() -> Oid {
        system().extend(&[1, 0])
    }
    /// sysUpTime.0 (hundredths of a second)
    pub fn sys_uptime() -> Oid {
        system().extend(&[3, 0])
    }
    /// sysContact.0
    pub fn sys_contact() -> Oid {
        system().extend(&[4, 0])
    }
    /// sysName.0
    pub fn sys_name() -> Oid {
        system().extend(&[5, 0])
    }
    /// sysLocation.0
    pub fn sys_location() -> Oid {
        system().extend(&[6, 0])
    }
    /// interfaces group (mib-2.2).
    pub fn interfaces() -> Oid {
        mib2().child(2)
    }
    /// ifNumber.0
    pub fn if_number() -> Oid {
        interfaces().extend(&[1, 0])
    }
    /// ifTable entry column base: ifEntry = mib-2.2.2.1; columns are
    /// ifEntry.col.index.
    pub fn if_entry() -> Oid {
        interfaces().extend(&[2, 1])
    }
    /// ifDescr column.
    pub const IF_DESCR: u32 = 2;
    /// ifMtu column.
    pub const IF_MTU: u32 = 4;
    /// ifSpeed column.
    pub const IF_SPEED: u32 = 5;
    /// ifAdminStatus column (1 up, 2 down).
    pub const IF_ADMIN_STATUS: u32 = 7;
    /// ifOperStatus column (1 up, 2 down).
    pub const IF_OPER_STATUS: u32 = 8;
    /// ifInOctets counter column.
    pub const IF_IN_OCTETS: u32 = 10;
    /// ifInErrors counter column.
    pub const IF_IN_ERRORS: u32 = 14;
    /// ifOutOctets counter column.
    pub const IF_OUT_OCTETS: u32 = 16;
    /// ifOutErrors counter column.
    pub const IF_OUT_ERRORS: u32 = 20;
    /// ip group (mib-2.4): ipInReceives.0
    pub fn ip_in_receives() -> Oid {
        mib2().extend(&[4, 3, 0])
    }
    /// ip group: ipForwDatagrams.0
    pub fn ip_forw_datagrams() -> Oid {
        mib2().extend(&[4, 6, 0])
    }
    /// snmp group (mib-2.11): snmpInPkts.0
    pub fn snmp_in_pkts() -> Oid {
        mib2().extend(&[11, 1, 0])
    }
}

/// An ordered OID→value store.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Mib {
    entries: BTreeMap<Oid, Value>,
}

impl Mib {
    /// Empty MIB.
    pub fn new() -> Mib {
        Mib::default()
    }

    /// Set (or create) an instance value.
    pub fn set(&mut self, oid: Oid, value: impl Into<Value>) {
        self.entries.insert(oid, value.into());
    }

    /// Read an instance value.
    pub fn get(&self, oid: &Oid) -> Option<&Value> {
        self.entries.get(oid)
    }

    /// Mutate an existing integer counter by `delta` (saturating at 0).
    pub fn bump(&mut self, oid: &Oid, delta: i64) {
        if let Some(Value::Int(v)) = self.entries.get_mut(oid) {
            *v = v.saturating_add(delta).max(0);
        }
    }

    /// Lexicographically next instance strictly after `oid`
    /// (SNMP get-next).
    pub fn next_after(&self, oid: &Oid) -> Option<(&Oid, &Value)> {
        use std::ops::Bound;
        self.entries
            .range((Bound::Excluded(oid.clone()), Bound::Unbounded))
            .next()
    }

    /// All instances under a subtree (walk).
    pub fn walk(&self, root: &Oid) -> Vec<(&Oid, &Value)> {
        self.entries
            .range(root.clone()..)
            .take_while(|(oid, _)| root.is_prefix_of(oid))
            .collect()
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Build the standard RFC1213-like layout for a device with
    /// `if_count` interfaces.
    pub fn standard(name: &str, descr: &str, location: &str, if_count: u32) -> Mib {
        let mut mib = Mib::new();
        mib.set(oids::sys_descr(), descr);
        mib.set(oids::sys_uptime(), 0i64);
        mib.set(oids::sys_contact(), "czxu@ece.eng.wayne.edu");
        mib.set(oids::sys_name(), name);
        mib.set(oids::sys_location(), location);
        mib.set(oids::if_number(), if_count as i64);
        let entry = oids::if_entry();
        for i in 1..=if_count {
            mib.set(entry.extend(&[1, i]), i as i64); // ifIndex
            mib.set(entry.extend(&[oids::IF_DESCR, i]), format!("eth{}", i - 1));
            mib.set(entry.extend(&[oids::IF_MTU, i]), 1500i64);
            mib.set(entry.extend(&[oids::IF_SPEED, i]), 100_000_000i64);
            mib.set(entry.extend(&[oids::IF_ADMIN_STATUS, i]), 1i64);
            mib.set(entry.extend(&[oids::IF_OPER_STATUS, i]), 1i64);
            mib.set(entry.extend(&[oids::IF_IN_OCTETS, i]), 0i64);
            mib.set(entry.extend(&[oids::IF_IN_ERRORS, i]), 0i64);
            mib.set(entry.extend(&[oids::IF_OUT_OCTETS, i]), 0i64);
            mib.set(entry.extend(&[oids::IF_OUT_ERRORS, i]), 0i64);
        }
        mib.set(oids::ip_in_receives(), 0i64);
        mib.set(oids::ip_forw_datagrams(), 0i64);
        mib.set(oids::snmp_in_pkts(), 0i64);
        mib
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mib() -> Mib {
        Mib::standard("router-1", "Simulated router", "lab", 3)
    }

    #[test]
    fn standard_layout_populated() {
        let m = mib();
        assert_eq!(m.get(&oids::sys_name()).unwrap(), &Value::from("router-1"));
        assert_eq!(m.get(&oids::if_number()).unwrap(), &Value::Int(3));
        // 6 system-ish scalars + 3 ip/snmp + 10 columns × 3 interfaces
        assert_eq!(m.len(), 6 + 3 + 30);
    }

    #[test]
    fn get_next_traverses_in_order() {
        let m = mib();
        let first = m.next_after(&Oid::new(vec![1])).unwrap();
        assert_eq!(first.0, &oids::sys_descr());
        // walking via next_after visits everything exactly once
        let mut count = 0;
        let mut cur = Oid::new(vec![0]);
        while let Some((oid, _)) = m.next_after(&cur) {
            cur = oid.clone();
            count += 1;
        }
        assert_eq!(count, m.len());
    }

    #[test]
    fn walk_returns_subtree_only() {
        let m = mib();
        let sys = m.walk(&oids::system());
        assert_eq!(sys.len(), 5);
        let table = m.walk(&oids::if_entry());
        assert_eq!(table.len(), 30);
        let all = m.walk(&Oid::new(vec![1]));
        assert_eq!(all.len(), m.len());
        assert!(m.walk(&Oid::new(vec![9, 9])).is_empty());
    }

    #[test]
    fn bump_counters() {
        let mut m = mib();
        let oid = oids::if_entry().extend(&[oids::IF_IN_OCTETS, 1]);
        m.bump(&oid, 500);
        m.bump(&oid, 250);
        assert_eq!(m.get(&oid).unwrap(), &Value::Int(750));
        // saturates at zero
        m.bump(&oid, -10_000);
        assert_eq!(m.get(&oid).unwrap(), &Value::Int(0));
        // bumping a string is a no-op
        m.bump(&oids::sys_name(), 5);
        assert_eq!(m.get(&oids::sys_name()).unwrap(), &Value::from("router-1"));
    }
}
