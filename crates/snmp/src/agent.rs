//! The per-device SNMP agent (the paper's "SNMP daemon (i.e. SNMP
//! agent) running locally to collect network parameters and store them
//! in a MIB format").

use naplet_core::value::Value;

use crate::mib::{oids, Mib};
use crate::oid::Oid;
use crate::pdu::{SnmpError, SnmpOp, SnmpRequest, SnmpResponse};

/// An SNMP agent bound to a device MIB.
#[derive(Debug, Clone)]
pub struct SnmpAgent {
    mib: Mib,
    community_ro: String,
    community_rw: String,
    /// Requests served (also mirrored into snmpInPkts).
    pub requests_served: u64,
}

impl SnmpAgent {
    /// Agent over a MIB with read-only and read-write communities.
    pub fn new(mib: Mib, community_ro: &str, community_rw: &str) -> SnmpAgent {
        SnmpAgent {
            mib,
            community_ro: community_ro.to_string(),
            community_rw: community_rw.to_string(),
            requests_served: 0,
        }
    }

    /// The conventional setup: community "public" (ro) / "private" (rw).
    pub fn standard(mib: Mib) -> SnmpAgent {
        SnmpAgent::new(mib, "public", "private")
    }

    /// Direct access to the MIB (device simulators evolve it).
    pub fn mib_mut(&mut self) -> &mut Mib {
        &mut self.mib
    }

    /// Read-only view of the MIB.
    pub fn mib(&self) -> &Mib {
        &self.mib
    }

    /// Serve one request.
    pub fn handle(&mut self, req: &SnmpRequest) -> SnmpResponse {
        self.requests_served += 1;
        self.mib.bump(&oids::snmp_in_pkts(), 1);

        let readable = req.community == self.community_ro || req.community == self.community_rw;
        if !readable {
            return SnmpResponse::err(SnmpError::BadCommunity);
        }
        match &req.op {
            SnmpOp::Get(oids) => {
                let mut bindings = Vec::with_capacity(oids.len());
                for oid in oids {
                    match self.mib.get(oid) {
                        Some(v) => bindings.push((oid.clone(), v.clone())),
                        None => return SnmpResponse::err(SnmpError::NoSuchName),
                    }
                }
                SnmpResponse::ok(bindings)
            }
            SnmpOp::GetNext(oid) => match self.mib.next_after(oid) {
                Some((next, v)) => SnmpResponse::ok(vec![(next.clone(), v.clone())]),
                None => SnmpResponse::err(SnmpError::EndOfMib),
            },
            SnmpOp::Set(oid, value) => {
                if req.community != self.community_rw {
                    return SnmpResponse::err(SnmpError::ReadOnly);
                }
                if self.mib.get(oid).is_none() {
                    return SnmpResponse::err(SnmpError::NoSuchName);
                }
                self.mib.set(oid.clone(), value.clone());
                SnmpResponse::ok(vec![(oid.clone(), value.clone())])
            }
            SnmpOp::Walk(root) => {
                let bindings: Vec<(Oid, Value)> = self
                    .mib
                    .walk(root)
                    .into_iter()
                    .map(|(o, v)| (o.clone(), v.clone()))
                    .collect();
                if bindings.is_empty() {
                    SnmpResponse::err(SnmpError::NoSuchName)
                } else {
                    SnmpResponse::ok(bindings)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn agent() -> SnmpAgent {
        SnmpAgent::standard(Mib::standard("r1", "router", "lab", 2))
    }

    fn get(agent: &mut SnmpAgent, community: &str, oid: &str) -> SnmpResponse {
        agent.handle(&SnmpRequest {
            community: community.into(),
            op: SnmpOp::Get(vec![oid.parse().unwrap()]),
        })
    }

    #[test]
    fn get_known_scalar() {
        let mut a = agent();
        let r = get(&mut a, "public", "1.3.6.1.2.1.1.5.0");
        assert!(r.is_ok());
        assert_eq!(r.bindings[0].1, Value::from("r1"));
        assert_eq!(a.requests_served, 1);
    }

    #[test]
    fn bad_community_rejected() {
        let mut a = agent();
        let r = get(&mut a, "wrong", "1.3.6.1.2.1.1.5.0");
        assert_eq!(r.error, SnmpError::BadCommunity);
    }

    #[test]
    fn unknown_oid() {
        let mut a = agent();
        let r = get(&mut a, "public", "1.2.3.4");
        assert_eq!(r.error, SnmpError::NoSuchName);
    }

    #[test]
    fn get_next_and_end_of_mib() {
        let mut a = agent();
        let r = a.handle(&SnmpRequest {
            community: "public".into(),
            op: SnmpOp::GetNext("1".parse().unwrap()),
        });
        assert!(r.is_ok());
        assert_eq!(r.bindings[0].0, oids::sys_descr());
        let r = a.handle(&SnmpRequest {
            community: "public".into(),
            op: SnmpOp::GetNext("9.9".parse().unwrap()),
        });
        assert_eq!(r.error, SnmpError::EndOfMib);
    }

    #[test]
    fn set_requires_rw_community() {
        let mut a = agent();
        let oid: Oid = "1.3.6.1.2.1.1.6.0".parse().unwrap(); // sysLocation
        let set = |community: &str| SnmpRequest {
            community: community.into(),
            op: SnmpOp::Set(oid.clone(), Value::from("closet B")),
        };
        assert_eq!(a.handle(&set("public")).error, SnmpError::ReadOnly);
        assert!(a.handle(&set("private")).is_ok());
        assert_eq!(a.mib().get(&oid).unwrap(), &Value::from("closet B"));
        // setting an unknown OID fails
        let r = a.handle(&SnmpRequest {
            community: "private".into(),
            op: SnmpOp::Set("5.5.5".parse().unwrap(), Value::Int(1)),
        });
        assert_eq!(r.error, SnmpError::NoSuchName);
    }

    #[test]
    fn walk_interfaces_table() {
        let mut a = agent();
        let r = a.handle(&SnmpRequest {
            community: "public".into(),
            op: SnmpOp::Walk(oids::if_entry()),
        });
        assert!(r.is_ok());
        assert_eq!(r.bindings.len(), 20); // 10 columns × 2 interfaces
        let r = a.handle(&SnmpRequest {
            community: "public".into(),
            op: SnmpOp::Walk("7.7".parse().unwrap()),
        });
        assert_eq!(r.error, SnmpError::NoSuchName);
    }

    #[test]
    fn snmp_in_pkts_counts_requests() {
        let mut a = agent();
        for _ in 0..5 {
            get(&mut a, "public", "1.3.6.1.2.1.1.5.0");
        }
        let r = get(&mut a, "public", "1.3.6.1.2.1.11.1.0");
        assert_eq!(r.bindings[0].1, Value::Int(6));
    }
}
