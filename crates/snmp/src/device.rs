//! Simulated managed devices.
//!
//! The paper's evaluation environment is a network of managed devices,
//! each running an SNMP daemon. [`SimulatedDevice`] stands in for the
//! hardware: a router/switch whose MIB counters evolve under a seeded
//! synthetic workload, with injectable faults (interface flaps, error
//! bursts) for the diagnosis experiments.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use naplet_core::value::Value;

use crate::agent::SnmpAgent;
use crate::mib::{oids, Mib};
use crate::oid::Oid;

/// Workload parameters for a device.
#[derive(Debug, Clone)]
pub struct DeviceProfile {
    /// Number of interfaces.
    pub interfaces: u32,
    /// Mean traffic per interface in bytes/ms.
    pub mean_rate: u64,
    /// Error probability per tick per interface.
    pub error_prob: f64,
    /// Interface flap probability per tick per interface.
    pub flap_prob: f64,
}

impl Default for DeviceProfile {
    fn default() -> Self {
        DeviceProfile {
            interfaces: 4,
            mean_rate: 1_000,
            error_prob: 0.01,
            flap_prob: 0.001,
        }
    }
}

/// A simulated device: SNMP agent + workload generator.
#[derive(Debug, Clone)]
pub struct SimulatedDevice {
    /// Device name (matches the host it is attached to).
    pub name: String,
    agent: SnmpAgent,
    profile: DeviceProfile,
    rng: StdRng,
    uptime_ms: u64,
}

impl SimulatedDevice {
    /// Create a device with a deterministic seed.
    pub fn new(name: &str, profile: DeviceProfile, seed: u64) -> SimulatedDevice {
        let mib = Mib::standard(
            name,
            "Naplet simulated router",
            "rack 42",
            profile.interfaces,
        );
        SimulatedDevice {
            name: name.to_string(),
            agent: SnmpAgent::standard(mib),
            profile,
            rng: StdRng::seed_from_u64(seed),
            uptime_ms: 0,
        }
    }

    /// The device's SNMP agent.
    pub fn agent(&self) -> &SnmpAgent {
        &self.agent
    }

    /// Mutable agent (serving requests mutates counters).
    pub fn agent_mut(&mut self) -> &mut SnmpAgent {
        &mut self.agent
    }

    /// Advance the workload by `ms` of device time: traffic counters
    /// grow, errors and flaps are injected stochastically.
    pub fn tick(&mut self, ms: u64) {
        self.uptime_ms += ms;
        let mib = self.agent.mib_mut();
        // sysUpTime is in hundredths of a second
        mib.set(oids::sys_uptime(), (self.uptime_ms / 10) as i64);
        let entry = oids::if_entry();
        let mut total_in: i64 = 0;
        for i in 1..=self.profile.interfaces {
            // only up interfaces carry traffic
            let oper = entry.extend(&[oids::IF_OPER_STATUS, i]);
            let up = mib.get(&oper) == Some(&Value::Int(1));
            if up {
                let jitter = self.rng.gen_range(0.5..1.5);
                let bytes = (self.profile.mean_rate as f64 * ms as f64 * jitter) as i64;
                mib.bump(&entry.extend(&[oids::IF_IN_OCTETS, i]), bytes);
                mib.bump(
                    &entry.extend(&[oids::IF_OUT_OCTETS, i]),
                    (bytes as f64 * 0.8) as i64,
                );
                total_in += bytes / 512; // rough packet count
                if self.rng.gen_bool(self.profile.error_prob) {
                    mib.bump(
                        &entry.extend(&[oids::IF_IN_ERRORS, i]),
                        self.rng.gen_range(1..20),
                    );
                }
            }
            if self.rng.gen_bool(self.profile.flap_prob) {
                let new_status = if up { 2 } else { 1 };
                mib.set(oper, Value::Int(new_status));
            }
        }
        mib.bump(&oids::ip_in_receives(), total_in);
        mib.bump(&oids::ip_forw_datagrams(), total_in / 2);
    }

    /// Force an interface up (1) or down (2) — fault injection for
    /// diagnosis experiments.
    pub fn set_interface_status(&mut self, ifindex: u32, up: bool) {
        let oid = oids::if_entry().extend(&[oids::IF_OPER_STATUS, ifindex]);
        self.agent
            .mib_mut()
            .set(oid, Value::Int(if up { 1 } else { 2 }));
    }

    /// Inject an error burst on an interface.
    pub fn inject_errors(&mut self, ifindex: u32, count: i64) {
        let oid = oids::if_entry().extend(&[oids::IF_IN_ERRORS, ifindex]);
        self.agent.mib_mut().bump(&oid, count);
    }

    /// Convenience: read an instance directly (test assertions).
    pub fn read(&self, oid: &Oid) -> Option<&Value> {
        self.agent.mib().get(oid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> SimulatedDevice {
        SimulatedDevice::new("r1", DeviceProfile::default(), 99)
    }

    #[test]
    fn tick_advances_uptime_and_traffic() {
        let mut d = device();
        d.tick(1000);
        assert_eq!(d.read(&oids::sys_uptime()), Some(&Value::Int(100)));
        let in1 = oids::if_entry().extend(&[oids::IF_IN_OCTETS, 1]);
        let v1 = d.read(&in1).unwrap().as_int().unwrap();
        assert!(v1 > 0);
        d.tick(1000);
        let v2 = d.read(&in1).unwrap().as_int().unwrap();
        assert!(v2 > v1, "counters must keep growing");
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = SimulatedDevice::new("r", DeviceProfile::default(), 7);
        let mut b = SimulatedDevice::new("r", DeviceProfile::default(), 7);
        for _ in 0..50 {
            a.tick(100);
            b.tick(100);
        }
        assert_eq!(a.agent().mib(), b.agent().mib());
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimulatedDevice::new("r", DeviceProfile::default(), 1);
        let mut b = SimulatedDevice::new("r", DeviceProfile::default(), 2);
        for _ in 0..20 {
            a.tick(100);
            b.tick(100);
        }
        assert_ne!(a.agent().mib(), b.agent().mib());
    }

    #[test]
    fn down_interfaces_carry_no_traffic() {
        let profile = DeviceProfile {
            flap_prob: 0.0,
            ..DeviceProfile::default()
        };
        let mut d = SimulatedDevice::new("r", profile, 3);
        d.set_interface_status(2, false);
        let in2 = oids::if_entry().extend(&[oids::IF_IN_OCTETS, 2]);
        d.tick(5000);
        assert_eq!(d.read(&in2), Some(&Value::Int(0)));
        d.set_interface_status(2, true);
        d.tick(5000);
        assert!(d.read(&in2).unwrap().as_int().unwrap() > 0);
    }

    #[test]
    fn fault_injection_visible_via_agent() {
        let mut d = device();
        d.inject_errors(1, 500);
        let err1 = oids::if_entry().extend(&[oids::IF_IN_ERRORS, 1]);
        assert!(d.read(&err1).unwrap().as_int().unwrap() >= 500);
    }
}
