//! Object identifiers.
//!
//! Dotted-decimal OIDs with the lexicographic ordering SNMP's
//! `get-next` traversal depends on.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use naplet_core::error::NapletError;

/// An SNMP object identifier, e.g. `1.3.6.1.2.1.1.3.0`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct Oid(Vec<u32>);

impl Oid {
    /// Build from components.
    pub fn new(parts: impl Into<Vec<u32>>) -> Oid {
        Oid(parts.into())
    }

    /// The components.
    pub fn parts(&self) -> &[u32] {
        &self.0
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for the empty OID (the root).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// `self` extended by one arc.
    pub fn child(&self, arc: u32) -> Oid {
        let mut v = self.0.clone();
        v.push(arc);
        Oid(v)
    }

    /// `self` extended by several arcs.
    pub fn extend(&self, arcs: &[u32]) -> Oid {
        let mut v = self.0.clone();
        v.extend_from_slice(arcs);
        Oid(v)
    }

    /// Is `self` a (non-strict) prefix of `other`? Subtree membership
    /// test for walks.
    pub fn is_prefix_of(&self, other: &Oid) -> bool {
        other.0.len() >= self.0.len() && other.0[..self.0.len()] == self.0[..]
    }

    /// Scalar instance: `self` + `.0` (the SNMP convention the paper's
    /// `retrieve()` uses: `setObjectID(param + ".0")`).
    pub fn instance(&self) -> Oid {
        self.child(0)
    }
}

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for p in &self.0 {
            if !first {
                write!(f, ".")?;
            }
            write!(f, "{p}")?;
            first = false;
        }
        Ok(())
    }
}

impl FromStr for Oid {
    type Err = NapletError;
    fn from_str(s: &str) -> Result<Oid, NapletError> {
        if s.is_empty() {
            return Ok(Oid::default());
        }
        let parts = s
            .split('.')
            .map(|p| {
                p.parse::<u32>()
                    .map_err(|_| NapletError::Parse(format!("bad OID component `{p}` in `{s}`")))
            })
            .collect::<Result<Vec<u32>, _>>()?;
        Ok(Oid(parts))
    }
}

impl From<&[u32]> for Oid {
    fn from(v: &[u32]) -> Oid {
        Oid(v.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_display_round_trip() {
        for s in ["1.3.6.1.2.1.1.3.0", "1", "0.0"] {
            let oid: Oid = s.parse().unwrap();
            assert_eq!(oid.to_string(), s);
        }
        assert!("1.x.3".parse::<Oid>().is_err());
        assert_eq!("".parse::<Oid>().unwrap(), Oid::default());
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a: Oid = "1.3.6.1.2.1.1".parse().unwrap();
        let b: Oid = "1.3.6.1.2.1.1.1.0".parse().unwrap();
        let c: Oid = "1.3.6.1.2.1.2".parse().unwrap();
        assert!(a < b);
        assert!(b < c);
        assert!(a < c);
    }

    #[test]
    fn prefix_and_children() {
        let sys: Oid = "1.3.6.1.2.1.1".parse().unwrap();
        let uptime = sys.extend(&[3, 0]);
        assert!(sys.is_prefix_of(&uptime));
        assert!(sys.is_prefix_of(&sys));
        assert!(!uptime.is_prefix_of(&sys));
        assert_eq!(sys.child(3).instance(), uptime);
        assert_eq!(uptime.len(), 9);
    }
}
