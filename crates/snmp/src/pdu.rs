//! SNMP protocol data units (the subset MAN uses: get, get-next, set,
//! and the walk convenience the centralized baseline issues as a
//! sequence of get-nexts).

use serde::{Deserialize, Serialize};

use naplet_core::value::Value;

use crate::oid::Oid;

/// Request operations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SnmpOp {
    /// Get the named instances.
    Get(Vec<Oid>),
    /// Get the lexicographically next instance after the OID.
    GetNext(Oid),
    /// Set an instance (requires the write community).
    Set(Oid, Value),
    /// Server-side subtree walk (modelled as the agent answering a
    /// whole get-next sweep in one exchange; the *centralized* baseline
    /// instead issues one `GetNext` per variable to reproduce the
    /// paper's "fine-grained get and set" micro-management).
    Walk(Oid),
}

/// A request PDU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnmpRequest {
    /// Community string (authentication).
    pub community: String,
    /// Operation.
    pub op: SnmpOp,
}

/// Error status in a response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SnmpError {
    /// Success.
    NoError,
    /// Unknown OID.
    NoSuchName,
    /// Bad community string.
    BadCommunity,
    /// Set refused (read-only instance or community).
    ReadOnly,
    /// End of MIB reached on get-next.
    EndOfMib,
}

/// A response PDU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnmpResponse {
    /// Status.
    pub error: SnmpError,
    /// Variable bindings.
    pub bindings: Vec<(Oid, Value)>,
}

impl SnmpResponse {
    /// Successful response with bindings.
    pub fn ok(bindings: Vec<(Oid, Value)>) -> SnmpResponse {
        SnmpResponse {
            error: SnmpError::NoError,
            bindings,
        }
    }

    /// Error response.
    pub fn err(error: SnmpError) -> SnmpResponse {
        SnmpResponse {
            error,
            bindings: Vec::new(),
        }
    }

    /// True on success.
    pub fn is_ok(&self) -> bool {
        self.error == SnmpError::NoError
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_codec() {
        let req = SnmpRequest {
            community: "public".into(),
            op: SnmpOp::Get(vec!["1.3.6.1.2.1.1.5.0".parse().unwrap()]),
        };
        let bytes = naplet_core::codec::to_bytes(&req).unwrap();
        let back: SnmpRequest = naplet_core::codec::from_bytes(&bytes).unwrap();
        assert_eq!(back, req);

        let resp = SnmpResponse::ok(vec![("1.1".parse().unwrap(), Value::Int(3))]);
        assert!(resp.is_ok());
        assert!(!SnmpResponse::err(SnmpError::BadCommunity).is_ok());
    }
}
