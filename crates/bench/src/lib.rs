//! # naplet-bench
//!
//! Experiment drivers and benchmark harness: every table/figure row in
//! EXPERIMENTS.md regenerates through this crate, either via the
//! `figures` binary (`cargo run -p naplet-bench --bin figures`) or the
//! criterion benches (`cargo bench`).

#![warn(missing_docs)]

pub mod churn;
pub mod cluster;
pub mod experiments;
pub mod scenarios;
pub mod suite;

pub use churn::{run_churn, ChurnConfig, ChurnReport};
pub use experiments::{
    exp_e1_crossover, exp_e2_latency, exp_e2_walk, exp_f3_devices, exp_filtering, exp_vm_vs_native,
    render_man_table, ManRow,
};
pub use scenarios::{
    accumulation_experiment, bench_key, chaos_experiment, code_loading_experiment,
    crash_chaos_experiment, itinerary_experiment, messaging_experiment, probe_registry,
    scheduling_experiment, traced_chaos_experiment, traced_crash_chaos_experiment,
    watched_chaos_experiment, AccumulationOutcome, ChaosOutcome, CodeLoadingOutcome,
    CrashChaosOutcome, ItineraryOutcome, MessagingOutcome, Probe, RingWorld, TracedChaosOutcome,
    PROBE_CODEBASE, PROBE_CODE_SIZE,
};
pub use suite::{
    compare_reports, normalize_timing, run_suite, CompareCheck, Profile, SuiteConfig, SuiteReport,
    WorkloadResult, TIMING_FIELDS,
};
