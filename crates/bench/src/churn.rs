//! Churn-storm benchmark for the replicated NapletDirectory (PR7).
//!
//! Launches waves of short-lived probe naplets against a
//! [`LocationMode::ReplicatedDirectory`] space, crashes the consensus
//! *leader* mid-storm, and measures what the paper's robustness story
//! cares about: did any registration get lost or duplicated, how long
//! does an owner-side lookup take end to end (post → delivery
//! confirmation), and how often the location cache serves an answer
//! that turns out stale. The whole run is virtual-time deterministic
//! for a fixed seed; only `wall_ms`/`events_per_sec` vary between
//! machines.
//!
//! The committed `BENCH_PR7.json` at the repo root is this workload at
//! 100 000 naplets (`ChurnConfig::storm`), regenerated via
//! `cargo run --release -p naplet-bench --bin bench -- --churn --out BENCH_PR7.json`.

use std::fmt::Write as _;
use std::time::Instant;

use naplet_core::clock::Millis;
use naplet_core::id::NapletId;
use naplet_core::itinerary::{ActionSpec, Itinerary, Pattern};
use naplet_core::message::{Payload, Sender};
use naplet_core::naplet::{AgentKind, Naplet};
use naplet_core::value::Value;
use naplet_net::{Bandwidth, Fabric, LatencyModel};
use naplet_server::{LocationMode, MonitorPolicy, ServerConfig, SimRuntime};

use crate::scenarios::{bench_key, probe_registry, PROBE_CODEBASE};

/// Shape of a churn-storm run.
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// Total naplets launched across all waves.
    pub naplets: usize,
    /// Number of launch waves the naplets are spread over.
    pub waves: usize,
    /// Virtual ms between wave starts.
    pub wave_gap_ms: u64,
    /// Worker hosts journeys hop across.
    pub workers: usize,
    /// Directory replica-set size (dedicated `d*` hosts).
    pub replicas: usize,
    /// Worker hops per journey.
    pub hops: usize,
    /// Owner-post a lookup probe to every k-th naplet (0 = none).
    pub lookup_every: usize,
    /// Crash the current directory leader when this wave launches.
    pub failover_at_wave: Option<usize>,
    /// Virtual ms the crashed leader stays down before restarting.
    pub restart_after_ms: u64,
    /// Fabric seed.
    pub seed: u64,
}

impl ChurnConfig {
    /// The headline storm: `naplets` journeys in waves of ~100 over 16
    /// workers and a 3-replica directory, leader killed a third of the
    /// way in and restarted 2 s (virtual) later. Wave count scales
    /// with the storm so the launch rate stays ~1000 naplets per
    /// virtual second regardless of total size.
    pub fn storm(naplets: usize, seed: u64) -> ChurnConfig {
        let waves = (naplets.div_ceil(100)).clamp(1, naplets.max(1));
        ChurnConfig {
            naplets,
            waves,
            wave_gap_ms: 100,
            workers: 16,
            replicas: 3,
            hops: 3,
            lookup_every: 50,
            failover_at_wave: Some(waves / 3),
            restart_after_ms: 2_000,
            seed,
        }
    }
}

/// Measured outcome of a churn-storm run. All fields except `wall_ms`
/// and `events_per_sec` are deterministic for a fixed config.
#[derive(Debug, Clone)]
pub struct ChurnReport {
    /// Config echo: total naplets launched.
    pub naplets: u64,
    /// Config echo: worker hosts.
    pub workers: u64,
    /// Config echo: directory replicas.
    pub replicas: u64,
    /// Config echo: launch waves.
    pub waves: u64,
    /// Config echo: worker hops per journey.
    pub hops: u64,
    /// Config echo: seed.
    pub seed: u64,
    /// Leader crashes injected (0 or 1).
    pub forced_failovers: u64,
    /// Elections won across the replica set (`repl.elections`).
    pub elections: u64,
    /// Leadership handovers observed by followers (`repl.leader_changes`).
    pub leader_changes: u64,
    /// Directory operations committed through the replicated log.
    pub commits: u64,
    /// Commit latency quantiles (propose → commit, virtual ms).
    pub commit_lag_ms_p50: u64,
    /// 95th percentile commit lag.
    pub commit_lag_ms_p95: u64,
    /// 99th percentile commit lag.
    pub commit_lag_ms_p99: u64,
    /// Journeys that reported home (target: all of them).
    pub journeys_completed: u64,
    /// Launched naplets that never reported (target: 0).
    pub journeys_lost: u64,
    /// Naplets that reported more than once (target: 0).
    pub duplicate_reports: u64,
    /// Journey completion quantiles (launch → final report, virtual ms).
    pub journey_ms_p50: u64,
    /// 95th percentile journey time.
    pub journey_ms_p95: u64,
    /// 99th percentile journey time — this is where a stalled election
    /// would show up, since arrivals gate on a committed registration.
    pub journey_ms_p99: u64,
    /// Owner lookups posted at moving naplets.
    pub lookups: u64,
    /// Lookups confirmed delivered (the rest raced journey completion).
    pub lookups_confirmed: u64,
    /// Lookup round-trip quantiles (post → delivery confirmation,
    /// virtual ms) — each one resolves the target through the
    /// replicated directory.
    pub lookup_ms_p50: u64,
    /// 95th percentile lookup round-trip.
    pub lookup_ms_p95: u64,
    /// 99th percentile lookup round-trip.
    pub lookup_ms_p99: u64,
    /// Location-cache hits summed over the space.
    pub locator_hits: u64,
    /// Location-cache misses summed over the space.
    pub locator_misses: u64,
    /// Location answers (cache or directory) that later proved stale:
    /// the message arrived after the agent moved on and had to forward
    /// along the footprint trail or bounce back for re-resolution.
    pub locator_stale_hits: u64,
    /// Fraction of all location resolutions (cache hits + directory
    /// queries) that proved stale (0 when there were none).
    pub stale_hit_rate: f64,
    /// Simulation events processed.
    pub events: u64,
    /// Virtual duration of the whole storm.
    pub virtual_ms: u64,
    /// Wall-clock duration (timing; machine-dependent).
    pub wall_ms: f64,
    /// Events per wall-clock second (timing; machine-dependent).
    pub events_per_sec: u64,
}

impl ChurnReport {
    /// Render the report in the committed `BENCH_PR7.json` shape:
    /// fixed field order, timing fields last.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"schema\": \"naplet-bench/churn-v1\",");
        let _ = writeln!(out, "  \"name\": \"directory_churn_storm\",");
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"naplets\": {},", self.naplets);
        let _ = writeln!(out, "  \"workers\": {},", self.workers);
        let _ = writeln!(out, "  \"replicas\": {},", self.replicas);
        let _ = writeln!(out, "  \"waves\": {},", self.waves);
        let _ = writeln!(out, "  \"hops\": {},", self.hops);
        let _ = writeln!(out, "  \"forced_failovers\": {},", self.forced_failovers);
        let _ = writeln!(out, "  \"elections\": {},", self.elections);
        let _ = writeln!(out, "  \"leader_changes\": {},", self.leader_changes);
        let _ = writeln!(out, "  \"commits\": {},", self.commits);
        let _ = writeln!(out, "  \"commit_lag_ms_p50\": {},", self.commit_lag_ms_p50);
        let _ = writeln!(out, "  \"commit_lag_ms_p95\": {},", self.commit_lag_ms_p95);
        let _ = writeln!(out, "  \"commit_lag_ms_p99\": {},", self.commit_lag_ms_p99);
        let _ = writeln!(
            out,
            "  \"journeys_completed\": {},",
            self.journeys_completed
        );
        let _ = writeln!(out, "  \"journeys_lost\": {},", self.journeys_lost);
        let _ = writeln!(out, "  \"duplicate_reports\": {},", self.duplicate_reports);
        let _ = writeln!(out, "  \"journey_ms_p50\": {},", self.journey_ms_p50);
        let _ = writeln!(out, "  \"journey_ms_p95\": {},", self.journey_ms_p95);
        let _ = writeln!(out, "  \"journey_ms_p99\": {},", self.journey_ms_p99);
        let _ = writeln!(out, "  \"lookups\": {},", self.lookups);
        let _ = writeln!(out, "  \"lookups_confirmed\": {},", self.lookups_confirmed);
        let _ = writeln!(out, "  \"lookup_ms_p50\": {},", self.lookup_ms_p50);
        let _ = writeln!(out, "  \"lookup_ms_p95\": {},", self.lookup_ms_p95);
        let _ = writeln!(out, "  \"lookup_ms_p99\": {},", self.lookup_ms_p99);
        let _ = writeln!(out, "  \"locator_hits\": {},", self.locator_hits);
        let _ = writeln!(out, "  \"locator_misses\": {},", self.locator_misses);
        let _ = writeln!(
            out,
            "  \"locator_stale_hits\": {},",
            self.locator_stale_hits
        );
        let _ = writeln!(out, "  \"stale_hit_rate\": {:.4},", self.stale_hit_rate);
        let _ = writeln!(out, "  \"events\": {},", self.events);
        let _ = writeln!(out, "  \"virtual_ms\": {},", self.virtual_ms);
        let _ = writeln!(out, "  \"wall_ms\": {:.1},", self.wall_ms);
        let _ = writeln!(out, "  \"events_per_sec\": {}", self.events_per_sec);
        let _ = writeln!(out, "}}");
        out
    }
}

fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Run the churn storm and measure it.
pub fn run_churn(cfg: &ChurnConfig) -> ChurnReport {
    let replicas: Vec<String> = (0..cfg.replicas).map(|i| format!("d{i}")).collect();
    let workers: Vec<String> = (0..cfg.workers).map(|i| format!("w{i}")).collect();
    let mode = LocationMode::ReplicatedDirectory(replicas.clone());

    let fabric = Fabric::new(
        LatencyModel::Constant(2),
        Bandwidth::fast_ethernet(),
        cfg.seed,
    );
    let mut rt = SimRuntime::new(fabric);
    let reg = probe_registry();
    // dwell long enough that a mid-journey owner post can win the
    // race against the moving agent: resolution costs one directory
    // round-trip (~2 network hops + commit lag), so a 5ms dwell makes
    // every lookup chase a ghost
    let policy = MonitorPolicy {
        native_dwell_ms: 20,
        ..MonitorPolicy::default()
    };
    for host in std::iter::once("home".to_string())
        .chain(replicas.iter().cloned())
        .chain(workers.iter().cloned())
    {
        let mut sc = ServerConfig::open(&host, mode.clone());
        sc.codebase = reg.clone();
        sc.monitor_policy = policy.clone();
        rt.add_server(sc);
    }

    let key = bench_key();
    let wave_size = cfg.naplets.div_ceil(cfg.waves.max(1));
    let mut launched: Vec<(NapletId, u64)> = Vec::with_capacity(cfg.naplets);
    let mut lookup_sends: Vec<Millis> = Vec::new();
    let mut forced_failovers = 0u64;
    let mut failover_pending = cfg.failover_at_wave;
    let mut ts = 0u64;

    let wall_start = Instant::now();

    // warm up: run until the replica set has elected its first leader
    // (~700ms with the default election timeout), so wave 0 measures
    // steady-state churn rather than the cold-start election and the
    // forced failover fires at exactly the configured wave
    while !replicas.iter().any(|d| {
        rt.server(d)
            .and_then(|s| s.repl_core())
            .is_some_and(|c| c.is_leader())
    }) {
        let t = rt.now().0 + 100;
        if t > 10_000 {
            break;
        }
        rt.run_until(Millis(t));
    }

    let base = rt.now().0 + 50;
    for wave in 0..cfg.waves {
        let wave_start = Millis(base + wave as u64 * cfg.wave_gap_ms);
        rt.run_until(wave_start);

        // crash whoever leads at the first wave (at or after the
        // configured one) where an election has produced a leader; the
        // survivors must re-elect while this wave's registrations are
        // in flight
        if failover_pending.is_some_and(|w| wave >= w) {
            let leader = replicas
                .iter()
                .find(|d| {
                    rt.server(d)
                        .and_then(|s| s.repl_core())
                        .is_some_and(|c| c.is_leader())
                })
                .cloned();
            if let Some(leader) = leader {
                rt.crash_server(&leader, Some(cfg.restart_after_ms));
                forced_failovers += 1;
                failover_pending = None;
            }
        }

        let mut sampled: Vec<NapletId> = Vec::new();
        for k in 0..wave_size {
            let i = launched.len();
            if i >= cfg.naplets {
                break;
            }
            // unique creation timestamp: NapletId is (owner, home,
            // creation ms), so same-instant launches must not share one
            ts += 1;
            let route: Vec<&str> = (0..cfg.hops)
                .map(|h| workers[(i + h * 5) % workers.len()].as_str())
                .collect();
            let it = Itinerary::new(Pattern::seq_of_hosts(&route, None))
                .unwrap()
                .with_final_action(ActionSpec::ReportHome);
            let naplet = Naplet::create(
                &key,
                "czxu",
                "home",
                Millis(ts),
                PROBE_CODEBASE,
                AgentKind::Native,
                it,
                vec![],
            )
            .unwrap();
            launched.push((naplet.id().clone(), rt.now().0));
            rt.launch(naplet).unwrap();

            if cfg.lookup_every > 0 && i.is_multiple_of(cfg.lookup_every) {
                sampled.push(launched[i].0.clone());
            }
            let _ = k;
        }

        // owner-side lookup probes at a sample of this wave's naplets,
        // posted mid-journey so the target is registered somewhere:
        // the first post resolves through the replicated directory,
        // the second (a beat later) exercises the location cache — by
        // then the agent has usually hopped, so some cached answers
        // prove stale and must chase
        if !sampled.is_empty() {
            for burst in [cfg.wave_gap_ms / 3, cfg.wave_gap_ms / 2] {
                rt.run_until(Millis(wave_start.0 + burst));
                for id in &sampled {
                    lookup_sends.push(rt.now());
                    rt.owner_post("home", id.clone(), Payload::User(Value::Int(0)))
                        .unwrap();
                }
            }
        }
    }
    rt.run_to_quiescence(500_000_000);
    let wall_ms = wall_start.elapsed().as_secs_f64() * 1e3;

    // journey outcomes: exactly one home report per naplet
    let reports = rt.drain_reports("home");
    let mut report_counts: std::collections::HashMap<&NapletId, u64> =
        std::collections::HashMap::new();
    for (id, _) in &reports {
        *report_counts.entry(id).or_default() += 1;
    }
    let mut completed = 0u64;
    let mut duplicates = 0u64;
    let mut journey_ms: Vec<u64> = Vec::with_capacity(launched.len());
    for (id, launched_at) in &launched {
        match report_counts.get(id).copied().unwrap_or(0) {
            0 => {}
            n => {
                completed += 1;
                if n > 1 {
                    duplicates += 1;
                }
                if let Some(entry) = rt.server("home").and_then(|s| s.manager.table_entry(id)) {
                    journey_ms.push(entry.updated.0.saturating_sub(*launched_at));
                }
            }
        }
    }
    journey_ms.sort_unstable();

    // lookup round-trips from the home messenger's confirmations
    let home = rt.server("home").unwrap();
    let mut lookup_ms: Vec<u64> = Vec::new();
    for (k, sent) in lookup_sends.iter().enumerate() {
        let seq = (k + 1) as u64;
        if let Some(c) = home
            .messenger
            .confirmation(&Sender::Owner("home".into()), seq)
        {
            lookup_ms.push(c.at.since(*sent));
        }
    }
    lookup_ms.sort_unstable();

    // location-cache effectiveness across the whole space
    let mut locator_hits = 0u64;
    let mut locator_misses = 0u64;
    let mut locator_stale = 0u64;
    for host in rt.server_hosts() {
        let s = rt.server(&host).unwrap();
        locator_hits += s.locator.hits;
        locator_misses += s.locator.misses;
        locator_stale += s.locator.stale_hits;
    }

    let metrics = rt.obs().metrics.snapshot();
    let lag = metrics.histogram("repl_commit_lag_ms");
    let q = |p: f64| lag.map(|h| h.quantile(p)).unwrap_or(0);

    ChurnReport {
        naplets: launched.len() as u64,
        workers: cfg.workers as u64,
        replicas: cfg.replicas as u64,
        waves: cfg.waves as u64,
        hops: cfg.hops as u64,
        seed: cfg.seed,
        forced_failovers,
        elections: metrics.counter("repl.elections"),
        leader_changes: metrics.counter("repl.leader_changes"),
        commits: metrics.counter("repl.commits"),
        commit_lag_ms_p50: q(0.50),
        commit_lag_ms_p95: q(0.95),
        commit_lag_ms_p99: q(0.99),
        journeys_completed: completed,
        journeys_lost: launched.len() as u64 - completed,
        duplicate_reports: duplicates,
        journey_ms_p50: exact_quantile(&journey_ms, 0.50),
        journey_ms_p95: exact_quantile(&journey_ms, 0.95),
        journey_ms_p99: exact_quantile(&journey_ms, 0.99),
        lookups: lookup_sends.len() as u64,
        lookups_confirmed: lookup_ms.len() as u64,
        lookup_ms_p50: exact_quantile(&lookup_ms, 0.50),
        lookup_ms_p95: exact_quantile(&lookup_ms, 0.95),
        lookup_ms_p99: exact_quantile(&lookup_ms, 0.99),
        locator_hits,
        locator_misses,
        locator_stale_hits: locator_stale,
        stale_hit_rate: if locator_hits + locator_misses > 0 {
            locator_stale as f64 / (locator_hits + locator_misses) as f64
        } else {
            0.0
        },
        events: rt.events_processed,
        virtual_ms: rt.now().0,
        wall_ms,
        events_per_sec: if wall_ms > 0.0 {
            (rt.events_processed as f64 / (wall_ms / 1e3)) as u64
        } else {
            0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini() -> ChurnConfig {
        ChurnConfig {
            naplets: 240,
            waves: 8,
            wave_gap_ms: 120,
            workers: 6,
            replicas: 3,
            hops: 2,
            lookup_every: 20,
            failover_at_wave: Some(3),
            restart_after_ms: 1_500,
            seed: 7,
        }
    }

    #[test]
    fn storm_survives_leader_crash_without_losing_journeys() {
        let r = run_churn(&mini());
        assert_eq!(r.forced_failovers, 1, "leader crash must be injected");
        assert_eq!(r.journeys_lost, 0, "no journey may be lost: {r:?}");
        assert_eq!(r.duplicate_reports, 0, "no journey may duplicate: {r:?}");
        assert_eq!(r.journeys_completed, 240);
        // the survivors elected at least once more after the crash
        assert!(r.elections >= 2, "expected a re-election: {r:?}");
        assert!(r.commits > 0);
        // lookups posted outside the outage window confirm; ones whose
        // target retires before redelivery legitimately never do
        assert!(
            r.lookups > 0 && r.lookups_confirmed >= r.lookups / 3,
            "too few lookups confirmed: {r:?}"
        );
        assert!(r.lookup_ms_p99 >= r.lookup_ms_p50);
        assert!(r.locator_hits > 0, "cache never hit: {r:?}");
        assert!(r.locator_stale_hits > 0, "no stale answer observed: {r:?}");
    }

    #[test]
    fn seeded_storm_is_deterministic() {
        let a = run_churn(&mini());
        let b = run_churn(&mini());
        let strip = |r: &ChurnReport| {
            r.to_json()
                .lines()
                .filter(|l| !l.contains("wall_ms") && !l.contains("events_per_sec"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&a), strip(&b));
    }
}
