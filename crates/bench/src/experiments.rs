//! The MAN-based experiments (F3, E1, E2) and table rendering.

use naplet_net::{Bandwidth, LatencyModel, TrafficClass};
use naplet_snmp::Oid;

use naplet_man::{health_oids, ManWorld};

/// One row of the MAN-vs-SNMP comparison (F3).
#[derive(Debug, Clone)]
pub struct ManRow {
    /// Device count.
    pub devices: usize,
    /// Variables polled per device.
    pub vars: usize,
    /// Mobile-agent bytes on the wire.
    pub agent_bytes: u64,
    /// Centralized (fine-grained) bytes.
    pub central_bytes: u64,
    /// Mobile-agent completion (virtual ms).
    pub agent_ms: u64,
    /// Centralized completion (virtual ms).
    pub central_ms: u64,
    /// Station-side operations, agent paradigm.
    pub agent_ops: u64,
    /// Station-side operations, centralized paradigm.
    pub central_ops: u64,
}

fn man_world(devices: usize, latency: LatencyModel, seed: u64) -> ManWorld {
    let mut w = ManWorld::build(devices, 4, latency, Bandwidth::fast_ethernet(), seed);
    w.tick_devices(30_000);
    // steady-state periodic management: code caches are warm (E7
    // measures the cold-start cost separately)
    w.warm().expect("warm round");
    w
}

/// F3: sweep device counts at fixed variables/device; broadcast agents
/// vs fine-grained centralized polling.
pub fn exp_f3_devices(device_counts: &[usize], vars: usize, seed: u64) -> Vec<ManRow> {
    device_counts
        .iter()
        .map(|&devices| {
            let oids = health_oids(vars, 4);
            let mut w = man_world(devices, LatencyModel::lan(), seed);
            let agent = w.agent_poll(&oids, true, None).expect("agent poll");
            let central = w.centralized_poll(&oids, true).expect("central poll");
            row(devices, vars, &agent, &central)
        })
        .collect()
}

/// E1: sweep variables/device at fixed device count — locates the
/// crossover where shipping the computation (broadcast clones that
/// filter on site) beats per-variable polling on wire bytes.
pub fn exp_e1_crossover(var_counts: &[usize], devices: usize, seed: u64) -> Vec<ManRow> {
    var_counts
        .iter()
        .map(|&vars| {
            let oids = health_oids(vars, 4);
            let mut w = man_world(devices, LatencyModel::lan(), seed);
            let agent = w.agent_poll(&oids, true, Some(0)).expect("agent poll");
            let central = w.centralized_poll(&oids, true).expect("central poll");
            row(devices, vars, &agent, &central)
        })
        .collect()
}

/// E2b: the table-retrieval task — a sequential get-next walk of the
/// interface table per device (round-trip-bound) vs broadcast agents
/// walking locally. This is where "overcoming network latency" shows.
pub fn exp_e2_walk(latencies_ms: &[u64], devices: usize, seed: u64) -> Vec<(u64, ManRow)> {
    latencies_ms
        .iter()
        .map(|&lat| {
            let mut w = man_world(devices, LatencyModel::Constant(lat), seed);
            let root = naplet_snmp::oids::if_entry();
            let agent = w.agent_walk(&root).expect("agent walk");
            let central = w.centralized_walk(&root).expect("central walk");
            let vars = agent
                .per_device
                .values()
                .next()
                .and_then(|v| v.as_list().ok().map(|l| l.len()))
                .unwrap_or(0);
            (lat, row(devices, vars, &agent, &central))
        })
        .collect()
}

/// E2: sweep link latency at fixed size — "overcoming network latency".
pub fn exp_e2_latency(
    latencies_ms: &[u64],
    devices: usize,
    vars: usize,
    seed: u64,
) -> Vec<(u64, ManRow)> {
    latencies_ms
        .iter()
        .map(|&lat| {
            let oids = health_oids(vars, 4);
            let mut w = man_world(devices, LatencyModel::Constant(lat), seed);
            let agent = w.agent_poll(&oids, true, None).expect("agent poll");
            let central = w.centralized_poll(&oids, true).expect("central poll");
            (lat, row(devices, vars, &agent, &central))
        })
        .collect()
}

/// E1b: the threshold-diagnosis ablation — raw collection vs on-site
/// filtering, measuring report (Message-class) bytes.
pub fn exp_filtering(devices: usize, seed: u64) -> (u64, u64) {
    let oids = naplet_man::diagnosis_oids(4);
    let mut w = man_world(devices, LatencyModel::lan(), seed);
    let raw = w.agent_poll(&oids, false, None).expect("raw poll");
    let filtered = w
        .agent_poll(&oids, false, Some(1_000_000_000))
        .expect("filtered poll");
    (
        raw.stats.bytes(TrafficClass::Message),
        filtered.stats.bytes(TrafficClass::Message),
    )
}

/// Native-vs-VM agent comparison on the same task (ablation).
pub fn exp_vm_vs_native(devices: usize, vars: usize, seed: u64) -> (ManRow, ManRow) {
    let oids: Vec<Oid> = health_oids(vars, 4);
    let mut w = man_world(devices, LatencyModel::lan(), seed);
    let native = w.agent_poll(&oids, false, None).expect("native");
    let vm = w.vm_agent_poll(&oids).expect("vm");
    let central = w.centralized_poll(&oids, true).expect("central");
    (
        row(devices, vars, &native, &central),
        row(devices, vars, &vm, &central),
    )
}

fn row(
    devices: usize,
    vars: usize,
    agent: &naplet_man::PollOutcome,
    central: &naplet_man::PollOutcome,
) -> ManRow {
    ManRow {
        devices,
        vars,
        agent_bytes: agent.total_bytes(),
        central_bytes: central.total_bytes(),
        agent_ms: agent.completion_ms,
        central_ms: central.completion_ms,
        agent_ops: agent.station_ops,
        central_ops: central.station_ops,
    }
}

/// Render rows as an aligned text table.
pub fn render_man_table(title: &str, rows: &[ManRow]) -> String {
    let mut s = String::new();
    s.push_str(&format!("== {title} ==\n"));
    s.push_str(&format!(
        "{:>8} {:>6} | {:>14} {:>14} {:>7} | {:>12} {:>12} | {:>10} {:>11}\n",
        "devices",
        "vars",
        "agent bytes",
        "central bytes",
        "ratio",
        "agent ms",
        "central ms",
        "agent ops",
        "central ops"
    ));
    for r in rows {
        let ratio = if r.agent_bytes == 0 {
            0.0
        } else {
            r.central_bytes as f64 / r.agent_bytes as f64
        };
        s.push_str(&format!(
            "{:>8} {:>6} | {:>14} {:>14} {:>6.2}x | {:>12} {:>12} | {:>10} {:>11}\n",
            r.devices,
            r.vars,
            r.agent_bytes,
            r.central_bytes,
            ratio,
            r.agent_ms,
            r.central_ms,
            r.agent_ops,
            r.central_ops
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f3_shapes_hold_small() {
        let rows = exp_f3_devices(&[2, 4], 8, 3);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            // the centralized station does one PDU per var per device;
            // the broadcast agent launches once and gets one report per
            // device
            assert_eq!(r.central_ops, (r.devices * r.vars) as u64);
            assert_eq!(r.agent_ops, 1 + r.devices as u64);
            assert!(r.agent_bytes > 0 && r.central_bytes > 0);
        }
        // centralized traffic grows linearly with device count
        assert!(rows[1].central_bytes > rows[0].central_bytes);
    }

    #[test]
    fn e1_centralized_grows_with_vars_faster() {
        let rows = exp_e1_crossover(&[2, 16], 3, 5);
        let growth_central = rows[1].central_bytes as f64 / rows[0].central_bytes as f64;
        let growth_agent = rows[1].agent_bytes as f64 / rows[0].agent_bytes as f64;
        // per-variable polling scales ~8x going 2→16 vars; the agent
        // only grows by the extra payload it carries
        assert!(
            growth_central > growth_agent * 1.5,
            "central {growth_central:.2}x vs agent {growth_agent:.2}x"
        );
    }

    #[test]
    fn filtering_reduces_report_traffic() {
        let (raw, filtered) = exp_filtering(3, 9);
        assert!(filtered < raw, "filtered {filtered} < raw {raw}");
    }

    #[test]
    fn table_renders() {
        let rows = exp_f3_devices(&[2], 4, 1);
        let t = render_man_table("t", &rows);
        assert!(t.contains("devices"));
        assert!(t.lines().count() >= 3);
    }
}
