//! Reusable experiment scenarios built on the framework.
//!
//! These power both the criterion benches and the `figures` binary,
//! so every number in EXPERIMENTS.md regenerates from one code path.

use naplet_core::behavior::NapletBehavior;
use naplet_core::clock::Millis;
use naplet_core::codebase::CodebaseRegistry;
use naplet_core::context::NapletContext;
use naplet_core::credential::SigningKey;
use naplet_core::error::Result;
use naplet_core::itinerary::{ActionSpec, Itinerary, Pattern};
use naplet_core::message::{Payload, Sender};
use naplet_core::naplet::{AgentKind, Naplet};
use naplet_core::value::Value;
use naplet_net::{Bandwidth, Fabric, LatencyModel};
use naplet_obs::{ObsSnapshot, StallAlert, WatchdogConfig};
use naplet_server::{
    LocationMode, MonitorPolicy, ResourceUsage, ServerConfig, SimRuntime, StatusReport,
};

/// Codebase name for the probe behaviour.
pub const PROBE_CODEBASE: &str = "naplet://code/probe.jar";
/// Declared probe code size.
pub const PROBE_CODE_SIZE: u64 = 8 * 1024;

/// Probe behaviour: records visits and received messages (value +
/// forwarding hop count) into state.
pub struct Probe;

impl NapletBehavior for Probe {
    fn on_start(&mut self, ctx: &mut dyn NapletContext) -> Result<()> {
        let host = ctx.host_name().to_string();
        let mut visits = match ctx.state().get("visits") {
            Value::List(l) => l,
            _ => Vec::new(),
        };
        visits.push(Value::Str(host));
        ctx.state().set("visits", Value::List(visits));

        let mut inbox = match ctx.state().get("inbox") {
            Value::List(l) => l,
            _ => Vec::new(),
        };
        while let Some(m) = ctx.get_message()? {
            if let Payload::User(v) = m.payload {
                inbox.push(Value::map([
                    ("value", v),
                    ("hops", Value::Int(m.forward_hops as i64)),
                ]));
            }
        }
        ctx.state().set("inbox", Value::List(inbox));
        Ok(())
    }
}

/// Registry holding the probe behaviour.
pub fn probe_registry() -> CodebaseRegistry {
    let mut r = CodebaseRegistry::new();
    r.register(PROBE_CODEBASE, PROBE_CODE_SIZE, || Probe);
    r
}

/// The signing key experiments use.
pub fn bench_key() -> SigningKey {
    SigningKey::new("czxu", b"bench-secret")
}

/// A ring world: home + `n` servers `s0..s(n-1)` with one location
/// mode and a configurable dwell time.
pub struct RingWorld {
    /// The runtime.
    pub rt: SimRuntime,
    /// Worker host names.
    pub hosts: Vec<String>,
    /// The home host.
    pub home: String,
}

impl RingWorld {
    /// Build the world.
    pub fn build(
        n: usize,
        mode: LocationMode,
        latency: LatencyModel,
        dwell_ms: u64,
        seed: u64,
    ) -> RingWorld {
        let fabric = Fabric::new(latency, Bandwidth::fast_ethernet(), seed);
        let mut rt = SimRuntime::new(fabric);
        let reg = probe_registry();
        let policy = MonitorPolicy {
            native_dwell_ms: dwell_ms,
            ..MonitorPolicy::default()
        };
        let add = |rt: &mut SimRuntime, host: &str| {
            let mut cfg = ServerConfig::open(host, mode.clone());
            cfg.codebase = reg.clone();
            cfg.monitor_policy = policy.clone();
            rt.add_server(cfg);
        };
        add(&mut rt, "home");
        let hosts: Vec<String> = (0..n).map(|i| format!("s{i}")).collect();
        for h in &hosts {
            add(&mut rt, h);
        }
        RingWorld {
            rt,
            hosts,
            home: "home".into(),
        }
    }

    /// A probe naplet that walks the ring `laps` times and reports.
    pub fn probe_naplet(&self, laps: usize, ts: u64) -> Naplet {
        let mut route: Vec<&str> = Vec::new();
        for _ in 0..laps {
            route.extend(self.hosts.iter().map(String::as_str));
        }
        let it = Itinerary::new(Pattern::seq_of_hosts(&route, None))
            .unwrap()
            .with_final_action(ActionSpec::ReportHome);
        Naplet::create(
            &bench_key(),
            "czxu",
            &self.home,
            Millis(ts),
            PROBE_CODEBASE,
            AgentKind::Native,
            it,
            vec![],
        )
        .unwrap()
    }
}

/// Outcome of the location/communication experiment (E4/E5).
#[derive(Debug, Clone)]
pub struct MessagingOutcome {
    /// Messages posted.
    pub posted: usize,
    /// Messages the agent actually received (from its final report).
    pub delivered: usize,
    /// Mean confirmation latency (virtual ms) over confirmed messages.
    pub mean_confirm_latency_ms: f64,
    /// Messages confirmed delivered somewhere (post-office view).
    pub confirmed: usize,
    /// Messages dropped at the forwarding cap.
    pub undeliverable: u64,
    /// Forwarding hops performed across all messengers.
    pub forwards: u64,
    /// Maximum forwarding hops observed on a delivered message.
    pub max_hops: u32,
    /// Messages waiting in special mailboxes at the end (early
    /// messages whose naplet finished before pickup).
    pub stranded_early: usize,
    /// Control traffic bytes (directory queries/registrations).
    pub control_bytes: u64,
    /// Message traffic bytes.
    pub message_bytes: u64,
    /// Journey completion (virtual ms).
    pub completion_ms: u64,
}

/// Drive a probe around the ring while the owner posts `n_messages`
/// spaced `spacing_ms` apart; measure delivery behaviour under the
/// given location mode (experiments E4/E5).
pub fn messaging_experiment(
    n_hosts: usize,
    laps: usize,
    mode: LocationMode,
    n_messages: usize,
    spacing_ms: u64,
    seed: u64,
) -> MessagingOutcome {
    // dwell long enough that the posting schedule fits inside the
    // journey (messages posted after the agent dies can never deliver)
    let mut world = RingWorld::build(n_hosts, mode, LatencyModel::Constant(2), 30, seed);
    let before = world.rt.fabric().stats().snapshot();
    let naplet = world.probe_naplet(laps, 1);
    let id = naplet.id().clone();
    let t0 = world.rt.now();
    world.rt.launch(naplet).unwrap();

    let mut send_times = Vec::with_capacity(n_messages);
    for k in 0..n_messages {
        let due = Millis(t0.0 + 5 + spacing_ms * k as u64);
        world.rt.run_until(due);
        send_times.push(world.rt.now());
        world
            .rt
            .owner_post(
                &world.home.clone(),
                id.clone(),
                Payload::User(Value::Int(k as i64)),
            )
            .unwrap();
    }
    world.rt.run_to_quiescence(50_000_000);

    // delivered messages from the agent's report
    let reports = world.rt.drain_reports(&world.home);
    let mut delivered = 0usize;
    let mut max_hops = 0u32;
    for (_, report) in &reports {
        if let Value::List(inbox) = report.get("inbox") {
            delivered += inbox.len();
            for entry in &inbox {
                if let Ok(h) = entry.get("hops").as_int() {
                    max_hops = max_hops.max(h as u32);
                }
            }
        }
    }

    // confirmation latencies at the home messenger
    let home = world.rt.server(&world.home).unwrap();
    let mut latencies = Vec::new();
    for (k, sent) in send_times.iter().enumerate() {
        let seq = (k + 1) as u64;
        if let Some(c) = home
            .messenger
            .confirmation(&Sender::Owner(world.home.clone()), seq)
        {
            latencies.push(c.at.since(*sent) as f64);
        }
    }
    let mean_confirm_latency_ms = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<f64>() / latencies.len() as f64
    };

    let mut forwards = 0;
    let mut stranded = 0;
    let mut undeliverable = 0;
    for host in world.rt.server_hosts() {
        let s = world.rt.server(&host).unwrap();
        forwards += s.messenger.forwards_performed;
        stranded += s.messenger.early_waiting();
        undeliverable += s.messenger.undeliverable;
    }
    let stats = world.rt.fabric().stats().snapshot().since(&before);
    MessagingOutcome {
        posted: n_messages,
        delivered,
        mean_confirm_latency_ms,
        confirmed: latencies.len(),
        undeliverable,
        forwards,
        max_hops,
        stranded_early: stranded,
        control_bytes: stats.bytes(naplet_net::TrafficClass::Control),
        message_bytes: stats.bytes(naplet_net::TrafficClass::Message),
        completion_ms: world.rt.now().since(t0),
    }
}

/// Outcome of an itinerary-shape run (E3).
#[derive(Debug, Clone)]
pub struct ItineraryOutcome {
    /// Shape label.
    pub shape: &'static str,
    /// Virtual completion time.
    pub completion_ms: u64,
    /// Total bytes on the wire.
    pub total_bytes: u64,
    /// Agents used (original + clones).
    pub agents: usize,
    /// Migrations performed.
    pub migrations: u64,
}

/// Run one itinerary shape over `n` hosts and measure it (E3).
pub fn itinerary_experiment(n: usize, shape: &'static str, seed: u64) -> ItineraryOutcome {
    let world = RingWorld::build(
        n,
        LocationMode::CentralDirectory("home".into()),
        LatencyModel::Constant(5),
        10,
        seed,
    );
    let mut rt = world.rt;
    let hosts: Vec<&str> = world.hosts.iter().map(String::as_str).collect();

    let pattern = match shape {
        "seq" => Pattern::seq_of_hosts(&hosts, None),
        "par" => Pattern::par_singletons(&hosts, Some(ActionSpec::ReportHome)),
        "par-of-seqs" => {
            let mid = hosts.len() / 2;
            Pattern::par(vec![
                Pattern::seq_of_hosts(&hosts[..mid], None),
                Pattern::seq_of_hosts(&hosts[mid..], None),
            ])
        }
        other => panic!("unknown shape {other}"),
    };
    let mut it = Itinerary::new(pattern).unwrap();
    if shape != "par" {
        it = it.with_final_action(ActionSpec::ReportHome);
    }
    let agents = it.agents_required();
    let naplet = Naplet::create(
        &bench_key(),
        "czxu",
        "home",
        Millis(1),
        PROBE_CODEBASE,
        AgentKind::Native,
        it,
        vec![],
    )
    .unwrap();

    let before = rt.fabric().stats().snapshot();
    let t0 = rt.now();
    rt.launch(naplet).unwrap();
    rt.run_to_quiescence(50_000_000);
    let stats = rt.fabric().stats().snapshot().since(&before);
    ItineraryOutcome {
        shape,
        completion_ms: rt.now().since(t0),
        total_bytes: stats.total_bytes(),
        agents,
        migrations: stats.messages(naplet_net::TrafficClass::Migration),
    }
}

/// Code-loading outcome (E7).
#[derive(Debug, Clone)]
pub struct CodeLoadingOutcome {
    /// Round index (0 = cold).
    pub round: usize,
    /// Code bytes transferred this round.
    pub code_bytes: u64,
    /// Completion time this round.
    pub completion_ms: u64,
}

/// Send the same agent over the same route repeatedly; round 0 pays
/// the lazy code load on every host, later rounds hit the cache (E7).
pub fn code_loading_experiment(n: usize, rounds: usize, seed: u64) -> Vec<CodeLoadingOutcome> {
    let world = RingWorld::build(
        n,
        LocationMode::ForwardingTrace,
        LatencyModel::Constant(5),
        5,
        seed,
    );
    let mut rt = world.rt;
    let hosts: Vec<&str> = world.hosts.iter().map(String::as_str).collect();
    let mut out = Vec::with_capacity(rounds);
    for round in 0..rounds {
        let it = Itinerary::new(Pattern::seq_of_hosts(&hosts, None))
            .unwrap()
            .with_final_action(ActionSpec::ReportHome);
        let naplet = Naplet::create(
            &bench_key(),
            "czxu",
            "home",
            Millis(1 + round as u64),
            PROBE_CODEBASE,
            AgentKind::Native,
            it,
            vec![],
        )
        .unwrap();
        let before = rt.fabric().stats().snapshot();
        let t0 = rt.now();
        rt.launch(naplet).unwrap();
        rt.run_to_quiescence(50_000_000);
        let stats = rt.fabric().stats().snapshot().since(&before);
        out.push(CodeLoadingOutcome {
            round,
            code_bytes: stats.bytes(naplet_net::TrafficClass::Code),
            completion_ms: rt.now().since(t0),
        });
        rt.drain_reports("home");
    }
    out
}

/// Ablation: migration wire-size growth as gathered state accumulates
/// (sequential collector) vs the broadcast pattern whose clones carry
/// only their own findings. Returns per-hop migration bytes for the
/// sequential agent and the (constant) per-clone cost for broadcast.
#[derive(Debug, Clone)]
pub struct AccumulationOutcome {
    /// Migration bytes per sequential hop, in hop order.
    pub seq_hop_bytes: Vec<u64>,
    /// Mean migration bytes per broadcast clone.
    pub broadcast_clone_bytes: u64,
}

/// Measure state-accumulation growth (DESIGN.md ablation; motivates
/// the broadcast NM itinerary and on-site filtering).
pub fn accumulation_experiment(
    n: usize,
    payload_per_visit: usize,
    seed: u64,
) -> AccumulationOutcome {
    /// Collector that grows its private state by a fixed payload per visit.
    struct Hoarder(usize);
    impl NapletBehavior for Hoarder {
        fn on_start(&mut self, ctx: &mut dyn naplet_core::context::NapletContext) -> Result<()> {
            let host = ctx.host_name().to_string();
            let blob = Value::Bytes(vec![0x5a; self.0]);
            ctx.state().update("hoard", |v| {
                if let Value::Map(m) = v {
                    m.insert(host.clone(), blob.clone());
                }
            })?;
            Ok(())
        }
    }

    let build = |seed: u64, payload: usize| {
        let mut reg = CodebaseRegistry::new();
        // zero-size codebase: per-link byte counters then show only the
        // migration itself plus the constant handshake overhead
        reg.register("hoarder", 0, move || Hoarder(payload));
        let fabric = Fabric::new(LatencyModel::Constant(2), Bandwidth::fast_ethernet(), seed);
        let mut rt = SimRuntime::new(fabric);
        for host in std::iter::once("home".to_string()).chain((0..n).map(|i| format!("s{i}"))) {
            let mut cfg = ServerConfig::open(&host, LocationMode::ForwardingTrace);
            cfg.codebase = reg.clone();
            rt.add_server(cfg);
        }
        rt
    };
    let hosts: Vec<String> = (0..n).map(|i| format!("s{i}")).collect();
    let refs: Vec<&str> = hosts.iter().map(String::as_str).collect();
    let naplet = |pattern, ts| {
        let it = Itinerary::new(pattern)
            .unwrap()
            .with_final_action(ActionSpec::ReportHome);
        let mut nap = Naplet::create(
            &bench_key(),
            "czxu",
            "home",
            Millis(ts),
            "hoarder",
            AgentKind::Native,
            it,
            vec![],
        )
        .unwrap();
        nap.state
            .set("hoard", Value::map::<[(&str, Value); 0], &str>([]));
        nap
    };

    // sequential: per-hop migration bytes from per-link counters
    let mut rt = build(seed, payload_per_visit);
    rt.launch(naplet(Pattern::seq_of_hosts(&refs, None), 1))
        .unwrap();
    rt.run_to_quiescence(10_000_000);
    let snap = rt.fabric().stats().snapshot();
    let mut seq_hop_bytes = Vec::with_capacity(n);
    let mut prev = "home".to_string();
    for h in &hosts {
        let bytes = snap
            .by_link
            .get(&(prev.clone(), h.clone()))
            .map(|c| c.bytes)
            .unwrap_or(0);
        seq_hop_bytes.push(bytes);
        prev = h.clone();
    }

    // broadcast: total migration bytes / clones
    let mut rt = build(seed ^ 1, payload_per_visit);
    rt.launch(naplet(
        Pattern::par_singletons(&refs, Some(ActionSpec::ReportHome)),
        2,
    ))
    .unwrap();
    rt.run_to_quiescence(10_000_000);
    let snap = rt.fabric().stats().snapshot();
    let broadcast_clone_bytes = snap.bytes(naplet_net::TrafficClass::Migration) / n.max(1) as u64;

    AccumulationOutcome {
        seq_hop_bytes,
        broadcast_clone_bytes,
    }
}

/// Outcome of a chaos run (reliable-transfer layer under injected
/// faults).
#[derive(Debug, Clone)]
pub struct ChaosOutcome {
    /// Probe journeys that reported home (target: all of them).
    pub completed: usize,
    /// Visit order from the probe's report.
    pub visits: Vec<String>,
    /// Hosts executed more than once (duplicated admissions; the
    /// idempotent-delivery guarantee says this stays 0 even when
    /// transfers are retransmitted).
    pub duplicate_visits: usize,
    /// Naplets stranded in a server's parked table at the end.
    pub parked: usize,
    /// Retransmitted frames (attempt ≥ 2) observed by the fabric.
    pub retransmits: u64,
    /// Frames the fabric dropped (loss or down-windows).
    pub dropped: u64,
    /// Migration-class frames that made it onto a link.
    pub migrations: u64,
    /// Migration-class bytes (ack/commit overhead is Control-class and
    /// excluded by construction).
    pub migration_bytes: u64,
    /// Control-class bytes (handshakes, acks, directory traffic).
    pub control_bytes: u64,
    /// Journey completion (virtual ms).
    pub completion_ms: u64,
}

/// Drive a 6-hop `Seq` probe across an 8-server space while injecting
/// frame loss and scheduled host down-windows; the acknowledged
/// handoff must still complete the journey exactly once.
///
/// `loss` is the per-frame drop probability; `down_windows` are
/// `(host, from_ms, until_ms)` outages. With no faults this measures
/// the protocol's baseline traffic (retransmits and drops must be 0).
pub fn chaos_experiment(loss: f64, down_windows: &[(&str, u64, u64)], seed: u64) -> ChaosOutcome {
    chaos_experiment_impl(loss, down_windows, seed, false, None).chaos
}

/// A chaos run with journey tracing switched on: the same outcome plus
/// the deterministic trace/metrics exports and per-naplet resource
/// accounting (paper §5.2).
#[derive(Debug, Clone)]
pub struct TracedChaosOutcome {
    /// The reliable-transfer metrics of the run.
    pub chaos: ChaosOutcome,
    /// Trace events + metrics snapshot of the whole space.
    pub obs: ObsSnapshot,
    /// Chrome trace-event JSON (load in chrome://tracing or Perfetto).
    pub chrome_json: String,
    /// Per-(host, naplet) resource totals from the NapletMonitors,
    /// sorted by host for deterministic tables.
    pub usage: Vec<(String, String, ResourceUsage)>,
    /// Stall alerts the journey watchdog raised, in raise order
    /// (empty unless the run was watched).
    pub alerts: Vec<StallAlert>,
    /// End-of-run status report of every live server, sorted by host
    /// (empty unless the run was watched).
    pub status: Vec<StatusReport>,
}

/// [`chaos_experiment`] with the tracer enabled. Kept separate so the
/// criterion loops keep measuring the untraced hot path.
pub fn traced_chaos_experiment(
    loss: f64,
    down_windows: &[(&str, u64, u64)],
    seed: u64,
) -> TracedChaosOutcome {
    chaos_experiment_impl(loss, down_windows, seed, true, None)
}

/// The chaos journey with the ops plane armed: tracing on, journey
/// watchdog checking a `deadline_ms` progress deadline every 50 ms of
/// virtual time, and a whole-space status sweep at quiescence. A
/// down-window that strands the probe mid-handoff must surface as a
/// typed alert (the origin's retransmits deliberately do not count as
/// progress); a clean run must raise none.
pub fn watched_chaos_experiment(
    loss: f64,
    down_windows: &[(&str, u64, u64)],
    deadline_ms: u64,
    seed: u64,
) -> TracedChaosOutcome {
    let config = WatchdogConfig {
        deadline_ms,
        tick_ms: 50,
        ..WatchdogConfig::default()
    };
    chaos_experiment_impl(loss, down_windows, seed, true, Some(config))
}

fn chaos_experiment_impl(
    loss: f64,
    down_windows: &[(&str, u64, u64)],
    seed: u64,
    traced: bool,
    watchdog: Option<WatchdogConfig>,
) -> TracedChaosOutcome {
    // home + s0..s6 = 8 servers; dwell 5 ms keeps the journey well
    // inside the retry horizon (~7.7 s worst case per hop)
    let world = RingWorld::build(
        7,
        LocationMode::HomeManagers,
        LatencyModel::Constant(2),
        5,
        seed,
    );
    let mut rt = world.rt;
    if traced {
        rt.enable_tracing();
    }
    let watched = watchdog.is_some();
    if let Some(config) = watchdog {
        rt.enable_watchdog(config);
    }
    rt.fabric().set_loss(loss);
    for (host, from_ms, until_ms) in down_windows {
        rt.fabric().schedule_down(host, *from_ms, *until_ms);
    }

    // the last hop lands at home so completion and the final report
    // never cross a lossy link — what's under test is the 6 migrations
    let route = ["s0", "s1", "s2", "s3", "s4", "home"];
    let it = Itinerary::new(Pattern::seq_of_hosts(&route, None))
        .unwrap()
        .with_final_action(ActionSpec::ReportHome);
    let naplet = Naplet::create(
        &bench_key(),
        "czxu",
        "home",
        Millis(1),
        PROBE_CODEBASE,
        AgentKind::Native,
        it,
        vec![],
    )
    .unwrap();
    let id = naplet.id().clone();
    let before = rt.fabric().stats().snapshot();
    let t0 = rt.now();
    rt.launch(naplet).unwrap();
    rt.run_to_quiescence(50_000_000);
    let stats = rt.fabric().stats().snapshot().since(&before);

    let reports = rt.drain_reports("home");
    let mut completed = 0usize;
    let mut visits = Vec::new();
    for (rid, report) in &reports {
        if rid != &id {
            continue;
        }
        completed += 1;
        if let Value::List(l) = report.get("visits") {
            for v in &l {
                if let Value::Str(s) = v {
                    visits.push(s.clone());
                }
            }
        }
    }
    let mut counts: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
    for v in &visits {
        *counts.entry(v.as_str()).or_default() += 1;
    }
    let duplicate_visits = counts.values().filter(|&&c| c > 1).count();
    let mut parked = 0usize;
    let mut usage = Vec::new();
    for host in rt.server_hosts() {
        let s = rt.server(&host).unwrap();
        parked += s.parked.len();
        for (nid, u) in s.monitor.usage() {
            usage.push((host.clone(), nid.clone(), *u));
        }
    }
    let obs = rt.obs().snapshot();
    let chrome_json = if traced {
        naplet_obs::chrome_trace_json(&obs.events)
    } else {
        String::new()
    };
    let (alerts, status) = if watched {
        (rt.alerts().to_vec(), rt.status_reports())
    } else {
        (Vec::new(), Vec::new())
    };

    TracedChaosOutcome {
        chaos: ChaosOutcome {
            completed,
            visits,
            duplicate_visits,
            parked,
            retransmits: stats.retransmits,
            dropped: stats.dropped,
            migrations: stats.messages(naplet_net::TrafficClass::Migration),
            migration_bytes: stats.bytes(naplet_net::TrafficClass::Migration),
            control_bytes: stats.bytes(naplet_net::TrafficClass::Control),
            completion_ms: rt.now().since(t0),
        },
        obs,
        chrome_json,
        usage,
        alerts,
        status,
    }
}

/// Outcome of a crash-chaos run: the reliable-transfer metrics plus
/// crash-consistency counters (journal recovery + home-side leases).
#[derive(Debug, Clone)]
pub struct CrashChaosOutcome {
    /// The reliable-transfer metrics of the same run.
    pub chaos: ChaosOutcome,
    /// Crashes injected into the space.
    pub crashes: u64,
    /// Servers restarted (and journal-replayed) after a crash.
    pub recoveries: u64,
    /// Naplets rehydrated from journals during recovery replay.
    pub rehydrated: u64,
    /// Visit effects suppressed because the journal showed them applied.
    pub replays_suppressed: u64,
    /// In-flight handoffs re-driven after an origin-side restart.
    pub handoffs_resumed: u64,
    /// Home-side leases that expired without renewal.
    pub leases_expired: u64,
    /// Orphaned naplets re-dispatched from their creation records.
    pub orphans_redispatched: u64,
    /// Naplets declared `Lost` after lease expiry with no re-dispatch.
    pub lost: u64,
}

/// The chaos journey (6-hop `Seq` probe over home + s0..s6) under
/// frame loss *and* scheduled whole-server crashes.
///
/// `crashes` are `(host, at_ms, restart_after_ms)` — `None` means the
/// host never comes back, so recovering its agents is entirely up to
/// the home-side lease in `lease`. `route` overrides the default
/// 6-hop pattern (e.g. to give the itinerary an `Alt` fallback around
/// a permanently dead host).
pub fn crash_chaos_experiment(
    loss: f64,
    crashes: &[(&str, u64, Option<u64>)],
    lease: Option<naplet_server::LeasePolicy>,
    route: Option<Pattern>,
    seed: u64,
) -> CrashChaosOutcome {
    crash_chaos_impl(loss, crashes, lease, route, seed, false).0
}

/// [`crash_chaos_experiment`] with the tracer enabled; returns the
/// trace/metrics snapshot alongside the outcome.
pub fn traced_crash_chaos_experiment(
    loss: f64,
    crashes: &[(&str, u64, Option<u64>)],
    lease: Option<naplet_server::LeasePolicy>,
    route: Option<Pattern>,
    seed: u64,
) -> (CrashChaosOutcome, ObsSnapshot) {
    crash_chaos_impl(loss, crashes, lease, route, seed, true)
}

fn crash_chaos_impl(
    loss: f64,
    crashes: &[(&str, u64, Option<u64>)],
    lease: Option<naplet_server::LeasePolicy>,
    route: Option<Pattern>,
    seed: u64,
    traced: bool,
) -> (CrashChaosOutcome, ObsSnapshot) {
    let fabric = Fabric::new(LatencyModel::Constant(2), Bandwidth::fast_ethernet(), seed);
    let mut rt = SimRuntime::new(fabric);
    if traced {
        rt.enable_tracing();
    }
    let reg = probe_registry();
    let policy = MonitorPolicy {
        native_dwell_ms: 5,
        ..MonitorPolicy::default()
    };
    for host in std::iter::once("home".to_string()).chain((0..7).map(|i| format!("s{i}"))) {
        let mut cfg = ServerConfig::open(&host, LocationMode::HomeManagers);
        cfg.codebase = reg.clone();
        cfg.monitor_policy = policy.clone();
        cfg.lease = lease.clone();
        rt.add_server(cfg);
    }
    rt.fabric().set_loss(loss);
    for (host, at_ms, restart_after) in crashes {
        rt.schedule_crash(host, *at_ms, *restart_after);
    }

    let pattern = route
        .unwrap_or_else(|| Pattern::seq_of_hosts(&["s0", "s1", "s2", "s3", "s4", "home"], None));
    let it = Itinerary::new(pattern)
        .unwrap()
        .with_final_action(ActionSpec::ReportHome);
    let naplet = Naplet::create(
        &bench_key(),
        "czxu",
        "home",
        Millis(1),
        PROBE_CODEBASE,
        AgentKind::Native,
        it,
        vec![],
    )
    .unwrap();
    let id = naplet.id().clone();
    let before = rt.fabric().stats().snapshot();
    let t0 = rt.now();
    rt.launch(naplet).unwrap();
    rt.run_to_quiescence(50_000_000);
    let stats = rt.fabric().stats().snapshot().since(&before);

    let reports = rt.drain_reports("home");
    let mut completed = 0usize;
    let mut visits = Vec::new();
    for (rid, report) in &reports {
        if rid != &id {
            continue;
        }
        completed += 1;
        if let Value::List(l) = report.get("visits") {
            for v in &l {
                if let Value::Str(s) = v {
                    visits.push(s.clone());
                }
            }
        }
    }
    let mut counts: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
    for v in &visits {
        *counts.entry(v.as_str()).or_default() += 1;
    }
    let duplicate_visits = counts.values().filter(|&&c| c > 1).count();
    let mut parked = 0usize;
    for host in rt.server_hosts() {
        parked += rt.server(&host).unwrap().parked.len();
    }
    let recovery = rt.recovery_totals();

    let outcome = CrashChaosOutcome {
        chaos: ChaosOutcome {
            completed,
            visits,
            duplicate_visits,
            parked,
            retransmits: stats.retransmits,
            dropped: stats.dropped,
            migrations: stats.messages(naplet_net::TrafficClass::Migration),
            migration_bytes: stats.bytes(naplet_net::TrafficClass::Migration),
            control_bytes: stats.bytes(naplet_net::TrafficClass::Control),
            completion_ms: rt.now().since(t0),
        },
        crashes: stats.crashes,
        recoveries: stats.recoveries,
        rehydrated: recovery.rehydrated,
        replays_suppressed: recovery.replays_suppressed,
        handoffs_resumed: recovery.handoffs_resumed,
        leases_expired: recovery.leases_expired,
        orphans_redispatched: recovery.orphans_redispatched,
        lost: recovery.agents_lost,
    };
    (outcome, rt.obs().snapshot())
}

/// Scheduling-policy ablation (E9): journey time of one probe agent
/// per priority tier, on an otherwise busy server, under each policy.
pub fn scheduling_experiment(
    policy: naplet_server::SchedulingPolicy,
    priority: Option<&str>,
    coresidents: usize,
    seed: u64,
) -> u64 {
    let mut reg = CodebaseRegistry::new();
    reg.register(PROBE_CODEBASE, 0, || Probe);
    let fabric = Fabric::new(LatencyModel::Constant(1), Bandwidth(None), seed);
    let mut rt = SimRuntime::new(fabric);
    for host in ["home", "busy"] {
        let mut cfg = ServerConfig::open(host, LocationMode::ForwardingTrace);
        cfg.codebase = reg.clone();
        cfg.monitor_policy = MonitorPolicy {
            native_dwell_ms: 50,
            scheduling: policy,
            ..MonitorPolicy::default()
        };
        rt.add_server(cfg);
    }
    let agent = |prio: Option<&str>, ts: u64| {
        let it = Itinerary::new(Pattern::seq_of_hosts(&["busy"], None))
            .unwrap()
            .with_final_action(ActionSpec::ReportHome);
        let attrs = prio
            .map(|p| vec![("priority".to_string(), p.to_string())])
            .unwrap_or_default();
        Naplet::create(
            &bench_key(),
            "czxu",
            "home",
            Millis(ts),
            PROBE_CODEBASE,
            AgentKind::Native,
            it,
            attrs,
        )
        .unwrap()
    };
    for k in 0..coresidents {
        rt.launch(agent(None, 100 + k as u64)).unwrap();
    }
    rt.run_until(Millis(10));
    let probe = agent(priority, 1);
    let id = probe.id().clone();
    rt.launch(probe).unwrap();
    rt.run_to_quiescence(1_000_000);
    rt.server("home")
        .unwrap()
        .manager
        .table_entry(&id)
        .map(|e| e.updated.0)
        .unwrap_or(0)
}
