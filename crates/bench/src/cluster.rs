//! Multi-process cluster harness: real `napletd` daemons on localhost.
//!
//! Everything else in this crate measures the deterministic
//! [`naplet_server::SimRuntime`]; this module is the opposite end of
//! the fidelity spectrum — it spawns one OS process per node from the
//! compiled `napletd` binary, wires them with a generated bootstrap
//! file, and drives journeys through them over real TCP. The CI
//! `cluster-smoke` job runs the `tests/cluster_smoke.rs` suite on top
//! of it: a ring migration across live daemons, then a `kill -9`
//! mid-journey with journal recovery and a home-side lease
//! re-dispatch.
//!
//! The harness's own home node (`ctl`) runs in-process so tests can
//! inspect reports and lease counters between pumps: it is a plain
//! [`NapletServer`] over a [`TcpTransport`], pumped manually by
//! [`CtlNode::pump`] exactly the way `LiveRuntime`'s server threads
//! pump — same inputs, same output enactment — minus the thread.
//!
//! Daemon stdout/stderr land in per-node log files under the
//! harness's scratch directory (override with
//! `NAPLET_CLUSTER_LOG_DIR` so CI can upload them as artifacts).

use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use naplet_core::clock::Millis;
use naplet_core::credential::SigningKey;
use naplet_core::error::{NapletError, Result};
use naplet_core::itinerary::{Itinerary, Pattern};
use naplet_core::naplet::{AgentKind, Naplet};
use naplet_core::tracectx::CtxTable;
use naplet_core::value::Value;
use naplet_net::tcp::TcpTransport;
use naplet_net::{Frame, TrafficClass, Transport};
use naplet_obs::{ObsSink, TraceKind, DEFAULT_RECORDER_CAPACITY};
use naplet_server::bootstrap::BootstrapConfig;
use naplet_server::daemon::{register_probe, PROBE_CODEBASE};
use naplet_server::events::{Input, LocalEvent, Output, Wire};
use naplet_server::status::StatusReport;
use naplet_server::{LeasePolicy, LocationMode, NapletServer, RetryPolicy, ServerConfig};

/// The harness's in-process home node name, present in every generated
/// bootstrap file so daemons know the route back.
pub const CTL: &str = "ctl";

/// A spare station entry in every generated bootstrap file that no
/// daemon occupies — [`naplet_man::ClusterStatusPoller`] (or `figures
/// cluster-status <config> mon`) binds it to poll the live cluster.
pub const MON: &str = "mon";

/// Locate the compiled `napletd` binary: `NAPLET_BIN`/`NAPLETD_BIN`
/// override, else next to the test executable's `target/<profile>/`
/// directory (tests live one level down in `deps/`).
pub fn napletd_bin() -> Result<PathBuf> {
    for var in ["NAPLETD_BIN", "NAPLET_BIN"] {
        if let Ok(path) = std::env::var(var) {
            return Ok(PathBuf::from(path));
        }
    }
    let mut dir =
        std::env::current_exe().map_err(|e| NapletError::Internal(format!("current_exe: {e}")))?;
    dir.pop(); // the test binary itself
    if dir.ends_with("deps") {
        dir.pop();
    }
    let bin = dir.join("napletd");
    if bin.exists() {
        Ok(bin)
    } else {
        Err(NapletError::NotFound(format!(
            "napletd binary not found at {} — `cargo build -p napletd` first \
             or set NAPLETD_BIN",
            bin.display()
        )))
    }
}

/// A cluster of real daemon processes plus the bootstrap file they
/// share. Dropping the harness kills every remaining daemon.
pub struct ClusterHarness {
    config: BootstrapConfig,
    config_path: PathBuf,
    root: PathBuf,
    log_dir: PathBuf,
    daemons: BTreeMap<String, Child>,
}

impl ClusterHarness {
    /// Boot `nodes` as daemon processes. `cluster_section` is appended
    /// verbatim under `[cluster]` (e.g. `"lease_ms = 1500\n"`); every
    /// node gets a journal directory under the harness scratch dir,
    /// and a `ctl` node entry is added for the in-process home. Blocks
    /// until every daemon's listen port accepts.
    pub fn launch(tag: &str, nodes: &[&str], cluster_section: &str) -> Result<ClusterHarness> {
        ClusterHarness::launch_with(tag, nodes, cluster_section, "")
    }

    /// [`ClusterHarness::launch`] plus `extra_toml` appended verbatim
    /// after the node entries — how chaos tests add a `[directory]`
    /// replica-set section to the generated bootstrap file.
    pub fn launch_with(
        tag: &str,
        nodes: &[&str],
        cluster_section: &str,
        extra_toml: &str,
    ) -> Result<ClusterHarness> {
        let bin = napletd_bin()?;
        let root =
            std::env::temp_dir().join(format!("naplet-cluster-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root)
            .map_err(|e| NapletError::Internal(format!("mkdir {}: {e}", root.display())))?;
        // one subdirectory per harness tag: several tests sharing the
        // override must not append into each other's daemon logs
        let log_dir = std::env::var("NAPLET_CLUSTER_LOG_DIR")
            .map(|d| PathBuf::from(d).join(tag))
            .unwrap_or_else(|_| root.join("logs"));
        std::fs::create_dir_all(&log_dir)
            .map_err(|e| NapletError::Internal(format!("mkdir {}: {e}", log_dir.display())))?;

        // reserve one free port per node (plus ctl) by binding :0,
        // then releasing just before the daemons bind for real
        let mut addrs: BTreeMap<String, SocketAddr> = BTreeMap::new();
        {
            let mut keep = Vec::new();
            for name in nodes.iter().copied().chain([CTL, MON]) {
                let l = TcpListener::bind("127.0.0.1:0")
                    .map_err(|e| NapletError::Internal(format!("reserve port: {e}")))?;
                addrs.insert(name.to_string(), l.local_addr().unwrap());
                keep.push(l);
            }
        }

        let mut toml = format!("[cluster]\n{cluster_section}");
        for name in nodes.iter().copied().chain([CTL, MON]) {
            let journal = root.join("journal").join(name);
            toml.push_str(&format!(
                "\n[[node]]\nname = \"{name}\"\nlisten = \"{}\"\njournal = \"{}\"\n",
                addrs[name],
                journal.display()
            ));
        }
        if !extra_toml.is_empty() {
            toml.push('\n');
            toml.push_str(extra_toml);
        }
        let config_path = root.join("cluster.toml");
        std::fs::write(&config_path, &toml)
            .map_err(|e| NapletError::Internal(format!("write config: {e}")))?;
        let config = BootstrapConfig::parse(&toml)?;

        let mut harness = ClusterHarness {
            config,
            config_path,
            root,
            log_dir,
            daemons: BTreeMap::new(),
        };
        for name in nodes {
            // a fresh cluster starts from empty logs even when a prior
            // run left files under an overridden log dir; restarts
            // within this cluster's lifetime append
            let _ = std::fs::remove_file(harness.log_path(name));
            harness.spawn(name, &bin)?;
        }
        for name in nodes {
            harness.await_listening(name, Duration::from_secs(10))?;
        }
        Ok(harness)
    }

    /// The parsed bootstrap config the daemons were started with.
    pub fn config(&self) -> &BootstrapConfig {
        &self.config
    }

    /// The harness scratch directory (config file, journals, default
    /// log location). Left on disk for post-mortems; the OS temp
    /// cleaner reaps it.
    pub fn root(&self) -> &std::path::Path {
        &self.root
    }

    /// Where a node's stdout/stderr is being captured.
    pub fn log_path(&self, node: &str) -> PathBuf {
        self.log_dir.join(format!("{node}.log"))
    }

    /// Everything a node has printed so far (across restarts — the
    /// log file is appended, never truncated).
    pub fn log(&self, node: &str) -> String {
        std::fs::read_to_string(self.log_path(node)).unwrap_or_default()
    }

    fn spawn(&mut self, node: &str, bin: &PathBuf) -> Result<()> {
        let log = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.log_path(node))
            .map_err(|e| NapletError::Internal(format!("open log: {e}")))?;
        let err = log
            .try_clone()
            .map_err(|e| NapletError::Internal(format!("clone log: {e}")))?;
        let child = Command::new(bin)
            .arg("--config")
            .arg(&self.config_path)
            .arg("--node")
            .arg(node)
            .stdin(Stdio::null())
            .stdout(Stdio::from(log))
            .stderr(Stdio::from(err))
            .spawn()
            .map_err(|e| NapletError::Internal(format!("spawn napletd[{node}]: {e}")))?;
        self.daemons.insert(node.to_string(), child);
        Ok(())
    }

    fn await_listening(&self, node: &str, timeout: Duration) -> Result<()> {
        let addr = self
            .config
            .node(node)
            .ok_or_else(|| NapletError::NotFound(format!("no node `{node}`")))?
            .listen;
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_ok() {
                return Ok(());
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        Err(NapletError::Timeout(format!(
            "napletd[{node}] never listened on {addr}; log:\n{}",
            self.log(node)
        )))
    }

    /// SIGUSR1 a daemon: ask its watcher thread to write a flight-
    /// recorder dump without disturbing service.
    pub fn sigusr1(&self, node: &str) -> Result<()> {
        let child = self
            .daemons
            .get(node)
            .ok_or_else(|| NapletError::NotFound(format!("no daemon `{node}` running")))?;
        let status = Command::new("kill")
            .arg("-USR1")
            .arg(child.id().to_string())
            .status()
            .map_err(|e| NapletError::Internal(format!("kill -USR1 {node}: {e}")))?;
        if status.success() {
            Ok(())
        } else {
            Err(NapletError::Internal(format!(
                "kill -USR1 {node} exited {status}"
            )))
        }
    }

    /// SIGKILL a daemon — the crash the journal exists for. The node's
    /// journal directory survives for the next incarnation.
    pub fn kill9(&mut self, node: &str) -> Result<()> {
        let child = self
            .daemons
            .get_mut(node)
            .ok_or_else(|| NapletError::NotFound(format!("no daemon `{node}` running")))?;
        child
            .kill()
            .map_err(|e| NapletError::Internal(format!("kill -9 {node}: {e}")))?;
        let _ = child.wait();
        self.daemons.remove(node);
        Ok(())
    }

    /// Start a fresh incarnation of a (killed) node: same config, same
    /// listen address, same journal directory — boot-time replay does
    /// the rest.
    pub fn restart(&mut self, node: &str) -> Result<()> {
        if self.daemons.contains_key(node) {
            return Err(NapletError::Internal(format!(
                "daemon `{node}` is still running"
            )));
        }
        let bin = napletd_bin()?;
        self.spawn(node, &bin)?;
        self.await_listening(node, Duration::from_secs(10))
    }

    /// SIGTERM every daemon and wait for clean exits. Returns each
    /// node's exit status for assertion.
    pub fn shutdown(mut self) -> Vec<(String, bool)> {
        let mut results = Vec::new();
        let names: Vec<String> = self.daemons.keys().cloned().collect();
        for node in &names {
            if let Some(child) = self.daemons.get(node) {
                let _ = Command::new("kill")
                    .arg("-TERM")
                    .arg(child.id().to_string())
                    .status();
            }
        }
        for node in names {
            let mut child = self.daemons.remove(&node).expect("listed above");
            let deadline = Instant::now() + Duration::from_secs(5);
            let clean = loop {
                match child.try_wait() {
                    Ok(Some(status)) => break status.success(),
                    Ok(None) if Instant::now() < deadline => {
                        std::thread::sleep(Duration::from_millis(20))
                    }
                    _ => {
                        let _ = child.kill();
                        let _ = child.wait();
                        break false;
                    }
                }
            };
            results.push((node, clean));
        }
        results
    }

    /// Build the in-process home node over its own TCP transport.
    pub fn ctl(&self) -> Result<CtlNode> {
        CtlNode::start(&self.config)
    }
}

impl Drop for ClusterHarness {
    fn drop(&mut self) {
        for (_, child) in self.daemons.iter_mut() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// The harness's in-process home server, pumped on the test thread so
/// reports, lease counters and the status table stay inspectable
/// while the cluster runs.
pub struct CtlNode {
    server: NapletServer,
    rx: crossbeam::channel::Receiver<Frame>,
    net: TcpTransport,
    timers: Vec<(Instant, LocalEvent)>,
    epoch: Instant,
    scratch: Vec<u8>,
    key: SigningKey,
    launched: u64,
    /// Creation timestamp handed to the previous launch: two probes
    /// launched within one wall-clock millisecond must still get
    /// distinct naplet ids (id = owner+home+creation time).
    last_launch_ts: u64,
    /// Flight recorder + trace contexts: the ctl node stamps its sends
    /// like any daemon, so a merged cluster trace can pair the launch
    /// handshake with its admission on the first daemon.
    obs: ObsSink,
    ctxs: CtxTable,
}

impl CtlNode {
    fn start(config: &BootstrapConfig) -> Result<CtlNode> {
        let net = TcpTransport::start(config.tcp_config(CTL)?)?;
        let rx = net.register(CTL);
        // mirror the daemons' location mode: with a `[directory]`
        // section the home routes registrations (and lease probes) at
        // the replica set instead of acting as its own manager
        let mode = match &config.directory {
            Some(dir) => LocationMode::ReplicatedDirectory(dir.replicas.clone()),
            None => LocationMode::HomeManagers,
        };
        let mut cfg = ServerConfig::open(CTL, mode);
        if let Some(dir) = &config.directory {
            cfg.repl = Some(dir.repl_config());
        }
        register_probe(&mut cfg.codebase);
        if let Some(duration_ms) = config.lease_ms {
            cfg.lease = Some(LeasePolicy {
                duration_ms,
                ..LeasePolicy::default()
            });
        }
        // fail over fast: cluster tests deliberately kill nodes, and
        // the CI budget prefers quick give-ups over long tails
        cfg.retry = RetryPolicy {
            base_timeout_ms: 100,
            max_timeout_ms: 800,
            max_retries: 5,
        };
        let epoch = Instant::now();
        let obs = ObsSink::default();
        obs.enable_recorder(DEFAULT_RECORDER_CAPACITY);
        let unix_now = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        obs.recorder.set_epoch_unix_ms(unix_now);
        let mut server = NapletServer::new(cfg);
        server.set_obs(obs.clone());
        Ok(CtlNode {
            server,
            rx,
            net,
            timers: Vec::new(),
            epoch,
            scratch: Vec::new(),
            key: SigningKey::new("ops", b"cluster-harness"),
            launched: 0,
            last_launch_ts: 0,
            obs,
            ctxs: CtxTable::new(),
        })
    }

    /// Wall-clock server time, ms since the ctl node booted.
    pub fn now(&self) -> Millis {
        Millis(self.epoch.elapsed().as_millis() as u64)
    }

    /// Launch one probe around `hosts` (in order) and home again.
    pub fn launch_probe(&mut self, hosts: &[&str]) -> Result<()> {
        self.launched += 1;
        let ts = self.now().0.max(self.last_launch_ts + 1);
        self.last_launch_ts = ts;
        let it = Itinerary::new(Pattern::seq_of_hosts(hosts, None))?;
        let naplet = Naplet::create(
            &self.key,
            "ops",
            CTL,
            Millis(ts),
            PROBE_CODEBASE,
            AgentKind::Native,
            it,
            vec![],
        )?;
        let now = self.now();
        let outputs = self.server.launch(naplet, now);
        self.enact(outputs);
        Ok(())
    }

    /// One pump round: drain arrived frames, fire due timers, enact
    /// everything — the manual-transmission version of
    /// `LiveRuntime`'s server thread loop.
    pub fn pump(&mut self) {
        while let Ok(frame) = self.rx.try_recv() {
            if let Ok(wire) = naplet_core::codec::from_bytes::<Wire>(&frame.payload) {
                let now = self.now();
                let from = frame.from.clone();
                if self.obs.ctx_enabled() {
                    if let Some(ctx) = &frame.ctx {
                        self.ctxs.adopt(ctx);
                    }
                    self.obs
                        .emit_ctx(now, CTL, wire.subject(), frame.ctx.as_ref(), || {
                            TraceKind::WireRecv {
                                from: from.clone(),
                                label: wire.label().to_string(),
                            }
                        });
                }
                let outputs = self.server.handle(now, Input::Wire { from, wire });
                self.enact(outputs);
            }
        }
        let now_i = Instant::now();
        let (ready, pending): (Vec<_>, Vec<_>) =
            self.timers.drain(..).partition(|(t, _)| *t <= now_i);
        self.timers = pending;
        for (_, event) in ready {
            let now = self.now();
            let outputs = self.server.handle(now, Input::Local(event));
            self.enact(outputs);
        }
    }

    /// Pump until `pred(self)` holds or `timeout` passes; returns
    /// whether the predicate was met.
    pub fn pump_until(
        &mut self,
        timeout: Duration,
        mut pred: impl FnMut(&CtlNode) -> bool,
    ) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            self.pump();
            if pred(self) {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Whether the home manager's table currently shows any launched
    /// naplet `Running` at `host` — i.e. its arrival registration came
    /// back, which the destination only sends after journaling the
    /// admission. The precise "agent is resident there" gate chaos
    /// tests kill on.
    pub fn running_at(&self, host: &str) -> bool {
        self.server
            .manager
            .launched()
            .iter()
            .any(|e| e.last_known == host && e.status == naplet_server::NapletStatus::Running)
    }

    /// Values probes have reported home so far.
    pub fn reports(&self) -> Vec<Value> {
        self.server.reports.iter().map(|(_, v)| v.clone()).collect()
    }

    /// The home server's status report (lease counters, journal lag).
    pub fn status(&self) -> StatusReport {
        self.server.status_report(self.now())
    }

    /// The underlying server, for assertions beyond the status report.
    pub fn server(&self) -> &NapletServer {
        &self.server
    }

    /// Wire statistics of the ctl transport (drops during outages,
    /// retransmissions).
    pub fn net_stats(&self) -> naplet_net::StatsSnapshot {
        self.net.stats().snapshot()
    }

    /// The ctl node's own flight-recorder segment, for merging with the
    /// segments fetched (or dumped) from the daemons.
    pub fn trace_segment(&self) -> naplet_obs::TraceSegment {
        self.obs.recorder.dump(CTL)
    }

    fn enact(&mut self, outputs: Vec<Output>) {
        for output in outputs {
            match output {
                Output::Send { to, wire } => {
                    let attempt = wire.retry_attempt();
                    if attempt > 1 {
                        self.net.stats().record_retransmit();
                    }
                    if naplet_core::codec::to_bytes_into(&wire, &mut self.scratch).is_ok() {
                        let mut frame =
                            Frame::new(CTL, &to, wire.traffic_class(), self.scratch.clone());
                        if self.obs.ctx_enabled() {
                            let ctx = wire.subject().map(|id| {
                                let new_hop =
                                    matches!(&wire, Wire::Transfer(env) if env.attempt == 1);
                                self.ctxs.on_send(&id.to_string(), CTL, new_hop)
                            });
                            frame = frame.with_ctx(ctx.clone());
                            let bytes = frame.wire_len();
                            let now = self.now();
                            self.obs
                                .emit_ctx(now, CTL, wire.subject(), ctx.as_ref(), || {
                                    TraceKind::WireSend {
                                        to: to.clone(),
                                        label: wire.label().to_string(),
                                        class: wire.traffic_class().label().to_string(),
                                        bytes,
                                        attempt,
                                    }
                                });
                        }
                        let _ = self.net.send(frame);
                    }
                }
                Output::Schedule { delay_ms, event } => {
                    self.timers
                        .push((Instant::now() + Duration::from_millis(delay_ms), event));
                }
                Output::FetchCode { from, bytes, id } => {
                    let delay = self
                        .net
                        .fetch(&from, CTL, TrafficClass::Code, bytes)
                        .ok()
                        .flatten()
                        .unwrap_or(0);
                    self.timers.push((
                        Instant::now() + Duration::from_millis(delay),
                        LocalEvent::CodeReady { id },
                    ));
                }
            }
        }
    }
}
