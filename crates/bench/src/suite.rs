//! Macro-benchmark suite: throughput workloads with a machine-readable
//! report (`BENCH_PR4.json`).
//!
//! Three workloads run at scale on the deterministic [`SimRuntime`]
//! (events/sec) and one on the threaded `LiveRuntime` (wall-clock
//! journeys/sec):
//!
//! * **ring_storm** — N naplets walk a ring of M hosts concurrently;
//!   the handoff/journal hot path under migration pressure.
//! * **par_fanout** — Par fan-out/join itineraries swept over widths;
//!   the clone/fork path plus many simultaneous small journeys.
//! * **messenger_storm** — agents on the move while owners post
//!   messages that chase them through forwarding pointers.
//!
//! Every sim workload runs twice in the same process — once on the
//! optimized hot paths and once on the pre-optimization **baseline
//! profile** ([`SimRuntime::with_baseline_profile`]: binary-heap event
//! queue, full-encode wire sizing, deep-clone handoffs) — and the
//! report records both rates plus their ratio. The two runs must agree
//! on every deterministic output (events, virtual time, bytes,
//! latencies); the suite panics if they ever diverge, which is the
//! built-in proof that the optimizations changed cost, not behaviour.
//!
//! The report schema (field names, order, and which fields count as
//! timing) is documented in DESIGN.md under "Benchmark report schema".

use std::fmt::Write as _;
use std::time::Instant;

use naplet_core::clock::Millis;
use naplet_core::itinerary::{ActionSpec, Itinerary, Pattern};
use naplet_core::message::Payload;
use naplet_core::naplet::{AgentKind, Naplet};
use naplet_core::value::Value;
use naplet_net::{Bandwidth, Fabric, LatencyModel, TrafficClass};
use naplet_server::{LiveRuntime, LocationMode, MonitorPolicy, ServerConfig, SimRuntime};

use crate::scenarios::{bench_key, probe_registry, PROBE_CODEBASE};

#[cfg(feature = "bench-alloc")]
mod alloc_counter {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);

    /// Counting global allocator; the `bench` binary installs it when
    /// built with `--features bench-alloc`.
    pub struct CountingAlloc;

    // SAFETY: delegates every operation to `System`, only adding a
    // relaxed counter bump on the allocation paths.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.alloc(layout) }
        }
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }
        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.realloc(ptr, layout, new_size) }
        }
    }

    /// Allocations counted so far in this process.
    pub fn alloc_count() -> u64 {
        ALLOCS.load(Ordering::Relaxed)
    }
}

#[cfg(feature = "bench-alloc")]
pub use alloc_counter::{alloc_count, CountingAlloc};

/// Allocations counted so far (always 0 without the `bench-alloc`
/// feature — the counting allocator is not installed).
#[cfg(not(feature = "bench-alloc"))]
pub fn alloc_count() -> u64 {
    0
}

/// How much work each workload does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Tiny sizes, one iteration: for tests (seconds even in debug).
    Smoke,
    /// CI-sized: stable wall timings in well under a minute (release).
    Quick,
    /// Nightly-sized: larger spaces, more iterations.
    Full,
}

impl Profile {
    /// Parse a CLI profile name.
    pub fn parse(s: &str) -> Option<Profile> {
        match s {
            "smoke" => Some(Profile::Smoke),
            "quick" => Some(Profile::Quick),
            "full" => Some(Profile::Full),
            _ => None,
        }
    }

    fn label(self) -> &'static str {
        match self {
            Profile::Smoke => "smoke",
            Profile::Quick => "quick",
            Profile::Full => "full",
        }
    }
}

/// Suite configuration.
#[derive(Debug, Clone, Copy)]
pub struct SuiteConfig {
    /// Workload sizes.
    pub profile: Profile,
    /// Fabric seed (drives every virtual-time outcome).
    pub seed: u64,
    /// Run the threaded `LiveRuntime` workload too (skipped by the
    /// determinism test: live numbers are wall-clock).
    pub include_live: bool,
}

impl Default for SuiteConfig {
    fn default() -> SuiteConfig {
        SuiteConfig {
            profile: Profile::Quick,
            seed: 7,
            include_live: true,
        }
    }
}

/// One workload's measurements. Field order here is the JSON field
/// order; DESIGN.md documents which fields are *timing* (normalized
/// away by the determinism test) and which are deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadResult {
    /// Workload name (`ring_storm`, `par_fanout`, `messenger_storm`,
    /// `live_ring`).
    pub name: &'static str,
    /// `sim` or `live`.
    pub runtime: &'static str,
    /// Root naplets launched.
    pub naplets: u64,
    /// Worker hosts (excluding home).
    pub hosts: u64,
    /// Journeys completed (clones included), summed over iterations.
    pub journeys: u64,
    /// Events processed (sim only), summed over iterations.
    pub events: u64,
    /// Migration-class frames on the wire, summed over iterations.
    pub migrations: u64,
    /// Migration-class bytes, summed over iterations.
    pub migration_bytes: u64,
    /// `migration_bytes / migrations` — cost of moving one agent hop.
    pub bytes_per_hop: u64,
    /// Message forwarding hops performed (messenger storm).
    pub forwards: u64,
    /// Virtual ms at quiescence (one iteration).
    pub virtual_ms: u64,
    /// Journey-latency quantiles (virtual ms for sim, wall ms for
    /// live), exact nearest-rank over per-journey completion times.
    pub journey_ms_p50: u64,
    /// 95th percentile journey latency.
    pub journey_ms_p95: u64,
    /// 99th percentile journey latency.
    pub journey_ms_p99: u64,
    /// Handoff round-trip quantiles from the `handoff_rtt_ms`
    /// histogram (bucket upper bounds).
    pub handoff_rtt_ms_p50: u64,
    /// 95th percentile handoff RTT.
    pub handoff_rtt_ms_p95: u64,
    /// 99th percentile handoff RTT.
    pub handoff_rtt_ms_p99: u64,
    /// Wall time of the baseline-profile run (timing; 0 when no
    /// baseline run exists for this workload).
    pub baseline_wall_ms: f64,
    /// Wall time of the optimized run (timing).
    pub wall_ms: f64,
    /// Events/sec of the baseline-profile run (timing).
    pub baseline_events_per_sec: f64,
    /// Events/sec of the optimized run (timing).
    pub events_per_sec: f64,
    /// `events_per_sec / baseline_events_per_sec` (timing, but
    /// hardware-normalized: both runs share one process and machine).
    pub speedup: f64,
    /// Completed journeys per wall-clock second (live workload).
    pub journeys_per_sec: f64,
    /// Allocations per event on the optimized run (0 without the
    /// `bench-alloc` feature).
    pub allocs_per_event: f64,
}

/// The whole suite's report.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteReport {
    /// Profile label (`smoke`/`quick`/`full`).
    pub profile: String,
    /// Fabric seed.
    pub seed: u64,
    /// Per-workload results, in run order.
    pub workloads: Vec<WorkloadResult>,
}

/// JSON fields whose values are wall-clock (or allocator) dependent;
/// everything else in the report is deterministic for a given seed.
pub const TIMING_FIELDS: &[&str] = &[
    "baseline_wall_ms",
    "wall_ms",
    "baseline_events_per_sec",
    "events_per_sec",
    "speedup",
    "journeys_per_sec",
    "allocs_per_event",
];

struct Sizes {
    ring_hosts: usize,
    ring_naplets: usize,
    ring_laps: usize,
    ring_iters: usize,
    par_widths: &'static [usize],
    par_roots: usize,
    par_iters: usize,
    msg_hosts: usize,
    msg_agents: usize,
    msg_posts: usize,
    msg_iters: usize,
    live_hosts: usize,
    live_naplets: usize,
}

fn sizes(profile: Profile) -> Sizes {
    match profile {
        Profile::Smoke => Sizes {
            ring_hosts: 4,
            ring_naplets: 4,
            ring_laps: 1,
            ring_iters: 1,
            par_widths: &[3],
            par_roots: 2,
            par_iters: 1,
            msg_hosts: 4,
            msg_agents: 2,
            msg_posts: 2,
            msg_iters: 1,
            live_hosts: 2,
            live_naplets: 2,
        },
        Profile::Quick => Sizes {
            ring_hosts: 8,
            ring_naplets: 16,
            ring_laps: 2,
            ring_iters: 8,
            par_widths: &[4, 8],
            par_roots: 4,
            par_iters: 6,
            msg_hosts: 6,
            msg_agents: 6,
            msg_posts: 6,
            msg_iters: 6,
            live_hosts: 3,
            live_naplets: 8,
        },
        Profile::Full => Sizes {
            ring_hosts: 16,
            ring_naplets: 64,
            ring_laps: 3,
            ring_iters: 16,
            par_widths: &[4, 8, 16, 32],
            par_roots: 8,
            par_iters: 12,
            msg_hosts: 8,
            msg_agents: 16,
            msg_posts: 10,
            msg_iters: 10,
            live_hosts: 4,
            live_naplets: 16,
        },
    }
}

/// Bytes of inert state ballast each storm agent carries, so agent
/// images have a realistic payload. Kept modest: the optimizations
/// remove fixed per-hop costs (clones, allocations, heap churn), so
/// per-byte codec work — shared by both profiles — dilutes the
/// measured speedup as state grows.
const BALLAST_BYTES: usize = 256;

fn storm_world(
    n_hosts: usize,
    mode: LocationMode,
    dwell_ms: u64,
    seed: u64,
    baseline: bool,
) -> SimRuntime {
    let fabric = Fabric::new(LatencyModel::Constant(1), Bandwidth::fast_ethernet(), seed);
    let mut rt = if baseline {
        SimRuntime::with_baseline_profile(fabric)
    } else {
        SimRuntime::new(fabric)
    };
    let reg = probe_registry();
    let policy = MonitorPolicy {
        native_dwell_ms: dwell_ms,
        ..MonitorPolicy::default()
    };
    for host in std::iter::once("home".to_string()).chain((0..n_hosts).map(|i| format!("s{i}"))) {
        let mut cfg = ServerConfig::open(&host, mode.clone());
        cfg.codebase = reg.clone();
        cfg.monitor_policy = policy.clone();
        rt.add_server(cfg);
    }
    rt
}

fn storm_agent(pattern: Pattern, ts: u64) -> Naplet {
    let it = Itinerary::new(pattern)
        .unwrap()
        .with_final_action(ActionSpec::ReportHome);
    let mut nap = Naplet::create(
        &bench_key(),
        "czxu",
        "home",
        Millis(ts),
        PROBE_CODEBASE,
        AgentKind::Native,
        it,
        vec![],
    )
    .unwrap();
    nap.state
        .set("ballast", Value::Bytes(vec![0x42; BALLAST_BYTES]));
    nap
}

/// One sim run's deterministic outputs plus its wall time.
#[derive(Debug, Clone, PartialEq)]
struct SimMeasure {
    events: u64,
    virtual_ms: u64,
    journeys: u64,
    migrations: u64,
    migration_bytes: u64,
    forwards: u64,
    journey_ms: Vec<u64>,
    rtt_p50: u64,
    rtt_p95: u64,
    rtt_p99: u64,
    wall_ms: f64,
    min_iter_ms: f64,
    allocs: u64,
}

impl SimMeasure {
    /// The fields that must match between the optimized and baseline
    /// runs (everything except wall time and allocation count).
    fn deterministic_view(&self) -> SimMeasure {
        SimMeasure {
            wall_ms: 0.0,
            min_iter_ms: 0.0,
            allocs: 0,
            ..self.clone()
        }
    }
}

fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank.min(sorted.len()) - 1]
}

/// Run `iters` A/B pairs of the same storm, interleaved.
///
/// Timing on a shared machine drifts over seconds, so back-to-back
/// blocks ("all optimized, then all baseline") can attribute that
/// drift to the profile. Instead each iteration runs both profiles
/// adjacently (order alternating), after one untimed warm-up pair,
/// and each side's rate comes from its *minimum* iteration time —
/// the standard robust estimator when noise only ever adds time.
/// Returns `(optimized, baseline)`.
fn ab_measure<F>(iters: usize, mut one_run: F) -> (SimMeasure, SimMeasure)
where
    F: FnMut(bool) -> SimMeasure,
{
    // warm-up pair: first-touch page faults and allocator growth land
    // here, not on either profile's timings
    let warm_opt = one_run(false);
    let warm_base = one_run(true);
    let mut opt = warm_opt;
    let mut base = warm_base;
    let mut opt_wall = 0.0f64;
    let mut base_wall = 0.0f64;
    let mut opt_min = f64::INFINITY;
    let mut base_min = f64::INFINITY;
    let mut opt_allocs = 0u64;
    for i in 0..iters {
        let order = if i % 2 == 0 {
            [false, true]
        } else {
            [true, false]
        };
        for &baseline in &order {
            let a0 = alloc_count();
            let t0 = Instant::now();
            let m = one_run(baseline);
            let dt = t0.elapsed().as_secs_f64() * 1e3;
            let da = alloc_count() - a0;
            let first = if baseline { &base } else { &opt };
            assert_eq!(
                m.deterministic_view(),
                first.deterministic_view(),
                "seeded sim iterations must be identical"
            );
            if baseline {
                base_wall += dt;
                base_min = base_min.min(dt);
            } else {
                opt_wall += dt;
                opt_min = opt_min.min(dt);
                opt_allocs += da;
            }
        }
    }
    opt.wall_ms = opt_wall;
    opt.min_iter_ms = opt_min;
    opt.allocs = opt_allocs;
    base.wall_ms = base_wall;
    base.min_iter_ms = base_min;
    (opt, base)
}

fn finish_sim_run(
    mut rt: SimRuntime,
    launched: &[naplet_core::id::NapletId],
    events_before: u64,
) -> SimMeasure {
    rt.run_to_quiescence(50_000_000);
    let stats = rt.fabric().stats().snapshot();
    let metrics = rt.obs().metrics.snapshot();
    let mut journey_ms: Vec<u64> = launched
        .iter()
        .filter_map(|id| {
            rt.server("home")
                .and_then(|s| s.manager.table_entry(id))
                .map(|e| e.updated.0)
        })
        .collect();
    journey_ms.sort_unstable();
    let rtt = metrics.histogram("handoff_rtt_ms");
    let mut forwards = 0;
    for host in rt.server_hosts() {
        forwards += rt.server(&host).unwrap().messenger.forwards_performed;
    }
    SimMeasure {
        events: rt.events_processed - events_before,
        virtual_ms: rt.now().0,
        journeys: metrics.counter("journeys.completed"),
        migrations: stats.messages(TrafficClass::Migration),
        migration_bytes: stats.bytes(TrafficClass::Migration),
        forwards,
        rtt_p50: rtt.map(|h| h.quantile(0.50)).unwrap_or(0),
        rtt_p95: rtt.map(|h| h.quantile(0.95)).unwrap_or(0),
        rtt_p99: rtt.map(|h| h.quantile(0.99)).unwrap_or(0),
        journey_ms,
        wall_ms: 0.0,
        min_iter_ms: 0.0,
        allocs: 0,
    }
}

fn assemble(
    name: &'static str,
    naplets: u64,
    hosts: u64,
    iters: u64,
    optimized: SimMeasure,
    baseline: SimMeasure,
) -> WorkloadResult {
    assert_eq!(
        optimized.deterministic_view(),
        baseline.deterministic_view(),
        "{name}: baseline and optimized profiles must produce identical \
         deterministic outputs — an optimization changed behaviour"
    );
    // rates from the fastest iteration: on a shared machine noise only
    // ever adds time, so min-over-iterations is the robust estimator
    let rate = |m: &SimMeasure| {
        if m.min_iter_ms > 0.0 && m.min_iter_ms.is_finite() {
            m.events as f64 / (m.min_iter_ms / 1e3)
        } else {
            0.0
        }
    };
    let events_per_sec = rate(&optimized);
    let baseline_events_per_sec = rate(&baseline);
    WorkloadResult {
        name,
        runtime: "sim",
        naplets,
        hosts,
        journeys: optimized.journeys * iters,
        events: optimized.events * iters,
        migrations: optimized.migrations * iters,
        migration_bytes: optimized.migration_bytes * iters,
        bytes_per_hop: optimized
            .migration_bytes
            .checked_div(optimized.migrations)
            .unwrap_or(0),
        forwards: optimized.forwards,
        virtual_ms: optimized.virtual_ms,
        journey_ms_p50: exact_quantile(&optimized.journey_ms, 0.50),
        journey_ms_p95: exact_quantile(&optimized.journey_ms, 0.95),
        journey_ms_p99: exact_quantile(&optimized.journey_ms, 0.99),
        handoff_rtt_ms_p50: optimized.rtt_p50,
        handoff_rtt_ms_p95: optimized.rtt_p95,
        handoff_rtt_ms_p99: optimized.rtt_p99,
        baseline_wall_ms: baseline.wall_ms,
        wall_ms: optimized.wall_ms,
        baseline_events_per_sec,
        events_per_sec,
        speedup: if baseline_events_per_sec > 0.0 {
            events_per_sec / baseline_events_per_sec
        } else {
            0.0
        },
        journeys_per_sec: 0.0,
        allocs_per_event: if optimized.events > 0 && iters > 0 {
            optimized.allocs as f64 / (optimized.events * iters) as f64
        } else {
            0.0
        },
    }
}

fn ring_storm(s: &Sizes, seed: u64) -> (SimMeasure, SimMeasure) {
    ab_measure(s.ring_iters, |baseline| {
        let mut rt = storm_world(s.ring_hosts, LocationMode::HomeManagers, 2, seed, baseline);
        let hosts: Vec<String> = (0..s.ring_hosts).map(|i| format!("s{i}")).collect();
        let mut launched = Vec::with_capacity(s.ring_naplets);
        for k in 0..s.ring_naplets {
            // every agent starts at a different ring offset so the
            // storm spreads over all hosts instead of convoying
            let mut route: Vec<&str> = Vec::new();
            for _ in 0..s.ring_laps {
                for i in 0..hosts.len() {
                    route.push(hosts[(k + i) % hosts.len()].as_str());
                }
            }
            let nap = storm_agent(Pattern::seq_of_hosts(&route, None), 1 + k as u64);
            launched.push(nap.id().clone());
            rt.launch(nap).unwrap();
        }
        finish_sim_run(rt, &launched, 0)
    })
}

fn par_fanout(s: &Sizes, seed: u64) -> (SimMeasure, SimMeasure) {
    ab_measure(s.par_iters, |baseline| {
        let max_width = s.par_widths.iter().copied().max().unwrap_or(1);
        let mut rt = storm_world(
            max_width,
            LocationMode::CentralDirectory("home".into()),
            2,
            seed ^ 0x9e37,
            baseline,
        );
        let hosts: Vec<String> = (0..max_width).map(|i| format!("s{i}")).collect();
        let mut launched = Vec::new();
        for (w_idx, &width) in s.par_widths.iter().enumerate() {
            for r in 0..s.par_roots {
                let refs: Vec<&str> = (0..width)
                    .map(|i| hosts[(i + r) % hosts.len()].as_str())
                    .collect();
                let pattern = Pattern::par_singletons(&refs, Some(ActionSpec::ReportHome));
                let nap = storm_agent(pattern, 1 + (w_idx * s.par_roots + r) as u64);
                launched.push(nap.id().clone());
                rt.launch(nap).unwrap();
            }
        }
        finish_sim_run(rt, &launched, 0)
    })
}

fn messenger_storm(s: &Sizes, seed: u64) -> (SimMeasure, SimMeasure) {
    ab_measure(s.msg_iters, |baseline| {
        let mut rt = storm_world(
            s.msg_hosts,
            LocationMode::ForwardingTrace,
            25,
            seed ^ 0x51f0,
            baseline,
        );
        let hosts: Vec<String> = (0..s.msg_hosts).map(|i| format!("s{i}")).collect();
        let mut launched = Vec::with_capacity(s.msg_agents);
        for k in 0..s.msg_agents {
            let route: Vec<&str> = (0..hosts.len())
                .map(|i| hosts[(k + i) % hosts.len()].as_str())
                .collect();
            let nap = storm_agent(Pattern::seq_of_hosts(&route, None), 1 + k as u64);
            launched.push(nap.id().clone());
            rt.launch(nap).unwrap();
        }
        // post to every moving agent on a fixed virtual schedule; each
        // post races the agent's migrations and chases via forwarders
        for round in 0..s.msg_posts {
            rt.run_until(Millis(5 + 20 * round as u64));
            for id in &launched {
                rt.owner_post("home", id.clone(), Payload::User(Value::Int(round as i64)))
                    .unwrap();
            }
        }
        finish_sim_run(rt, &launched, 0)
    })
}

fn live_ring(s: &Sizes, seed: u64) -> WorkloadResult {
    let fabric = Fabric::new(LatencyModel::Constant(1), Bandwidth::fast_ethernet(), seed);
    let mut live = LiveRuntime::new(fabric, 0);
    let reg = probe_registry();
    let hosts: Vec<String> = (0..s.live_hosts).map(|i| format!("s{i}")).collect();
    for host in std::iter::once("home".to_string()).chain(hosts.iter().cloned()) {
        let mut cfg = ServerConfig::open(&host, LocationMode::HomeManagers);
        cfg.codebase = reg.clone();
        live.add_server(cfg);
    }
    let mut launched = Vec::with_capacity(s.live_naplets);
    for k in 0..s.live_naplets {
        let route: Vec<&str> = (0..hosts.len())
            .map(|i| hosts[(k + i) % hosts.len()].as_str())
            .collect();
        let nap = storm_agent(Pattern::seq_of_hosts(&route, None), 1 + k as u64);
        launched.push(nap.id().clone());
        live.launch(nap).unwrap();
    }
    let metrics = live.obs().metrics.clone();
    let want = s.live_naplets as u64;
    let t0 = Instant::now();
    live.start();
    // the metrics registry is shared with the server threads, so we
    // can watch journeys complete without stopping the space
    let deadline = Instant::now() + std::time::Duration::from_secs(30);
    while metrics.counter("journeys.completed") < want && Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let servers = live.shutdown();
    let journeys = metrics.counter("journeys.completed");
    let home = servers.iter().find(|(h, _)| h == "home").map(|(_, s)| s);
    let mut journey_ms: Vec<u64> = launched
        .iter()
        .filter_map(|id| {
            home.and_then(|s| s.manager.table_entry(id))
                .map(|e| e.updated.0)
        })
        .collect();
    journey_ms.sort_unstable();
    let snap = metrics.snapshot();
    let rtt = snap.histogram("handoff_rtt_ms");
    WorkloadResult {
        name: "live_ring",
        runtime: "live",
        naplets: s.live_naplets as u64,
        hosts: s.live_hosts as u64,
        journeys,
        events: 0,
        migrations: snap.counter("handoff.commits"),
        migration_bytes: 0,
        bytes_per_hop: 0,
        forwards: 0,
        virtual_ms: journey_ms.last().copied().unwrap_or(0),
        journey_ms_p50: exact_quantile(&journey_ms, 0.50),
        journey_ms_p95: exact_quantile(&journey_ms, 0.95),
        journey_ms_p99: exact_quantile(&journey_ms, 0.99),
        handoff_rtt_ms_p50: rtt.map(|h| h.quantile(0.50)).unwrap_or(0),
        handoff_rtt_ms_p95: rtt.map(|h| h.quantile(0.95)).unwrap_or(0),
        handoff_rtt_ms_p99: rtt.map(|h| h.quantile(0.99)).unwrap_or(0),
        baseline_wall_ms: 0.0,
        wall_ms,
        baseline_events_per_sec: 0.0,
        events_per_sec: 0.0,
        speedup: 0.0,
        journeys_per_sec: if wall_ms > 0.0 {
            journeys as f64 / (wall_ms / 1e3)
        } else {
            0.0
        },
        allocs_per_event: 0.0,
    }
}

/// Run the whole suite.
pub fn run_suite(cfg: &SuiteConfig) -> SuiteReport {
    let s = sizes(cfg.profile);
    let mut workloads = Vec::new();

    let (opt, base) = ring_storm(&s, cfg.seed);
    workloads.push(assemble(
        "ring_storm",
        s.ring_naplets as u64,
        s.ring_hosts as u64,
        s.ring_iters as u64,
        opt,
        base,
    ));

    let (opt, base) = par_fanout(&s, cfg.seed);
    workloads.push(assemble(
        "par_fanout",
        (s.par_widths.len() * s.par_roots) as u64,
        s.par_widths.iter().copied().max().unwrap_or(0) as u64,
        s.par_iters as u64,
        opt,
        base,
    ));

    let (opt, base) = messenger_storm(&s, cfg.seed);
    workloads.push(assemble(
        "messenger_storm",
        s.msg_agents as u64,
        s.msg_hosts as u64,
        s.msg_iters as u64,
        opt,
        base,
    ));

    if cfg.include_live {
        workloads.push(live_ring(&s, cfg.seed));
    }

    SuiteReport {
        profile: cfg.profile.label().to_string(),
        seed: cfg.seed,
        workloads,
    }
}

impl SuiteReport {
    /// Render the report as JSON with a fixed field order (one field
    /// per line — the determinism test and the CI comparator both rely
    /// on this exact shape; see DESIGN.md "Benchmark report schema").
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"naplet-bench/v1\",");
        let _ = writeln!(out, "  \"profile\": \"{}\",", self.profile);
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        out.push_str("  \"workloads\": [\n");
        for (i, w) in self.workloads.iter().enumerate() {
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"name\": \"{}\",", w.name);
            let _ = writeln!(out, "      \"runtime\": \"{}\",", w.runtime);
            let _ = writeln!(out, "      \"naplets\": {},", w.naplets);
            let _ = writeln!(out, "      \"hosts\": {},", w.hosts);
            let _ = writeln!(out, "      \"journeys\": {},", w.journeys);
            let _ = writeln!(out, "      \"events\": {},", w.events);
            let _ = writeln!(out, "      \"migrations\": {},", w.migrations);
            let _ = writeln!(out, "      \"migration_bytes\": {},", w.migration_bytes);
            let _ = writeln!(out, "      \"bytes_per_hop\": {},", w.bytes_per_hop);
            let _ = writeln!(out, "      \"forwards\": {},", w.forwards);
            let _ = writeln!(out, "      \"virtual_ms\": {},", w.virtual_ms);
            let _ = writeln!(out, "      \"journey_ms_p50\": {},", w.journey_ms_p50);
            let _ = writeln!(out, "      \"journey_ms_p95\": {},", w.journey_ms_p95);
            let _ = writeln!(out, "      \"journey_ms_p99\": {},", w.journey_ms_p99);
            let _ = writeln!(
                out,
                "      \"handoff_rtt_ms_p50\": {},",
                w.handoff_rtt_ms_p50
            );
            let _ = writeln!(
                out,
                "      \"handoff_rtt_ms_p95\": {},",
                w.handoff_rtt_ms_p95
            );
            let _ = writeln!(
                out,
                "      \"handoff_rtt_ms_p99\": {},",
                w.handoff_rtt_ms_p99
            );
            let _ = writeln!(
                out,
                "      \"baseline_wall_ms\": {:.1},",
                w.baseline_wall_ms
            );
            let _ = writeln!(out, "      \"wall_ms\": {:.1},", w.wall_ms);
            let _ = writeln!(
                out,
                "      \"baseline_events_per_sec\": {:.0},",
                w.baseline_events_per_sec
            );
            let _ = writeln!(out, "      \"events_per_sec\": {:.0},", w.events_per_sec);
            let _ = writeln!(out, "      \"speedup\": {:.3},", w.speedup);
            let _ = writeln!(
                out,
                "      \"journeys_per_sec\": {:.1},",
                w.journeys_per_sec
            );
            let _ = writeln!(out, "      \"allocs_per_event\": {:.1}", w.allocs_per_event);
            out.push_str(if i + 1 == self.workloads.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// The EXPERIMENTS.md E11 entry (markdown) for this report.
    pub fn render_e11(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "## E11 · Throughput: storm workloads, optimized vs baseline hot paths"
        );
        out.push('\n');
        let _ = writeln!(
            out,
            "Regenerate: `cargo run --release -p naplet-bench --bin bench -- \
             --profile {} --seed {}` (numbers below are from the committed \
             BENCH_PR4.json; wall-clock rates vary by machine, speedups and \
             virtual-time latencies do not).",
            self.profile, self.seed
        );
        out.push('\n');
        let _ = writeln!(
            out,
            "| workload | runtime | journeys | events | bytes/hop | p50/p95/p99 journey ms | events/sec | baseline | speedup |"
        );
        let _ = writeln!(out, "|---|---|---|---|---|---|---|---|---|");
        for w in &self.workloads {
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {} | {}/{}/{} | {:.0} | {:.0} | {:.2}x |",
                w.name,
                w.runtime,
                w.journeys,
                w.events,
                w.bytes_per_hop,
                w.journey_ms_p50,
                w.journey_ms_p95,
                w.journey_ms_p99,
                w.events_per_sec,
                w.baseline_events_per_sec,
                w.speedup,
            );
        }
        out
    }
}

/// Replace every timing field's value with `0` so two seeded runs of
/// the same suite compare equal (the regression test for report
/// determinism).
pub fn normalize_timing(json: &str) -> String {
    let mut out = String::with_capacity(json.len());
    'line: for line in json.lines() {
        let trimmed = line.trim_start();
        for field in TIMING_FIELDS {
            let prefix = format!("\"{field}\":");
            if trimmed.starts_with(&prefix) {
                let indent = &line[..line.len() - trimmed.len()];
                let comma = if trimmed.trim_end().ends_with(',') {
                    ","
                } else {
                    ""
                };
                out.push_str(indent);
                out.push_str(&prefix);
                out.push_str(" 0");
                out.push_str(comma);
                out.push('\n');
                continue 'line;
            }
        }
        out.push_str(line);
        out.push('\n');
    }
    out
}

fn extract_str(block: &str, field: &str) -> Option<String> {
    let key = format!("\"{field}\": \"");
    let start = block.find(&key)? + key.len();
    let end = block[start..].find('"')? + start;
    Some(block[start..end].to_string())
}

fn extract_num(block: &str, field: &str) -> Option<f64> {
    let key = format!("\"{field}\":");
    let start = block.find(&key)? + key.len();
    let rest = block[start..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn workload_blocks(json: &str) -> Vec<String> {
    // our own fixed emission: each workload object opens with
    // `    {` and closes with `    }` on its own line
    let mut blocks = Vec::new();
    let mut current: Option<String> = None;
    for line in json.lines() {
        if line == "    {" {
            current = Some(String::new());
            continue;
        }
        if line == "    }" || line == "    }," {
            if let Some(b) = current.take() {
                blocks.push(b);
            }
            continue;
        }
        if let Some(b) = &mut current {
            b.push_str(line);
            b.push('\n');
        }
    }
    blocks
}

/// One comparison check's outcome.
#[derive(Debug, Clone)]
pub struct CompareCheck {
    /// Human-readable line (`ring_storm speedup 1.52 vs 1.48 (ok)`).
    pub line: String,
    /// Whether the check passed.
    pub ok: bool,
}

/// Compare a fresh report against the committed baseline with a
/// relative tolerance (0.20 = ±20%) on the throughput ratio
/// (`speedup`, i.e. events/sec hardware-normalized by the in-process
/// baseline run) and on p95 journey latency. Only `sim` workloads
/// gate — live wall-clock numbers are informational. Returns every
/// check performed; the run regresses if any has `ok == false`.
pub fn compare_reports(committed: &str, fresh: &str, tolerance: f64) -> Vec<CompareCheck> {
    let mut checks = Vec::new();
    let committed_blocks = workload_blocks(committed);
    for block in workload_blocks(fresh) {
        let (Some(name), Some(runtime)) =
            (extract_str(&block, "name"), extract_str(&block, "runtime"))
        else {
            continue;
        };
        if runtime != "sim" {
            continue;
        }
        let Some(reference) = committed_blocks.iter().find(|b| {
            extract_str(b, "name").as_deref() == Some(&name)
                && extract_str(b, "runtime").as_deref() == Some(&runtime)
        }) else {
            checks.push(CompareCheck {
                line: format!("{name}: no committed baseline entry"),
                ok: false,
            });
            continue;
        };
        for field in ["speedup", "journey_ms_p95"] {
            let (Some(got), Some(want)) =
                (extract_num(&block, field), extract_num(reference, field))
            else {
                checks.push(CompareCheck {
                    line: format!("{name} {field}: missing value"),
                    ok: false,
                });
                continue;
            };
            // latencies gate one-sided (faster is fine); the speedup
            // ratio must hold from below too — losing the optimization
            // win is exactly the regression this job exists to catch
            let ok = match field {
                "journey_ms_p95" => got <= want * (1.0 + tolerance) + 1.0,
                _ => got >= want * (1.0 - tolerance),
            };
            checks.push(CompareCheck {
                line: format!(
                    "{name} {field}: {got:.3} vs committed {want:.3} ({})",
                    if ok { "ok" } else { "REGRESSION" }
                ),
                ok,
            });
        }
    }
    if checks.is_empty() {
        checks.push(CompareCheck {
            line: "no comparable sim workloads found".into(),
            ok: false,
        });
    }
    checks
}
