//! Ring-migration throughput over the real TCP backend.
//!
//! The ROADMAP phase-2 item PR 6 left open: the suite's `live_ring`
//! workload measures the threaded runtime over the in-process
//! `ThreadedNet`; this binary runs the same shape — N probes each
//! walking the ring home → n1 → n2 → n3 → home — over a loopback
//! cluster of three real `napletd` processes, so the committed
//! baseline has a wire-speed number next to the in-process one.
//!
//! ```text
//! cargo build --release -p napletd
//! cargo run --release -p naplet-bench --bin tcp-bench -- \
//!     --naplets 200 --out BENCH_PR8.json
//! ```
//!
//! Wall-clock numbers (this is real TCP, there is no virtual time), so
//! the report is a committed snapshot for eyeballing regressions, not
//! a byte-compared CI gate.

use std::time::{Duration, Instant};

use naplet_bench::cluster::ClusterHarness;
use naplet_core::clock::Millis;
use naplet_core::credential::SigningKey;
use naplet_core::itinerary::{Itinerary, Pattern};
use naplet_core::naplet::{AgentKind, Naplet};
use naplet_net::{Bandwidth, Fabric, LatencyModel};
use naplet_server::daemon::{register_probe, PROBE_CODEBASE};
use naplet_server::{LiveRuntime, LocationMode, ServerConfig};

const HOSTS: [&str; 3] = ["n1", "n2", "n3"];

struct RingNumbers {
    wall_ms: f64,
    journeys: usize,
    reports: usize,
}

impl RingNumbers {
    fn journeys_per_sec(&self) -> f64 {
        self.journeys as f64 / (self.wall_ms / 1000.0)
    }

    fn hops_per_sec(&self) -> f64 {
        // each journey migrates home -> n1 -> n2 -> n3 -> home
        (self.journeys * (HOSTS.len() + 1)) as f64 / (self.wall_ms / 1000.0)
    }

    fn json(&self) -> String {
        format!(
            "{{\n  \"wall_ms\": {:.1},\n  \"journeys\": {},\n  \"reports\": {},\n  \
             \"journeys_per_sec\": {:.1},\n  \"hops_per_sec\": {:.1}\n }}",
            self.wall_ms,
            self.journeys,
            self.reports,
            self.journeys_per_sec(),
            self.hops_per_sec()
        )
    }
}

/// N probes around three real daemons, pumped from the in-process ctl
/// home node.
fn tcp_ring(naplets: usize) -> RingNumbers {
    let harness = ClusterHarness::launch("tcp-bench", &HOSTS, "lease_ms = 600000\n")
        .expect("launch cluster (build napletd first: cargo build --release -p napletd)");
    let mut ctl = harness.ctl().expect("ctl node");
    let started = Instant::now();
    for _ in 0..naplets {
        ctl.launch_probe(&HOSTS).expect("launch probe");
    }
    let want = naplets * HOSTS.len();
    let done = ctl.pump_until(Duration::from_secs(600), |c| {
        c.server().reports.len() >= want
    });
    let wall_ms = started.elapsed().as_secs_f64() * 1000.0;
    let reports = ctl.reports().len();
    assert!(done, "ring stalled: {reports}/{want} reports");
    harness.shutdown();
    RingNumbers {
        wall_ms,
        journeys: naplets,
        reports,
    }
}

/// The same N-probe ring on the threaded runtime over the in-process
/// fabric: the in-process baseline the TCP number sits next to.
fn in_process_ring(naplets: usize) -> RingNumbers {
    let fabric = Fabric::new(LatencyModel::Constant(1), Bandwidth::fast_ethernet(), 7);
    let mut live = LiveRuntime::new(fabric, 0);
    for host in ["home", "n1", "n2", "n3"] {
        let mut cfg = ServerConfig::open(host, LocationMode::HomeManagers);
        register_probe(&mut cfg.codebase);
        live.add_server(cfg);
    }
    let key = SigningKey::new("bench", b"tcp-bench");
    let mut pending = Vec::with_capacity(naplets);
    for i in 0..naplets {
        let it = Itinerary::new(Pattern::seq_of_hosts(&HOSTS, None)).unwrap();
        let naplet = Naplet::create(
            &key,
            "bench",
            "home",
            Millis(1 + i as u64),
            PROBE_CODEBASE,
            AgentKind::Native,
            it,
            vec![],
        )
        .unwrap();
        pending.push(naplet);
    }
    let metrics = live.obs().metrics.clone();
    let started = Instant::now();
    for naplet in pending {
        live.launch(naplet).unwrap();
    }
    live.start();
    // the metrics registry is shared with the server threads, so
    // journeys can be watched to completion without stopping the space
    let want = naplets as u64;
    let deadline = Instant::now() + Duration::from_secs(600);
    while metrics.counter("journeys.completed") < want && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    let wall_ms = started.elapsed().as_secs_f64() * 1000.0;
    let servers = live.shutdown();
    let journeys = metrics.counter("journeys.completed");
    assert!(
        journeys >= want,
        "in-process ring stalled: {journeys}/{want}"
    );
    let reports = servers
        .iter()
        .find(|(h, _)| h == "home")
        .map(|(_, s)| s.reports.len())
        .unwrap_or(0);
    RingNumbers {
        wall_ms,
        journeys: naplets,
        reports,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let naplets: usize = flag("--naplets")
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    let out = flag("--out");

    eprintln!(
        "tcp-bench: {naplets} probes around {:?} over loopback TCP ...",
        HOSTS
    );
    let tcp = tcp_ring(naplets);
    eprintln!(
        "tcp-bench:   tcp        {:>8.1} journeys/s  ({:.1} hops/s, {:.0} ms)",
        tcp.journeys_per_sec(),
        tcp.hops_per_sec(),
        tcp.wall_ms
    );
    eprintln!("tcp-bench: same ring on the in-process ThreadedNet ...");
    let inproc = in_process_ring(naplets);
    eprintln!(
        "tcp-bench:   in-process {:>8.1} journeys/s  ({:.1} hops/s, {:.0} ms)",
        inproc.journeys_per_sec(),
        inproc.hops_per_sec(),
        inproc.wall_ms
    );

    let report = format!(
        "{{\n \"schema\": \"naplet-bench/tcp-ring-v1\",\n \"name\": \"ring_migration_tcp\",\n \
         \"hosts\": {},\n \"naplets\": {},\n \"tcp\": {},\n \"in_process\": {}\n}}\n",
        HOSTS.len(),
        naplets,
        tcp.json(),
        inproc.json()
    );
    match out {
        Some(path) => {
            std::fs::write(&path, &report).expect("write report");
            eprintln!("tcp-bench: report written to {path}");
        }
        None => print!("{report}"),
    }
}
