//! Regenerate every figure/table of EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p naplet-bench --bin figures            # everything
//! cargo run --release -p naplet-bench --bin figures -- f3 e1   # a subset
//! ```

use naplet_bench::*;
use naplet_core::clock::Millis;
use naplet_core::itinerary::{ActionSpec, Itinerary, Pattern};
use naplet_core::naplet::{AgentKind, Naplet};
use naplet_core::NapletId;
use naplet_server::LocationMode;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).map(|a| a.to_lowercase()).collect();
    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name);

    if want("f1") {
        fig_f1();
    }
    if want("f2") {
        fig_f2();
    }
    if want("f3") {
        fig_f3();
    }
    if want("e1") {
        exp_e1();
    }
    if want("e2") {
        exp_e2();
    }
    if want("e3") {
        exp_e3();
    }
    if want("e4") {
        exp_e4();
    }
    if want("e5") {
        exp_e5();
    }
    if want("e6") {
        exp_e6();
    }
    if want("e7") {
        exp_e7();
    }
    if want("e8") {
        exp_e8();
    }
    if want("e9") {
        exp_e9();
    }
    if want("e10") {
        exp_e10();
    }
    // explicit opt-in only: the dump is machine-readable JSON on
    // stdout, not a table — `figures trace > trace.json`
    if args.iter().any(|a| a == "trace") {
        dump_trace();
    }
    // explicit opt-in: ops-plane views — a cluster health table
    // (`figures status`), an interval watch (`figures watch`), and the
    // machine-readable Prometheus page (`figures prom > page.prom`,
    // byte-compared twice by the CI status-plane check)
    if args.iter().any(|a| a == "status") {
        show_status();
    }
    if args.iter().any(|a| a == "watch") {
        show_watch();
    }
    if args.iter().any(|a| a == "prom") {
        dump_prometheus();
    }
    // live counterpart of `status`: poll a running napletd cluster.
    // `figures cluster-status <bootstrap.toml> [station]` — paths may
    // be case-sensitive, so read them from the raw (un-lowercased)
    // argument list
    if args.iter().any(|a| a == "cluster-status") {
        let raw: Vec<String> = std::env::args().skip(1).collect();
        let at = raw
            .iter()
            .position(|a| a.to_lowercase() == "cluster-status")
            .unwrap();
        std::process::exit(cluster_status(&raw[at + 1..]));
    }
    // merge per-daemon flight-recorder segments into one cluster-wide
    // Chrome trace: `figures cluster-trace <bootstrap.toml> [station]`
    // live-polls a running cluster; `figures cluster-trace --dumps
    // <file...>` merges dump files written on SIGUSR1/shutdown/panic
    if args.iter().any(|a| a == "cluster-trace") {
        let raw: Vec<String> = std::env::args().skip(1).collect();
        let at = raw
            .iter()
            .position(|a| a.to_lowercase() == "cluster-trace")
            .unwrap();
        std::process::exit(cluster_trace(&raw[at + 1..]));
    }
    // journey critical-path analysis over a merged trace: where did
    // each journey's wall-clock go, which segment was critical, and
    // did the run meet its `[slo]` budgets — `figures analyze ...`
    if args.iter().any(|a| a == "analyze") {
        let raw: Vec<String> = std::env::args().skip(1).collect();
        let at = raw
            .iter()
            .position(|a| a.to_lowercase() == "analyze")
            .unwrap();
        std::process::exit(analyze(&raw[at + 1..]));
    }
    // live counterpart of `watch`: page every daemon's metrics-history
    // ring and print per-host interval-delta rate tables
    if args.iter().any(|a| a == "cluster-watch") {
        let raw: Vec<String> = std::env::args().skip(1).collect();
        let at = raw
            .iter()
            .position(|a| a.to_lowercase() == "cluster-watch")
            .unwrap();
        std::process::exit(cluster_watch(&raw[at + 1..]));
    }
}

/// F1 — the hierarchical naplet id of Figure 1.
fn fig_f1() {
    println!("== F1: hierarchical naplet identifiers (Figure 1) ==");
    let root = NapletId::new("czxu", "ece.eng.wayne.edu", Millis(10512172720)).unwrap();
    println!("original : {root}");
    let c1 = root.clone_child(1);
    let c2 = root.clone_child(2);
    println!("clone 1  : {c1}");
    println!("clone 2  : {c2}");
    for k in 0..3 {
        let g = c2.clone_child(k);
        println!(
            "  gen 2  : {g}   (parent={}, original={}, ancestor-of-root: {})",
            g.parent().unwrap().short(),
            g.original().short(),
            root.is_ancestor_of(&g)
        );
    }
    println!();
}

/// F2 — the component handshake of one migration (Figure 2 in motion).
fn fig_f2() {
    println!("== F2: NapletServer architecture — one migration, component trace (Figure 2) ==");
    let world = RingWorld::build(
        2,
        LocationMode::CentralDirectory("home".into()),
        naplet_net::LatencyModel::Constant(2),
        5,
        7,
    );
    let mut rt = world.rt;
    let it = Itinerary::new(Pattern::seq_of_hosts(&["s0", "s1"], None))
        .unwrap()
        .with_final_action(ActionSpec::ReportHome);
    let naplet = Naplet::create(
        &bench_key(),
        "czxu",
        "home",
        Millis(1),
        PROBE_CODEBASE,
        AgentKind::Native,
        it,
        vec![],
    )
    .unwrap();
    rt.launch(naplet).unwrap();
    rt.run_to_quiescence(1_000_000);
    for host in rt.server_hosts() {
        let server = rt.server(&host).unwrap();
        for entry in &server.log {
            println!("  [{:>5}] {:<5} {}", entry.at.0, host, entry.line);
        }
    }
    println!();
}

/// F3 — MAN vs centralized SNMP over device count (the §6 claim).
fn fig_f3() {
    let rows = exp_f3_devices(&[2, 4, 8, 16, 32], 16, 42);
    println!(
        "{}",
        render_man_table(
            "F3: MAN (broadcast agents) vs centralized SNMP, 16 vars/device",
            &rows
        )
    );
}

/// E1 — traffic crossover over variables per device.
fn exp_e1() {
    let rows = exp_e1_crossover(&[1, 2, 4, 8, 16, 32, 64], 8, 42);
    println!(
        "{}",
        render_man_table(
            "E1: crossover over vars/device (8 devices; sequential agent vs per-var polling)",
            &rows
        )
    );
    let crossover = rows.iter().find(|r| r.agent_bytes < r.central_bytes);
    match crossover {
        Some(r) => println!("  -> agent wins on bytes from {} vars/device\n", r.vars),
        None => println!("  -> no crossover in the swept range\n"),
    }

    let (raw, filtered) = exp_filtering(8, 42);
    println!(
        "E1b: on-site filtering — report bytes raw={raw} filtered={filtered} ({:.1}% saved)\n",
        100.0 * (raw - filtered) as f64 / raw.max(1) as f64
    );
}

/// E2 — completion time over link latency.
fn exp_e2() {
    println!(
        "== E2: overcoming latency — completion vs one-way link latency (8 devices, 16 vars) =="
    );
    println!(
        "{:>12} | {:>12} {:>12} {:>8}",
        "latency ms", "agent ms", "central ms", "ratio"
    );
    for (lat, r) in exp_e2_latency(&[1, 5, 20, 50, 100, 200], 8, 16, 42) {
        println!(
            "{:>12} | {:>12} {:>12} {:>7.2}x",
            lat,
            r.agent_ms,
            r.central_ms,
            r.central_ms as f64 / r.agent_ms.max(1) as f64
        );
    }
    println!();

    println!("== E2b: interface-table walk (round-trip-bound get-next chain) vs on-site walk, 8 devices ==");
    println!(
        "{:>12} | {:>6} | {:>12} {:>12} {:>8}",
        "latency ms", "rows", "agent ms", "central ms", "speedup"
    );
    for (lat, r) in exp_e2_walk(&[1, 5, 20, 50, 100], 8, 42) {
        println!(
            "{:>12} | {:>6} | {:>12} {:>12} {:>7.1}x",
            lat,
            r.vars,
            r.agent_ms,
            r.central_ms,
            r.central_ms as f64 / r.agent_ms.max(1) as f64
        );
    }
    println!();
}

/// E3 — itinerary shapes (paper §3 Examples 1–3).
fn exp_e3() {
    println!("== E3: itinerary patterns over 8 hosts (Examples 1-3) ==");
    println!(
        "{:>12} | {:>8} {:>13} {:>13} {:>11}",
        "shape", "agents", "completion ms", "total bytes", "migrations"
    );
    for shape in ["seq", "par", "par-of-seqs"] {
        let o = itinerary_experiment(8, shape, 42);
        println!(
            "{:>12} | {:>8} {:>13} {:>13} {:>11}",
            o.shape, o.agents, o.completion_ms, o.total_bytes, o.migrations
        );
    }
    println!();
}

/// E4 — location modes: directory vs home managers vs forwarding.
fn exp_e4() {
    println!("== E4: location & communication modes (8 hosts, 3 laps, 12 messages) ==");
    println!(
        "{:>18} | {:>9} {:>10} {:>13} {:>9} {:>14} {:>14}",
        "mode", "delivered", "forwards", "confirm ms", "max hops", "control bytes", "message bytes"
    );
    for (label, mode) in [
        (
            "central-directory",
            LocationMode::CentralDirectory("home".into()),
        ),
        ("home-managers", LocationMode::HomeManagers),
        ("forwarding-trace", LocationMode::ForwardingTrace),
    ] {
        let o = messaging_experiment(8, 3, mode, 12, 40, 42);
        println!(
            "{:>18} | {:>6}/{:<2} {:>10} {:>13.1} {:>9} {:>14} {:>14}",
            label,
            o.delivered,
            o.posted,
            o.forwards,
            o.mean_confirm_latency_ms,
            o.max_hops,
            o.control_bytes,
            o.message_bytes
        );
    }
    println!();
}

/// E5 — post-office delivery guarantee under rapid mobility.
fn exp_e5() {
    println!("== E5: post-office delivery under mobility (forwarding mode) ==");
    println!(
        "{:>8} {:>6} {:>10} | {:>9} {:>10} {:>9} {:>9}",
        "hosts", "laps", "messages", "delivered", "forwards", "max hops", "stranded"
    );
    for (hosts, laps, msgs) in [(4, 2, 8), (8, 3, 16), (12, 4, 24)] {
        let o = messaging_experiment(hosts, laps, LocationMode::ForwardingTrace, msgs, 25, 7);
        println!(
            "{:>8} {:>6} {:>10} | {:>6}/{:<2} {:>10} {:>9} {:>9}",
            hosts, laps, msgs, o.delivered, o.posted, o.forwards, o.max_hops, o.stranded_early
        );
    }
    println!();
}

/// E6 — monitor/gas enforcement overhead (wall-clock microbench).
fn exp_e6() {
    println!("== E6: monitor enforcement — interpreter wall time vs gas slice ==");
    let program = naplet_vm::assemble(
        r#"
        .program spin
        .func main locals=2
            int 0
            store 0
        head:
            load 0
            int 200000
            lt
            jmpf done
            load 0
            int 1
            add
            store 0
            jmp head
        done:
            load 0
            halt
        .end
        "#,
    )
    .unwrap();
    for slice in [100u64, 1_000, 10_000, 100_000, u64::MAX] {
        let mut image = naplet_vm::VmImage::new(program.clone()).unwrap();
        let mut host = naplet_vm::MockHost::new("bench");
        let t = std::time::Instant::now();
        let mut slices = 0u64;
        loop {
            match naplet_vm::run(&mut image, &mut host, slice).unwrap() {
                naplet_vm::VmYield::OutOfGas => slices += 1,
                naplet_vm::VmYield::Done(_) => break,
                naplet_vm::VmYield::Travel => unreachable!(),
            }
        }
        let elapsed = t.elapsed();
        println!(
            "  gas_slice {:>9} : {:>10.2?} total, {:>7} reschedules, {:>12} gas",
            if slice == u64::MAX {
                "unlimited".to_string()
            } else {
                slice.to_string()
            },
            elapsed,
            slices,
            image.gas_used
        );
    }
    println!();
}

/// E7 — lazy code loading: cold vs cached rounds.
fn exp_e7() {
    println!("== E7: lazy code loading over 8 hosts, 4 rounds ==");
    println!(
        "{:>7} | {:>12} {:>15}",
        "round", "code bytes", "completion ms"
    );
    for o in code_loading_experiment(8, 4, 42) {
        println!(
            "{:>7} | {:>12} {:>15}",
            o.round, o.code_bytes, o.completion_ms
        );
    }
    println!();
}

/// E8 — ablation: state accumulation under sequential collection vs
/// broadcast clones (why the NM itinerary is a broadcast).
fn exp_e8() {
    println!("== E8: migration size growth — sequential hoarder vs broadcast clones (8 hosts, 512 B gathered per visit) ==");
    let o = accumulation_experiment(8, 512, 42);
    println!("{:>6} | {:>16}", "hop", "migration bytes");
    for (i, b) in o.seq_hop_bytes.iter().enumerate() {
        println!("{:>6} | {:>16}", i, b);
    }
    let first = *o.seq_hop_bytes.first().unwrap_or(&1);
    let last = *o.seq_hop_bytes.last().unwrap_or(&1);
    println!(
        "  sequential growth {:.1}x over the route; broadcast clones stay flat at ~{} bytes each\n",
        last as f64 / first.max(1) as f64,
        o.broadcast_clone_bytes
    );
}

/// E10 — per-naplet resource accounting (paper §5.2: the monitor keeps
/// track of CPU, memory and network bandwidth consumed by a naplet)
/// plus the metrics-registry summary of the same run.
fn exp_e10() {
    println!("== E10: per-naplet resource accounting — chaos journey, 5% loss (paper §5.2) ==");
    let out = traced_chaos_experiment(0.05, &[("s1", 10, 700)], 42);
    println!(
        "{:>6} | {:>24} | {:>7} {:>10} {:>11} {:>12}",
        "host", "naplet", "visits", "cpu gas", "msg bytes", "state bytes"
    );
    for (host, naplet, u) in &out.usage {
        println!(
            "{:>6} | {:>24} | {:>7} {:>10} {:>11} {:>12}",
            host, naplet, u.visits, u.gas, u.msg_bytes, u.peak_state_bytes
        );
    }
    println!();
    println!("{}", out.obs.metrics.render_text());
}

/// Dump the Chrome trace-event JSON of a traced chaos run to stdout.
fn dump_trace() {
    let out = traced_chaos_experiment(0.05, &[("s1", 10, 700)], 42);
    println!("{}", out.chrome_json);
}

/// `figures status` — the cluster health table: one probe walking the
/// ring, a mid-flight status sweep (agent resident, journal lag live)
/// and the quiescent end state.
fn show_status() {
    println!("== status: cluster health probes over a ring journey ==");
    let world = RingWorld::build(
        7,
        LocationMode::HomeManagers,
        naplet_net::LatencyModel::Constant(2),
        5,
        7,
    );
    let naplet = world.probe_naplet(1, 1);
    let mut rt = world.rt;
    rt.enable_watchdog(naplet_obs::WatchdogConfig::default());
    rt.launch(naplet).unwrap();
    rt.run_until(Millis(20));
    println!("-- t={:>4}ms (mid-journey) --", rt.now().0);
    for report in rt.status_reports() {
        println!("  {}", report.summary());
    }
    rt.run_to_quiescence(50_000_000);
    println!("-- t={:>4}ms (quiescent) --", rt.now().0);
    for report in rt.status_reports() {
        println!("  {}", report.summary());
    }
    println!("  alerts raised: {}\n", rt.alerts().len());
}

/// `figures watch` — two polls of the stalled chaos journey with the
/// interval metrics diff between them (what changed since last poll).
fn show_watch() {
    println!("== watch: interval metrics — stalled journey (s1 down 10..700 ms) ==");
    let world = RingWorld::build(
        7,
        LocationMode::HomeManagers,
        naplet_net::LatencyModel::Constant(2),
        5,
        42,
    );
    let naplet = world.probe_naplet(1, 1);
    let mut rt = world.rt;
    rt.enable_watchdog(naplet_obs::WatchdogConfig {
        deadline_ms: 200,
        tick_ms: 50,
        ..Default::default()
    });
    rt.fabric().schedule_down("s1", 10, 700);
    rt.launch(naplet).unwrap();
    rt.run_until(Millis(400));
    let early = rt.obs().snapshot().metrics;
    println!(
        "-- poll 1 at t={}ms: {} alert(s) so far --",
        rt.now().0,
        rt.alerts().len()
    );
    for alert in rt.alerts() {
        println!(
            "  {} {} last seen at {} ({}ms idle)",
            if alert.orphan { "ORPHAN?" } else { "STALLED" },
            alert.naplet,
            alert.last_host,
            alert.event.at.0
        );
    }
    rt.run_to_quiescence(50_000_000);
    let full = rt.obs().snapshot().metrics;
    println!("-- poll 2 at t={}ms: counters since poll 1 --", rt.now().0);
    println!("{}", full.diff(&early).render_text());
}

/// `figures prom` — the Prometheus text exposition of the watched
/// chaos run, on stdout for the CI two-run byte comparison.
fn dump_prometheus() {
    let out = watched_chaos_experiment(0.05, &[("s1", 10, 700)], 200, 42);
    print!("{}", naplet_obs::prometheus_text(&out.obs.metrics));
}

/// `figures cluster-status <bootstrap.toml> [station] [--watch <secs>
/// [--rounds <n>]]` — the live counterpart of `figures status`: bind
/// the `station` node (default `ctl`) from the bootstrap file and poll
/// every other node's running daemon for its status report. With
/// `--watch` it re-polls every `<secs>` seconds (forever, or `--rounds
/// <n>` times) and prints the field-level diff between successive
/// polls instead of repeating the full table. Exit code 1 when any
/// poll missed a node, so the CI cluster-smoke job can use it as a
/// health gate in either mode.
fn cluster_status(rest: &[String]) -> i32 {
    const USAGE: &str =
        "usage: figures cluster-status <bootstrap.toml> [station] [--watch <secs> [--rounds <n>]]";
    let mut positional: Vec<&String> = Vec::new();
    let mut watch_secs: Option<u64> = None;
    let mut rounds: u64 = 0; // 0 = unbounded while watching
    let mut i = 0;
    while i < rest.len() {
        let flag_value = |name: &str| -> Option<u64> {
            rest.get(i + 1).and_then(|v| v.parse().ok()).or_else(|| {
                eprintln!("cluster-status: {name} needs a numeric argument\n{USAGE}");
                None
            })
        };
        match rest[i].as_str() {
            "--watch" => match flag_value("--watch") {
                Some(v) => {
                    watch_secs = Some(v);
                    i += 2;
                }
                None => return 2,
            },
            "--rounds" => match flag_value("--rounds") {
                Some(v) => {
                    rounds = v;
                    i += 2;
                }
                None => return 2,
            },
            other if other.starts_with("--") => {
                eprintln!("cluster-status: unknown flag `{other}`\n{USAGE}");
                return 2;
            }
            _ => {
                positional.push(&rest[i]);
                i += 1;
            }
        }
    }
    let Some(path) = positional.first() else {
        eprintln!("{USAGE}");
        return 2;
    };
    let station = positional.get(1).map(|s| s.as_str()).unwrap_or("ctl");
    let config = match naplet_server::BootstrapConfig::load(std::path::Path::new(path)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cluster-status: cannot load `{path}`: {e}");
            return 2;
        }
    };
    let targets: Vec<String> = config
        .nodes
        .iter()
        .map(|n| n.name.clone())
        .filter(|n| n != station)
        .collect();
    let mut poller = match naplet_man::ClusterStatusPoller::connect(&config, station) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("cluster-status: cannot bind station `{station}`: {e}");
            return 2;
        }
    };
    let mut previous: Option<Vec<naplet_server::StatusReport>> = None;
    let mut any_missing = false;
    let mut round: u64 = 0;
    loop {
        round += 1;
        let reports = match poller.poll(&targets, std::time::Duration::from_secs(5)) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("cluster-status: poll failed: {e}");
                return 2;
            }
        };
        match &previous {
            None => print!(
                "{}",
                naplet_man::ClusterStatusPoller::render_table(&reports)
            ),
            Some(prev) => {
                let diffs = naplet_man::ClusterStatusPoller::diff_reports(prev, &reports);
                println!("-- poll {round}: {} change(s) --", diffs.len());
                for line in &diffs {
                    println!("  {line}");
                }
            }
        }
        let heard: std::collections::BTreeSet<&str> =
            reports.iter().map(|r| r.host.as_str()).collect();
        for target in &targets {
            if !heard.contains(target.as_str()) {
                eprintln!("cluster-status: no reply from `{target}`");
                any_missing = true;
            }
        }
        let Some(secs) = watch_secs else { break };
        if rounds > 0 && round >= rounds {
            break;
        }
        previous = Some(reports);
        std::thread::sleep(std::time::Duration::from_secs(secs));
    }
    if any_missing {
        1
    } else {
        0
    }
}

/// `figures cluster-trace` — merge every daemon's flight-recorder
/// segment into one cluster-wide Chrome trace and flag causality
/// violations (a receive with no earlier matching send, a gap in a
/// journey's hop sequence).
///
/// ```text
/// figures cluster-trace <bootstrap.toml> [station] [--out f] [--tolerance-ms n]
/// figures cluster-trace --dumps <a.trace.json> <b.trace.json> ... [--out f] [--tolerance-ms n]
/// ```
///
/// The first form binds `station` (default `mon`) from the bootstrap
/// file and pages every other node's recorder out over the privileged
/// trace protocol; the second merges dump files that daemons wrote on
/// SIGUSR1, clean shutdown, or panic. The merged trace goes to `--out`
/// (default `cluster-trace.json`, `-` for stdout). Exit 0 when the
/// merge is causally clean, 1 when violations were flagged, 2 on
/// usage/IO errors — so CI can gate on it directly.
fn cluster_trace(rest: &[String]) -> i32 {
    const USAGE: &str = "usage: figures cluster-trace <bootstrap.toml> [station] \
                         [--out <file>] [--tolerance-ms <n>] [--top <n>]\n\
                         \x20      figures cluster-trace --dumps <file...> \
                         [--out <file>] [--tolerance-ms <n>] [--top <n>]";
    let mut positional: Vec<&String> = Vec::new();
    let mut dumps: Vec<&String> = Vec::new();
    let mut in_dumps = false;
    let mut out_path = "cluster-trace.json".to_string();
    let mut tolerance_ms: u64 = 5;
    let mut top: usize = 0;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--dumps" => {
                in_dumps = true;
                i += 1;
            }
            "--out" => {
                in_dumps = false;
                let Some(v) = rest.get(i + 1) else {
                    eprintln!("cluster-trace: --out needs a path\n{USAGE}");
                    return 2;
                };
                out_path = v.clone();
                i += 2;
            }
            "--tolerance-ms" => {
                in_dumps = false;
                let Some(v) = rest.get(i + 1).and_then(|v| v.parse().ok()) else {
                    eprintln!("cluster-trace: --tolerance-ms needs a numeric argument\n{USAGE}");
                    return 2;
                };
                tolerance_ms = v;
                i += 2;
            }
            "--top" => {
                in_dumps = false;
                let Some(v) = rest.get(i + 1).and_then(|v| v.parse().ok()) else {
                    eprintln!("cluster-trace: --top needs a numeric argument\n{USAGE}");
                    return 2;
                };
                top = v;
                i += 2;
            }
            other if other.starts_with("--") => {
                eprintln!("cluster-trace: unknown flag `{other}`\n{USAGE}");
                return 2;
            }
            _ => {
                if in_dumps {
                    dumps.push(&rest[i]);
                } else {
                    positional.push(&rest[i]);
                }
                i += 1;
            }
        }
    }

    let segments = match collect_segments("cluster-trace", &dumps, &positional, USAGE) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let merged = naplet_obs::merge_cluster_trace(&segments, tolerance_ms);
    if out_path == "-" {
        print!("{}", merged.json);
    } else if let Err(e) = std::fs::write(&out_path, &merged.json) {
        eprintln!("cluster-trace: cannot write `{out_path}`: {e}");
        return 2;
    }
    let truncated: Vec<&str> = segments
        .iter()
        .filter(|s| s.dropped > 0)
        .map(|s| s.host.as_str())
        .collect();
    eprintln!(
        "cluster-trace: merged {} event(s) from {} node(s) into {out_path}{}",
        merged.event_count,
        segments.len(),
        if truncated.is_empty() {
            String::new()
        } else {
            format!(" (truncated rings on: {})", truncated.join(", "))
        }
    );
    if top > 0 {
        let analysis = naplet_obs::analyze_segments(&segments);
        eprintln!("cluster-trace: {top} slowest journey(s):");
        for j in analysis.journeys.iter().take(top) {
            eprintln!(
                "  {} wall {} ms over {} hop(s), critical: {}",
                j.journey, j.wall_ms, j.hops, j.critical
            );
        }
    }
    if merged.violations.is_empty() {
        eprintln!("cluster-trace: causality clean");
        0
    } else {
        eprintln!(
            "cluster-trace: {} causality violation(s):",
            merged.violations.len()
        );
        for v in &merged.violations {
            eprintln!("  {v}");
        }
        1
    }
}

/// Collect flight segments for a trace-consuming subcommand: from
/// `--dumps` files when any were given, otherwise by live-polling the
/// running cluster named by the bootstrap file (station defaults to
/// `mon`). `Err` carries the exit code to return.
fn collect_segments(
    cmd: &str,
    dumps: &[&String],
    positional: &[&String],
    usage: &str,
) -> Result<Vec<naplet_obs::FlatSegment>, i32> {
    let segments: Vec<naplet_obs::FlatSegment> = if !dumps.is_empty() {
        let mut segments = Vec::new();
        for path in dumps {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("{cmd}: cannot read `{path}`: {e}");
                    return Err(2);
                }
            };
            match naplet_obs::parse_flight_dump(&text) {
                Ok(seg) => segments.push(seg),
                Err(e) => {
                    eprintln!("{cmd}: `{path}` is not a flight dump: {e}");
                    return Err(2);
                }
            }
        }
        segments
    } else {
        let Some(path) = positional.first() else {
            eprintln!("{usage}");
            return Err(2);
        };
        let station = positional.get(1).map(|s| s.as_str()).unwrap_or("mon");
        let config = match naplet_server::BootstrapConfig::load(std::path::Path::new(path)) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("{cmd}: cannot load `{path}`: {e}");
                return Err(2);
            }
        };
        let targets: Vec<String> = config
            .nodes
            .iter()
            .map(|n| n.name.clone())
            .filter(|n| n != station)
            .collect();
        let mut poller = match naplet_man::ClusterTracePoller::connect(&config, station) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{cmd}: cannot bind station `{station}`: {e}");
                return Err(2);
            }
        };
        match poller.fetch_traces(&targets, std::time::Duration::from_secs(10)) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{cmd}: fetch failed: {e}");
                return Err(2);
            }
        }
    };
    if segments.is_empty() {
        eprintln!("{cmd}: no segments to merge");
        return Err(2);
    }
    Ok(segments)
}

/// Split the deterministic chaos run's shared event stream into
/// per-host flight segments (complete, epoch 0) — the same ring
/// migration `figures trace` exports, in the shape the analyzer
/// consumes. Byte-identical across runs, so CI `cmp`s two of them and
/// `--diff`s against the committed BENCH_PR10.json baseline.
fn sim_segments() -> Vec<naplet_obs::FlatSegment> {
    let out = traced_chaos_experiment(0.05, &[("s1", 10, 700)], 42);
    let mut hosts: std::collections::BTreeMap<String, Vec<naplet_obs::FlatEvent>> =
        Default::default();
    for event in &out.obs.events {
        hosts
            .entry(event.host.clone())
            .or_default()
            .push(naplet_obs::FlatEvent::from_event(event));
    }
    hosts
        .into_iter()
        .map(|(host, events)| naplet_obs::FlatSegment {
            host,
            start_seq: 0,
            next_seq: events.len() as u64,
            total: events.len() as u64,
            dropped: 0,
            epoch_unix_ms: 0,
            metrics: None,
            events,
        })
        .collect()
}

/// `figures analyze` — the journey critical-path analyzer: partition
/// every journey's wall-clock into named segments (dwell, wire, queue,
/// stall, directory), blame the critical segment, and print per-segment
/// percentile tables plus the top-K slowest journeys.
///
/// ```text
/// figures analyze <bootstrap.toml> [station] [--out <f>] [--top <k>] [--slo <toml>]
/// figures analyze --dumps <file...> [--out <f>] [--top <k>] [--slo <toml>]
/// figures analyze --sim [--out <f>] [--top <k>] [--slo <toml>]
/// figures analyze --diff <before.json> <after.json>
/// ```
///
/// The first form live-polls a running cluster's flight recorders; the
/// second reads dump files; `--sim` analyzes the deterministic chaos
/// ring migration (the `figures trace` workload, byte-identical across
/// runs). The machine-readable report goes to `--out`
/// (default `analysis.json`, `-` for stdout in place of the text
/// report). `--slo <toml>` evaluates the `[slo]` budgets from a
/// bootstrap file against the analysis. `--diff` compares two saved
/// reports per segment. Exit 0 when clean; 1 on an SLO breach, a
/// regression, or a journey attributed below the 99% floor; 2 on
/// usage/IO errors — CI gates on all three.
fn analyze(rest: &[String]) -> i32 {
    const USAGE: &str = "usage: figures analyze <bootstrap.toml> [station] \
                         [--out <file>] [--top <k>] [--slo <bootstrap.toml>]\n\
                         \x20      figures analyze --dumps <file...> \
                         [--out <file>] [--top <k>] [--slo <bootstrap.toml>]\n\
                         \x20      figures analyze --sim \
                         [--out <file>] [--top <k>] [--slo <bootstrap.toml>]\n\
                         \x20      figures analyze --diff <before.json> <after.json>";
    let mut positional: Vec<&String> = Vec::new();
    let mut dumps: Vec<&String> = Vec::new();
    let mut in_dumps = false;
    let mut sim = false;
    let mut out_path = "analysis.json".to_string();
    let mut top: usize = 10;
    let mut slo_path: Option<String> = None;
    let mut diff: Option<(String, String)> = None;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--dumps" => {
                in_dumps = true;
                i += 1;
            }
            "--sim" => {
                in_dumps = false;
                sim = true;
                i += 1;
            }
            "--out" => {
                in_dumps = false;
                let Some(v) = rest.get(i + 1) else {
                    eprintln!("analyze: --out needs a path\n{USAGE}");
                    return 2;
                };
                out_path = v.clone();
                i += 2;
            }
            "--top" => {
                in_dumps = false;
                let Some(v) = rest.get(i + 1).and_then(|v| v.parse().ok()) else {
                    eprintln!("analyze: --top needs a numeric argument\n{USAGE}");
                    return 2;
                };
                top = v;
                i += 2;
            }
            "--slo" => {
                in_dumps = false;
                let Some(v) = rest.get(i + 1) else {
                    eprintln!("analyze: --slo needs a bootstrap file\n{USAGE}");
                    return 2;
                };
                slo_path = Some(v.clone());
                i += 2;
            }
            "--diff" => {
                let (Some(a), Some(b)) = (rest.get(i + 1), rest.get(i + 2)) else {
                    eprintln!("analyze: --diff needs two report files\n{USAGE}");
                    return 2;
                };
                diff = Some((a.clone(), b.clone()));
                i += 3;
            }
            other if other.starts_with("--") => {
                eprintln!("analyze: unknown flag `{other}`\n{USAGE}");
                return 2;
            }
            _ => {
                if in_dumps {
                    dumps.push(&rest[i]);
                } else {
                    positional.push(&rest[i]);
                }
                i += 1;
            }
        }
    }

    // diff mode stands alone: compare two saved reports and exit
    if let Some((before_path, after_path)) = diff {
        let load = |path: &str| -> Result<naplet_obs::TraceAnalysis, i32> {
            let text = std::fs::read_to_string(path).map_err(|e| {
                eprintln!("analyze: cannot read `{path}`: {e}");
                2
            })?;
            naplet_obs::parse_analysis(&text).map_err(|e| {
                eprintln!("analyze: `{path}` is not an analysis report: {e}");
                2
            })
        };
        let (before, after) = match (load(&before_path), load(&after_path)) {
            (Ok(b), Ok(a)) => (b, a),
            (Err(c), _) | (_, Err(c)) => return c,
        };
        let report = naplet_obs::diff_analyses(&before, &after);
        print!("{}", report.render_text());
        return if report.has_regressions() {
            eprintln!("analyze: regressions detected between {before_path} and {after_path}");
            1
        } else {
            0
        };
    }

    let segments = if sim {
        sim_segments()
    } else {
        match collect_segments("analyze", &dumps, &positional, USAGE) {
            Ok(s) => s,
            Err(code) => return code,
        }
    };
    let analysis = naplet_obs::analyze_segments(&segments);
    if out_path == "-" {
        print!("{}", analysis.to_json());
    } else {
        print!("{}", analysis.render_text(top));
        if let Err(e) = std::fs::write(&out_path, analysis.to_json()) {
            eprintln!("analyze: cannot write `{out_path}`: {e}");
            return 2;
        }
        eprintln!("analyze: wrote {out_path}");
    }

    let mut failed = false;
    if analysis.min_attributed_pct_tenths < 990 {
        eprintln!(
            "analyze: worst journey attribution {}.{}% is below the 99% floor",
            analysis.min_attributed_pct_tenths / 10,
            analysis.min_attributed_pct_tenths % 10
        );
        failed = true;
    }
    if let Some(slo_path) = slo_path {
        let config = match naplet_server::BootstrapConfig::load(std::path::Path::new(&slo_path)) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("analyze: cannot load `{slo_path}`: {e}");
                return 2;
            }
        };
        let Some(slo) = config.slo else {
            eprintln!("analyze: `{slo_path}` has no [slo] section");
            return 2;
        };
        let breaches = naplet_obs::check_slo(&analysis, &slo);
        if breaches.is_empty() {
            eprintln!("analyze: all SLO budgets met");
        } else {
            for b in &breaches {
                eprintln!("analyze: SLO breach: {b}");
            }
            failed = true;
        }
    }
    if failed {
        1
    } else {
        0
    }
}

/// `figures cluster-watch <bootstrap.toml> [station] [--watch <secs>
/// [--rounds <n>]] [--rows <n>]` — the live counterpart of `figures
/// watch`: page every daemon's metrics-history ring over the
/// privileged history protocol and print per-host rate tables of the
/// sweep-interval deltas (last `--rows` samples, default 10). With
/// `--watch` it re-polls every `<secs>` seconds. Exit 1 when any node
/// contributed nothing.
fn cluster_watch(rest: &[String]) -> i32 {
    const USAGE: &str = "usage: figures cluster-watch <bootstrap.toml> [station] \
                         [--watch <secs> [--rounds <n>]] [--rows <n>]";
    let mut positional: Vec<&String> = Vec::new();
    let mut watch_secs: Option<u64> = None;
    let mut rounds: u64 = 0; // 0 = unbounded while watching
    let mut rows: usize = 10;
    let mut i = 0;
    while i < rest.len() {
        let flag_value = |name: &str| -> Option<u64> {
            rest.get(i + 1).and_then(|v| v.parse().ok()).or_else(|| {
                eprintln!("cluster-watch: {name} needs a numeric argument\n{USAGE}");
                None
            })
        };
        match rest[i].as_str() {
            "--watch" => match flag_value("--watch") {
                Some(v) => {
                    watch_secs = Some(v);
                    i += 2;
                }
                None => return 2,
            },
            "--rounds" => match flag_value("--rounds") {
                Some(v) => {
                    rounds = v;
                    i += 2;
                }
                None => return 2,
            },
            "--rows" => match flag_value("--rows") {
                Some(v) => {
                    rows = v as usize;
                    i += 2;
                }
                None => return 2,
            },
            other if other.starts_with("--") => {
                eprintln!("cluster-watch: unknown flag `{other}`\n{USAGE}");
                return 2;
            }
            _ => {
                positional.push(&rest[i]);
                i += 1;
            }
        }
    }
    let Some(path) = positional.first() else {
        eprintln!("{USAGE}");
        return 2;
    };
    let station = positional.get(1).map(|s| s.as_str()).unwrap_or("mon");
    let config = match naplet_server::BootstrapConfig::load(std::path::Path::new(path)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cluster-watch: cannot load `{path}`: {e}");
            return 2;
        }
    };
    let targets: Vec<String> = config
        .nodes
        .iter()
        .map(|n| n.name.clone())
        .filter(|n| n != station)
        .collect();
    let mut poller = match naplet_man::ClusterStatusPoller::connect(&config, station) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("cluster-watch: cannot bind station `{station}`: {e}");
            return 2;
        }
    };
    let mut any_missing = false;
    let mut round: u64 = 0;
    loop {
        round += 1;
        let pages = match poller.fetch_metrics_history(&targets, std::time::Duration::from_secs(5))
        {
            Ok(p) => p,
            Err(e) => {
                eprintln!("cluster-watch: fetch failed: {e}");
                return 2;
            }
        };
        println!("-- poll {round}: {} node(s) answered --", pages.len());
        print!(
            "{}",
            naplet_man::ClusterStatusPoller::render_rate_table(&pages, rows)
        );
        let heard: std::collections::BTreeSet<&str> =
            pages.iter().map(|p| p.host.as_str()).collect();
        for target in &targets {
            if !heard.contains(target.as_str()) {
                eprintln!("cluster-watch: no history from `{target}`");
                any_missing = true;
            }
        }
        let Some(secs) = watch_secs else { break };
        if rounds > 0 && round >= rounds {
            break;
        }
        std::thread::sleep(std::time::Duration::from_secs(secs));
    }
    if any_missing {
        1
    } else {
        0
    }
}

/// E9 — scheduling-policy ablation (§5.2 future work): journey time by
/// priority tier on a busy server.
fn exp_e9() {
    use naplet_server::SchedulingPolicy as Sp;
    println!(
        "== E9: scheduling policies — probe journey time (ms) on a server with 3 co-residents =="
    );
    println!(
        "{:>18} | {:>8} {:>8} {:>8}",
        "policy", "high", "normal", "low"
    );
    for (label, policy) in [
        ("fcfs", Sp::Fcfs),
        ("priority-sharing", Sp::PrioritySharing),
    ] {
        let t = |prio: Option<&str>| scheduling_experiment(policy, prio, 3, 42);
        println!(
            "{:>18} | {:>8} {:>8} {:>8}",
            label,
            t(Some("high")),
            t(None),
            t(Some("low"))
        );
    }
    println!();
}
