//! Macro-benchmark driver: runs the throughput suite and emits the
//! machine-readable report (`BENCH_PR4.json` schema).
//!
//! ```text
//! bench [--profile smoke|quick|full] [--seed N] [--no-live]
//!       [--out PATH]            write the JSON report to PATH
//!       [--compare PATH]        gate against a committed report
//!       [--tolerance PCT]       compare tolerance (default 20)
//!       [--markdown]            print the EXPERIMENTS.md E11 entry
//!       [--churn]               run the directory churn storm instead
//!       [--churn-naplets N]     storm size (default 100000)
//! ```
//!
//! `--compare` exits non-zero if any sim workload's speedup or p95
//! journey latency regresses beyond the tolerance — this is the CI
//! perf gate. Without `--out`/`--markdown` the JSON goes to stdout.
//!
//! `--churn` runs the replicated-directory churn storm (`BENCH_PR7.json`
//! schema) instead of the throughput suite: waves of naplets over a
//! 3-replica directory with the leader crashed mid-storm, reporting
//! lookup and commit-lag quantiles plus stale-hit rates.

use std::process::ExitCode;

use naplet_bench::suite::{compare_reports, run_suite, Profile, SuiteConfig};

#[cfg(feature = "bench-alloc")]
#[global_allocator]
static ALLOC: naplet_bench::suite::CountingAlloc = naplet_bench::suite::CountingAlloc;

fn main() -> ExitCode {
    let mut cfg = SuiteConfig::default();
    let mut out_path: Option<String> = None;
    let mut compare_path: Option<String> = None;
    let mut tolerance = 0.20;
    let mut markdown = false;
    let mut churn = false;
    let mut churn_naplets = 100_000usize;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--churn" => churn = true,
            "--churn-naplets" => match args.next().unwrap_or_default().parse() {
                Ok(n) => churn_naplets = n,
                Err(_) => return usage("--churn-naplets wants an integer"),
            },
            "--profile" => {
                let v = args.next().unwrap_or_default();
                match Profile::parse(&v) {
                    Some(p) => cfg.profile = p,
                    None => return usage(&format!("unknown profile `{v}`")),
                }
            }
            "--seed" => match args.next().unwrap_or_default().parse() {
                Ok(s) => cfg.seed = s,
                Err(_) => return usage("--seed wants an integer"),
            },
            "--no-live" => cfg.include_live = false,
            "--out" => out_path = args.next(),
            "--compare" => compare_path = args.next(),
            "--tolerance" => match args.next().unwrap_or_default().parse::<f64>() {
                Ok(p) => tolerance = p / 100.0,
                Err(_) => return usage("--tolerance wants a percentage"),
            },
            "--markdown" => markdown = true,
            other => return usage(&format!("unknown flag `{other}`")),
        }
    }

    if churn {
        let storm = naplet_bench::churn::ChurnConfig::storm(churn_naplets, cfg.seed);
        eprintln!(
            "running directory churn storm ({} naplets, seed {}) ...",
            storm.naplets, storm.seed
        );
        let report = naplet_bench::churn::run_churn(&storm);
        let json = report.to_json();
        if let Some(path) = &out_path {
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path}");
        } else {
            print!("{json}");
        }
        if report.journeys_lost > 0 || report.duplicate_reports > 0 {
            eprintln!(
                "churn storm FAILED: {} lost, {} duplicated",
                report.journeys_lost, report.duplicate_reports
            );
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }

    eprintln!(
        "running {} suite (seed {}, live: {}) ...",
        match cfg.profile {
            Profile::Smoke => "smoke",
            Profile::Quick => "quick",
            Profile::Full => "full",
        },
        cfg.seed,
        cfg.include_live
    );
    let report = run_suite(&cfg);
    let json = report.to_json();

    if let Some(path) = &out_path {
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    if markdown {
        print!("{}", report.render_e11());
    } else if out_path.is_none() {
        print!("{json}");
    }

    if let Some(path) = &compare_path {
        let committed = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let checks = compare_reports(&committed, &json, tolerance);
        let mut failed = false;
        for c in &checks {
            eprintln!("  {}", c.line);
            failed |= !c.ok;
        }
        if failed {
            eprintln!(
                "perf gate FAILED against {path} (tolerance ±{:.0}%)",
                tolerance * 100.0
            );
            return ExitCode::FAILURE;
        }
        eprintln!(
            "perf gate passed against {path} (tolerance ±{:.0}%)",
            tolerance * 100.0
        );
    }
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    eprintln!("error: {err}");
    eprintln!(
        "usage: bench [--profile smoke|quick|full] [--seed N] [--no-live] \
         [--out PATH] [--compare PATH] [--tolerance PCT] [--markdown] \
         [--churn] [--churn-naplets N]"
    );
    ExitCode::FAILURE
}
