//! E4 — location & communication modes under mobility: the messaging
//! experiment per mode.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use naplet_bench::messaging_experiment;
use naplet_server::LocationMode;

fn bench_location(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_location_modes");
    group.sample_size(10);
    for (label, mode) in [
        (
            "central_directory",
            LocationMode::CentralDirectory("home".into()),
        ),
        ("home_managers", LocationMode::HomeManagers),
        ("forwarding_trace", LocationMode::ForwardingTrace),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &mode, |b, mode| {
            b.iter(|| messaging_experiment(8, 2, mode.clone(), 8, 40, 42));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_location);
criterion_main!(benches);
