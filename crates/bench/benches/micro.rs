//! Microbenchmarks of the framework substrate: wire codec, naplet
//! identifiers, itinerary traversal, agent serialization and the VM
//! interpreter.

use criterion::{criterion_group, criterion_main, Criterion};

use naplet_core::clock::Millis;
use naplet_core::credential::SigningKey;
use naplet_core::itinerary::{ActionSpec, GuardEnv, Itinerary, Pattern, Step};
use naplet_core::naplet::{AgentKind, Naplet};
use naplet_core::state::NapletState;
use naplet_core::value::Value;
use naplet_core::{codec, NapletId};

fn sample_naplet() -> Naplet {
    let key = SigningKey::new("czxu", b"k");
    let hosts: Vec<String> = (0..16).map(|i| format!("host-{i}")).collect();
    let refs: Vec<&str> = hosts.iter().map(String::as_str).collect();
    let it = Itinerary::new(Pattern::seq_of_hosts(&refs, None))
        .unwrap()
        .with_final_action(ActionSpec::ReportHome);
    let mut n = Naplet::create(
        &key,
        "czxu",
        "home",
        Millis(1),
        "cb",
        AgentKind::Native,
        it,
        vec![],
    )
    .unwrap();
    n.state.set("payload", Value::Bytes(vec![7; 1024]));
    n.state.set(
        "readings",
        Value::List((0..64i64).map(Value::Int).collect()),
    );
    n
}

fn bench_codec(c: &mut Criterion) {
    let naplet = sample_naplet();
    let bytes = naplet.to_wire().unwrap();
    c.bench_function("codec_encode_naplet", |b| {
        b.iter(|| naplet.to_wire().unwrap())
    });
    c.bench_function("codec_decode_naplet", |b| {
        b.iter(|| Naplet::from_wire(&bytes).unwrap())
    });
    let v = Value::map([
        ("oid", Value::from("1.3.6.1.2.1.2.2.1.10.3")),
        ("value", Value::Int(123_456)),
    ]);
    c.bench_function("codec_encode_small_value", |b| {
        b.iter(|| codec::to_bytes(&v).unwrap())
    });
}

fn bench_ids(c: &mut Criterion) {
    let id = NapletId::new("czxu", "ece.eng.wayne.edu", Millis(10512172720))
        .unwrap()
        .clone_child(2)
        .clone_child(1);
    let text = id.to_string();
    c.bench_function("id_display", |b| b.iter(|| id.to_string()));
    c.bench_function("id_parse", |b| b.iter(|| text.parse::<NapletId>().unwrap()));
}

fn bench_itinerary(c: &mut Criterion) {
    let hosts: Vec<String> = (0..64).map(|i| format!("h{i}")).collect();
    let refs: Vec<&str> = hosts.iter().map(String::as_str).collect();
    let it = Itinerary::new(Pattern::seq_of_hosts(&refs, None)).unwrap();
    let state = NapletState::new();
    c.bench_function("itinerary_walk_64", |b| {
        b.iter(|| {
            let mut cursor = it.start();
            let mut hops = 0usize;
            loop {
                match cursor.next(&GuardEnv {
                    state: &state,
                    hops,
                    unreachable: &[],
                }) {
                    Step::Visit { .. } => hops += 1,
                    Step::Done => break hops,
                    _ => {}
                }
            }
        })
    });
}

fn bench_vm(c: &mut Criterion) {
    let fib = naplet_vm::assemble(
        r#"
        .program fib
        .func main
            int 18
            call fib 1
            halt
        .end
        .func fib args=1
            load 0
            int 2
            lt
            jmpf rec
            load 0
            ret
        rec:
            load 0
            int 1
            sub
            call fib 1
            load 0
            int 2
            sub
            call fib 1
            add
            ret
        .end
        "#,
    )
    .unwrap();
    c.bench_function("vm_fib_18", |b| {
        b.iter(|| {
            let mut image = naplet_vm::VmImage::new(fib.clone()).unwrap();
            let mut host = naplet_vm::MockHost::new("bench");
            naplet_vm::run(&mut image, &mut host, u64::MAX).unwrap()
        })
    });
    let image = naplet_vm::VmImage::new(fib).unwrap();
    c.bench_function("vm_image_wire_round_trip", |b| {
        b.iter(|| naplet_vm::VmImage::from_wire(&image.to_wire().unwrap()).unwrap())
    });
}

criterion_group!(benches, bench_codec, bench_ids, bench_itinerary, bench_vm);
criterion_main!(benches);
