//! E7 — lazy code loading: a full journey over cold caches vs the
//! steady-state warm round.

use criterion::{criterion_group, criterion_main, Criterion};

use naplet_bench::code_loading_experiment;

fn bench_code_loading(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_code_loading");
    group.sample_size(15);
    group.bench_function("cold_then_warm_4_rounds", |b| {
        b.iter(|| code_loading_experiment(6, 4, 42));
    });
    group.finish();
}

criterion_group!(benches, bench_code_loading);
criterion_main!(benches);
