//! F3 — MAN (mobile agents) vs centralized SNMP: one management round
//! over `n` devices, 16 variables each. Criterion measures the wall
//! time of the whole simulated round; the `figures` binary prints the
//! byte/virtual-time tables.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use naplet_bench::RingWorld; // ensure crate links
use naplet_man::{health_oids, ManWorld};
use naplet_net::{Bandwidth, LatencyModel};

fn build_world(devices: usize) -> ManWorld {
    let mut w = ManWorld::build(
        devices,
        4,
        LatencyModel::Constant(2),
        Bandwidth::fast_ethernet(),
        42,
    );
    w.tick_devices(10_000);
    w.warm().expect("warm");
    w
}

fn bench_man_vs_snmp(c: &mut Criterion) {
    let _ = RingWorld::build(
        1,
        naplet_server::LocationMode::ForwardingTrace,
        LatencyModel::Constant(1),
        1,
        1,
    );
    let mut group = c.benchmark_group("f3_man_vs_snmp");
    group.sample_size(20);
    for devices in [2usize, 8, 16] {
        let oids = health_oids(16, 4);
        group.bench_with_input(
            BenchmarkId::new("agent_broadcast", devices),
            &devices,
            |b, &devices| {
                let mut w = build_world(devices);
                b.iter(|| w.agent_poll(&oids, true, None).expect("agent poll"));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("centralized_fine", devices),
            &devices,
            |b, &devices| {
                let mut w = build_world(devices);
                b.iter(|| w.centralized_poll(&oids, true).expect("central poll"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_man_vs_snmp);
criterion_main!(benches);
