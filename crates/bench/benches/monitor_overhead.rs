//! E6 — monitor enforcement overhead: interpreter throughput under
//! different gas-slice sizes (smaller slice = more frequent
//! scheduling decisions by the NapletMonitor).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn spin_program() -> naplet_vm::Program {
    naplet_vm::assemble(
        r#"
        .program spin
        .func main locals=1
            int 0
            store 0
        head:
            load 0
            int 20000
            lt
            jmpf done
            load 0
            int 1
            add
            store 0
            jmp head
        done:
            load 0
            halt
        .end
        "#,
    )
    .unwrap()
}

fn bench_monitor(c: &mut Criterion) {
    let program = spin_program();
    let mut group = c.benchmark_group("e6_monitor_overhead");
    for slice in [500u64, 5_000, 50_000, u64::MAX] {
        let label = if slice == u64::MAX {
            "unlimited".to_string()
        } else {
            slice.to_string()
        };
        group.bench_with_input(BenchmarkId::from_parameter(label), &slice, |b, &slice| {
            b.iter(|| {
                let mut image = naplet_vm::VmImage::new(program.clone()).unwrap();
                let mut host = naplet_vm::MockHost::new("bench");
                loop {
                    match naplet_vm::run(&mut image, &mut host, slice).unwrap() {
                        naplet_vm::VmYield::OutOfGas => continue,
                        naplet_vm::VmYield::Done(v) => break v,
                        naplet_vm::VmYield::Travel => unreachable!(),
                    }
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_monitor);
criterion_main!(benches);
