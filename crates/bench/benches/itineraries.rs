//! E3 — itinerary shapes (paper §3 Examples 1-3): full simulated
//! journey per shape.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use naplet_bench::itinerary_experiment;

fn bench_itineraries(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_itineraries");
    group.sample_size(20);
    for shape in ["seq", "par", "par-of-seqs"] {
        group.bench_with_input(BenchmarkId::from_parameter(shape), &shape, |b, &shape| {
            b.iter(|| itinerary_experiment(8, shape, 42));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_itineraries);
criterion_main!(benches);
