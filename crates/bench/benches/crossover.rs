//! E1 — traffic crossover over variables/device: wall time of one
//! round per paradigm as payload grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use naplet_man::{health_oids, ManWorld};
use naplet_net::{Bandwidth, LatencyModel};

fn world() -> ManWorld {
    let mut w = ManWorld::build(
        8,
        4,
        LatencyModel::Constant(2),
        Bandwidth::fast_ethernet(),
        42,
    );
    w.tick_devices(10_000);
    w.warm().expect("warm");
    w
}

fn bench_crossover(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_crossover");
    group.sample_size(15);
    for vars in [4usize, 16, 64] {
        let oids = health_oids(vars, 4);
        group.bench_with_input(BenchmarkId::new("agent_filtering", vars), &vars, |b, _| {
            let mut w = world();
            b.iter(|| w.agent_poll(&oids, true, Some(0)).expect("agent"));
        });
        group.bench_with_input(BenchmarkId::new("central_per_var", vars), &vars, |b, _| {
            let mut w = world();
            b.iter(|| w.centralized_poll(&oids, true).expect("central"));
        });
        group.bench_with_input(BenchmarkId::new("central_batched", vars), &vars, |b, _| {
            let mut w = world();
            b.iter(|| w.centralized_poll(&oids, false).expect("central batched"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_crossover);
criterion_main!(benches);
