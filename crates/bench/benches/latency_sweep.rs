//! E2 — overcoming latency: the interface-table walk (round-trip-bound
//! get-next chain) vs agents walking on site, across link latencies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use naplet_man::ManWorld;
use naplet_net::{Bandwidth, LatencyModel};
use naplet_snmp::oids;

fn world(latency_ms: u64) -> ManWorld {
    let mut w = ManWorld::build(
        4,
        4,
        LatencyModel::Constant(latency_ms),
        Bandwidth::fast_ethernet(),
        42,
    );
    w.tick_devices(10_000);
    w.warm().expect("warm");
    w
}

fn bench_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_latency_walk");
    group.sample_size(10);
    for latency in [1u64, 20, 100] {
        group.bench_with_input(
            BenchmarkId::new("agent_walk", latency),
            &latency,
            |b, &lat| {
                let mut w = world(lat);
                let root = oids::if_entry();
                b.iter(|| w.agent_walk(&root).expect("agent walk"));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("central_walk", latency),
            &latency,
            |b, &lat| {
                let mut w = world(lat);
                let root = oids::if_entry();
                b.iter(|| w.centralized_walk(&root).expect("central walk"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_latency);
criterion_main!(benches);
