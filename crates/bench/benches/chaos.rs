//! Chaos sweep: journey completion and added traffic as frame loss
//! rises, exercising the acknowledged-handoff retry machinery.

use criterion::{criterion_group, criterion_main, Criterion};
use naplet_bench::chaos_experiment;

fn bench_chaos(c: &mut Criterion) {
    let mut group = c.benchmark_group("chaos");
    group.sample_size(10);
    for loss in [0.0, 0.02, 0.05, 0.10] {
        group.bench_function(format!("loss-{loss:.2}"), |b| {
            let mut seed = 1u64;
            b.iter(|| {
                seed += 1;
                let out = chaos_experiment(loss, &[], seed);
                assert_eq!(out.completed, 1, "loss {loss}: {out:?}");
                out.migration_bytes + out.control_bytes
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_chaos);
criterion_main!(benches);
