//! Benchmark-suite correctness tests.
//!
//! Two families:
//!
//! 1. Property tests proving the optimized encode paths (scratch
//!    reuse, CoW snapshots, frame `encode_into`, `encoded_size`
//!    counting) are byte-identical to the naive paths they replace,
//!    for arbitrary naplets, messages, values, and frames. These are
//!    the laws the hot-path optimizations rely on.
//! 2. A determinism regression test: two seeded suite runs emit
//!    identical `BENCH_PR4.json` reports modulo the timing fields.

use bytes::{BufMut, BytesMut};
use proptest::collection::vec;
use proptest::prelude::*;

use naplet_core::clock::Millis;
use naplet_core::codec;
use naplet_core::itinerary::{ActionSpec, Itinerary, Pattern};
use naplet_core::message::{Message, Sender};
use naplet_core::naplet::{AgentKind, Naplet, SharedNaplet};
use naplet_core::tracectx::TraceCtx;
use naplet_core::value::Value;
use naplet_net::{Frame, TrafficClass};

use naplet_bench::{bench_key, PROBE_CODEBASE};
use naplet_bench::{
    compare_reports, normalize_timing, run_suite, Profile, SuiteConfig, TIMING_FIELDS,
};

// ---------------------------------------------------------------------------
// strategies
// ---------------------------------------------------------------------------

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_.-]{0,12}"
}

fn value(depth: u32) -> BoxedStrategy<Value> {
    let leaf = prop_oneof![
        Just(Value::Nil),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        (-1e12f64..1e12).prop_map(Value::Float),
        ".{0,24}".prop_map(Value::Str),
        vec(any::<u8>(), 0..64).prop_map(Value::Bytes),
    ];
    leaf.prop_recursive(depth, 48, 6, |inner| {
        prop_oneof![
            vec(inner.clone(), 0..5).prop_map(Value::List),
            proptest::collection::btree_map("[a-z]{1,6}", inner, 0..5).prop_map(Value::Map),
        ]
    })
    .boxed()
}

/// An arbitrary live naplet: random route, random state entries,
/// random launch instant — the shapes that actually cross the wire.
fn naplet() -> impl Strategy<Value = Naplet> {
    (
        vec(ident(), 1..6),
        vec(("[a-z]{1,8}", value(2)), 0..5),
        1u64..1_000_000,
    )
        .prop_map(|(hosts, entries, ts)| {
            let refs: Vec<&str> = hosts.iter().map(String::as_str).collect();
            let it = Itinerary::new(Pattern::seq_of_hosts(&refs, None))
                .unwrap()
                .with_final_action(ActionSpec::ReportHome);
            let mut nap = Naplet::create(
                &bench_key(),
                "czxu",
                "home",
                Millis(ts),
                PROBE_CODEBASE,
                AgentKind::Native,
                it,
                vec![],
            )
            .unwrap();
            for (k, v) in entries {
                nap.state.set(&k, v);
            }
            nap
        })
}

fn message() -> impl Strategy<Value = Message> {
    (any::<u64>(), ident(), ident(), any::<u64>(), value(2)).prop_map(
        |(seq, owner, home, ts, body)| {
            let to = naplet_core::NapletId::new("czxu", &home, Millis(1)).unwrap();
            Message::user(seq, Sender::Owner(owner), to, Millis(ts), body)
        },
    )
}

fn trace_ctx() -> impl Strategy<Value = TraceCtx> {
    (ident(), ident(), any::<u32>(), any::<u64>()).prop_map(|(journey, origin, hop, seq)| {
        TraceCtx {
            journey,
            origin,
            hop,
            seq,
        }
    })
}

fn frame() -> impl Strategy<Value = Frame> {
    (
        ident(),
        ident(),
        prop_oneof![
            Just(TrafficClass::Migration),
            Just(TrafficClass::Message),
            Just(TrafficClass::Control),
        ],
        vec(any::<u8>(), 0..512),
        proptest::option::of(trace_ctx()),
    )
        .prop_map(|(from, to, class, payload, ctx)| Frame {
            from,
            to,
            class,
            payload: payload.into(),
            ctx,
        })
}

// ---------------------------------------------------------------------------
// encode-path identity laws (the hot-path optimizations)
// ---------------------------------------------------------------------------

proptest! {
    /// The CoW snapshot serializes byte-for-byte like the naplet it
    /// wraps, its cached wire image is that same encoding, and the
    /// counting walk agrees with the real encoder.
    #[test]
    fn shared_naplet_is_byte_identical(nap in naplet()) {
        let naive = codec::to_bytes(&nap).unwrap();
        let shared = SharedNaplet::new(nap.clone());
        prop_assert_eq!(&codec::to_bytes(&shared).unwrap(), &naive);
        let cached = shared.wire_bytes().unwrap();
        prop_assert_eq!(cached.as_slice(), naive.as_slice());
        prop_assert_eq!(shared.wire_size().unwrap(), naive.len() as u64);
        prop_assert_eq!(codec::encoded_size(&nap).unwrap(), naive.len() as u64);
        // and the round trip returns the same agent
        let back: Naplet = codec::from_bytes(&naive).unwrap();
        prop_assert_eq!(back, nap);
    }

    /// Scratch-buffer encoding reuses capacity but must produce the
    /// same bytes as a fresh encode, even when the scratch is dirty.
    #[test]
    fn scratch_encode_is_byte_identical(
        nap in naplet(),
        msg in message(),
        junk in vec(any::<u8>(), 0..64),
    ) {
        let mut scratch = junk;
        codec::to_bytes_into(&nap, &mut scratch).unwrap();
        prop_assert_eq!(&scratch, &codec::to_bytes(&nap).unwrap());
        codec::to_bytes_into(&msg, &mut scratch).unwrap();
        prop_assert_eq!(&scratch, &codec::to_bytes(&msg).unwrap());
        prop_assert_eq!(codec::encoded_size(&msg).unwrap(), scratch.len() as u64);
    }

    /// Appending via `encode_into` writes exactly the bytes `encode`
    /// produces, `wire_len` predicts them, and they decode back.
    #[test]
    fn frame_encode_into_is_byte_identical(f in frame(), junk in vec(any::<u8>(), 0..32)) {
        let fresh = f.encode();
        prop_assert_eq!(fresh.len() as u64, f.wire_len());
        let mut buf = BytesMut::new();
        buf.put_slice(&junk);
        f.encode_into(&mut buf);
        prop_assert_eq!(&buf[junk.len()..], fresh.as_ref());
        let mut stream = BytesMut::from(fresh.as_ref());
        let back = Frame::decode(&mut stream).unwrap().unwrap();
        prop_assert_eq!(back, f);
        prop_assert!(stream.is_empty());
    }

    /// Attaching a trace context must cost nothing when it is absent:
    /// a ctx-less frame encodes byte-for-byte like the pre-tracing
    /// format, and stripping the ctx from a stamped frame recovers
    /// exactly that encoding.
    #[test]
    fn ctx_free_frames_are_byte_stable(f in frame()) {
        let mut bare = f.clone();
        bare.ctx = None;
        let bare_bytes = bare.encode();
        // the class tag byte never carries the ctx flag when absent
        prop_assert_eq!(bare_bytes[4] & 0x80, 0);
        if let Some(ctx) = &f.ctx {
            let stamped = f.encode();
            prop_assert_eq!(stamped[4] & 0x80, 0x80);
            // ctx block size is exactly what wire_len predicts
            let ctx_len = 2 + ctx.journey.len() + 2 + ctx.origin.len() + 4 + 8;
            prop_assert_eq!(stamped.len(), bare_bytes.len() + ctx_len);
        }
    }
}

// ---------------------------------------------------------------------------
// report determinism
// ---------------------------------------------------------------------------

/// Two seeded runs of the sim suite must emit identical reports once
/// the wall-clock fields are normalized away — this is what lets CI
/// compare a fresh run against the committed BENCH_PR4.json at all.
#[test]
fn seeded_suite_reports_are_identical_modulo_timing() {
    let cfg = SuiteConfig {
        profile: Profile::Smoke,
        seed: 7,
        include_live: false,
    };
    let a = run_suite(&cfg).to_json();
    let b = run_suite(&cfg).to_json();
    assert_eq!(normalize_timing(&a), normalize_timing(&b));

    // normalization really did zero every timing field
    for field in TIMING_FIELDS {
        let key = format!("\"{field}\": 0");
        assert!(
            normalize_timing(&a).contains(&key),
            "normalize_timing left `{field}` unzeroed"
        );
    }

    // a report always passes the perf gate against itself
    let checks = compare_reports(&a, &a, 0.0);
    assert!(!checks.is_empty());
    for c in &checks {
        assert!(c.ok, "self-comparison failed: {}", c.line);
    }
}
