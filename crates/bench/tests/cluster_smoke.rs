//! Cluster smoke and chaos tests against real `napletd` processes.
//!
//! These are `#[ignore]`d by default — they spawn OS processes, bind
//! localhost ports and take tens of seconds — and are run explicitly
//! by the CI `cluster-smoke` job (`cargo test -p naplet-bench --test
//! cluster_smoke -- --ignored`) after building the `napletd` binary.
//!
//! Four scenarios, in escalating hostility:
//! 1. **smoke**: a probe rings three daemons and reports home from
//!    each, daemons shut down cleanly on SIGTERM;
//! 2. **kill -9 + journal recovery**: a daemon is SIGKILLed while an
//!    agent is resident, a fresh incarnation replays the write-ahead
//!    journal, and the journey still completes exactly once;
//! 3. **lease re-dispatch**: a daemon is SIGKILLed and *not*
//!    restarted; the home node's lease expires and the orphaned agent
//!    is re-dispatched from its creation record;
//! 4. **directory failover**: the replicated directory's *leader* is
//!    SIGKILLed mid-churn; journeys keep completing exactly once, a
//!    new leader emerges, and the restarted replica catches up to the
//!    same committed log.

use std::time::Duration;

use naplet_bench::cluster::ClusterHarness;
use naplet_core::value::Value;

fn probe(host: &str) -> Value {
    Value::from(format!("probe:{host}"))
}

#[test]
#[ignore = "spawns real napletd processes; run via the CI cluster-smoke job"]
fn ring_journey_crosses_three_live_daemons() {
    let harness =
        ClusterHarness::launch("smoke", &["n1", "n2", "n3"], "lease_ms = 60000\n").unwrap();
    let mut ctl = harness.ctl().unwrap();

    ctl.launch_probe(&["n1", "n2", "n3"]).unwrap();
    let done = ctl.pump_until(Duration::from_secs(30), |c| c.server().reports.len() >= 3);
    let reports = ctl.reports();
    assert!(done, "ring journey stalled; reports so far: {reports:?}");
    assert_eq!(
        reports,
        vec![probe("n1"), probe("n2"), probe("n3")],
        "one report per hop, in itinerary order"
    );

    // visits must not duplicate: exactly one report per hop
    assert_eq!(ctl.server().reports.len(), 3);

    // the ops plane sees the live cluster: bind the spare `mon`
    // station from the same bootstrap file and poll every daemon's
    // status endpoint over TCP
    let mut poller =
        naplet_man::ClusterStatusPoller::connect(harness.config(), naplet_bench::cluster::MON)
            .unwrap();
    let targets: Vec<String> = ["n1", "n2", "n3"].iter().map(|s| s.to_string()).collect();
    let status = poller.poll(&targets, Duration::from_secs(10)).unwrap();
    let hosts: Vec<&str> = status.iter().map(|r| r.host.as_str()).collect();
    assert_eq!(
        hosts,
        vec!["n1", "n2", "n3"],
        "every live daemon must answer a privileged status poll"
    );
    for report in &status {
        assert_eq!(report.parked, 0, "nothing parks on the happy path");
    }

    // SIGTERM must produce clean exits on every daemon
    let n2_log = harness.log("n2");
    for (node, clean) in harness.shutdown() {
        assert!(clean, "napletd[{node}] did not exit cleanly");
    }
    assert!(
        n2_log.contains("serving on"),
        "daemon boot line missing:\n{n2_log}"
    );
}

#[test]
#[ignore = "spawns real napletd processes; run via the CI cluster-smoke job"]
fn cluster_trace_merges_a_ring_journey_across_live_daemons() {
    // a private trace_dir so dump files from other tests (or runs)
    // can't leak into the merge; CI overrides it to keep the dumps as
    // artifacts and feed them to `figures cluster-trace --dumps`
    let keep = std::env::var("NAPLET_CLUSTER_TRACE_DIR").ok();
    let trace_dir = keep
        .clone()
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| {
            std::env::temp_dir().join(format!(
                "naplet-cluster-trace-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ))
        });
    let _ = std::fs::remove_dir_all(&trace_dir);
    let harness = ClusterHarness::launch(
        "trace",
        &["n1", "n2", "n3"],
        &format!(
            "lease_ms = 60000\ntrace_dir = \"{}\"\n",
            trace_dir.display()
        ),
    )
    .unwrap();
    let mut ctl = harness.ctl().unwrap();

    ctl.launch_probe(&["n1", "n2", "n3"]).unwrap();
    let done = ctl.pump_until(Duration::from_secs(30), |c| c.server().reports.len() >= 3);
    assert!(done, "ring journey stalled; reports: {:?}", ctl.reports());

    // --- live fetch: page every daemon's recorder over the wire ----
    let mut poller =
        naplet_man::ClusterTracePoller::connect(harness.config(), naplet_bench::cluster::MON)
            .unwrap();
    let targets: Vec<String> = ["n1", "n2", "n3"].iter().map(|s| s.to_string()).collect();
    let mut segments = poller
        .fetch_traces(&targets, Duration::from_secs(10))
        .unwrap();
    assert_eq!(
        segments.iter().map(|s| s.host.as_str()).collect::<Vec<_>>(),
        vec!["n1", "n2", "n3"],
        "every daemon must serve its flight recorder"
    );
    // the ctl node recorded the launch handshake and the homebound
    // reports; with its segment included, every Transfer send has its
    // matching receive in the merge
    segments.push(naplet_obs::FlatSegment::from_segment(&ctl.trace_segment()));

    let merged = naplet_obs::merge_cluster_trace(&segments, 5_000);
    naplet_obs::validate_chrome_trace(&merged.json).unwrap();
    assert!(
        merged.violations.is_empty(),
        "ring journey must merge causally clean: {:?}",
        merged.violations
    );
    // the journey is visible end to end: migration sends from ctl and
    // every daemon, each carrying a trace context
    let sends_with_ctx = segments
        .iter()
        .flat_map(|s| &s.events)
        .filter(|e| e.name == "wire.send" && e.ctx.is_some())
        .count();
    assert!(
        sends_with_ctx >= 4,
        "expected ctx-stamped sends on every hop, saw {sends_with_ctx}"
    );

    // --- SIGUSR1: a running daemon dumps without disturbing service -
    harness.sigusr1("n1").unwrap();
    let usr1_dump = trace_dir.join("n1.trace.json");
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while !usr1_dump.exists() && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(50));
    }
    let text = std::fs::read_to_string(&usr1_dump).expect("SIGUSR1 must write a dump");
    let seg = naplet_obs::parse_flight_dump(&text).expect("dump must parse");
    assert_eq!(seg.host, "n1");
    assert!(!seg.events.is_empty(), "n1 saw the journey");

    // --- clean shutdown dumps every daemon's recorder --------------
    for (node, clean) in harness.shutdown() {
        assert!(clean, "napletd[{node}] did not exit cleanly");
    }
    let dumped: Vec<naplet_obs::FlatSegment> = ["n1", "n2", "n3"]
        .iter()
        .map(|n| {
            let text = std::fs::read_to_string(trace_dir.join(format!("{n}.trace.json")))
                .unwrap_or_else(|e| panic!("shutdown dump for {n} missing: {e}"));
            naplet_obs::parse_flight_dump(&text).unwrap()
        })
        .collect();
    let merged = naplet_obs::merge_cluster_trace(&dumped, 5_000);
    naplet_obs::validate_chrome_trace(&merged.json).unwrap();
    assert!(merged.event_count > 0);
    if keep.is_none() {
        let _ = std::fs::remove_dir_all(&trace_dir);
    }
}

#[test]
#[ignore = "spawns real napletd processes; run via the CI cluster-smoke job"]
fn panicking_daemon_leaves_a_readable_flight_dump() {
    let bin = naplet_bench::cluster::napletd_bin().unwrap();
    let root = std::env::temp_dir().join(format!("naplet-panic-dump-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();
    let addr = std::net::TcpListener::bind("127.0.0.1:0")
        .unwrap()
        .local_addr()
        .unwrap();
    let toml = format!(
        "[cluster]\ntrace_dir = \"{}\"\n\n[[node]]\nname = \"solo\"\nlisten = \"{addr}\"\n\
         journal = \"{}\"\n",
        root.display(),
        root.join("journal").display(),
    );
    let config = root.join("solo.toml");
    std::fs::write(&config, toml).unwrap();

    // the panic fires on a daemon thread 200 ms in; the hook must
    // write the flight dump before the default handler takes over
    let log = std::fs::File::create(root.join("solo.log")).unwrap();
    let mut child = std::process::Command::new(&bin)
        .arg("--config")
        .arg(&config)
        .arg("--node")
        .arg("solo")
        .env("NAPLETD_PANIC_AFTER_MS", "200")
        .stdin(std::process::Stdio::null())
        .stdout(std::process::Stdio::from(log.try_clone().unwrap()))
        .stderr(std::process::Stdio::from(log))
        .spawn()
        .unwrap();

    let dump = root.join("solo.trace.json");
    let deadline = std::time::Instant::now() + Duration::from_secs(15);
    while !dump.exists() && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(50));
    }
    let _ = child.kill();
    let _ = child.wait();

    let text = std::fs::read_to_string(&dump).expect("panic hook must write a dump");
    let seg = naplet_obs::parse_flight_dump(&text).expect("panic dump must parse");
    assert_eq!(seg.host, "solo");
    let log_text = std::fs::read_to_string(root.join("solo.log")).unwrap_or_default();
    assert!(
        log_text.contains("panic — trace dumped to"),
        "panic hook must announce the dump:\n{log_text}"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
#[ignore = "spawns real napletd processes; run via the CI cluster-smoke job"]
fn kill9_mid_visit_recovers_from_the_journal() {
    // dwell 2s: the agent is resident at n1 long enough to be crashed
    // under; ctl retries absorb the outage
    let mut harness = ClusterHarness::launch(
        "chaos-journal",
        &["n1", "n2"],
        "lease_ms = 60000\ndwell_ms = 2000\n",
    )
    .unwrap();
    let mut ctl = harness.ctl().unwrap();

    ctl.launch_probe(&["n1", "n2"]).unwrap();
    // kill only once (a) the home's directory shows the agent Running
    // at n1 — the arrival registration is sent after n1 journals the
    // admission, so the record is on disk by then — and (b) the n1
    // report has landed at home, so the kill cannot race the report
    // frame out of n1's doomed writer queue (replay suppresses
    // re-running the visit, so a report lost with the process would
    // stay lost — at-most-once by design). The 2s dwell keeps the
    // agent resident well past both.
    let resident = ctl.pump_until(Duration::from_secs(10), |c| {
        c.running_at("n1") && c.reports().contains(&probe("n1"))
    });
    assert!(resident, "agent never became a reported resident at n1");

    harness.kill9("n1").unwrap();
    std::thread::sleep(Duration::from_millis(400));
    harness.restart("n1").unwrap();

    let done = ctl.pump_until(Duration::from_secs(40), |c| c.server().reports.len() >= 2);
    let reports = ctl.reports();
    assert!(
        done,
        "journey never finished after crash; reports: {reports:?}"
    );
    assert_eq!(
        reports,
        vec![probe("n1"), probe("n2")],
        "recovery must neither lose nor duplicate the visit"
    );

    // the second incarnation must have replayed journal state: the
    // resident agent (and/or its dedup entries) were on disk
    let log = harness.log("n1");
    let boots: Vec<&str> = log
        .lines()
        .filter(|l| l.contains("journal replay rehydrated"))
        .collect();
    assert_eq!(boots.len(), 2, "expected two boot lines:\n{log}");
    assert!(
        boots[0].contains("rehydrated 0"),
        "first boot replays nothing: {}",
        boots[0]
    );
    assert!(
        !boots[1].contains("rehydrated 0"),
        "second boot must rehydrate the crashed resident: {}",
        boots[1]
    );

    for (node, clean) in harness.shutdown() {
        assert!(clean, "napletd[{node}] did not exit cleanly");
    }
}

#[test]
#[ignore = "spawns real napletd processes; run via the CI cluster-smoke job"]
fn dead_node_triggers_home_lease_redispatch() {
    // short lease so the home notices the silence quickly; the killed
    // node stays dead, so the re-dispatched agent fails over to
    // parking and the lease counters record the whole story
    let mut harness =
        ClusterHarness::launch("chaos-lease", &["n1"], "lease_ms = 1500\ndwell_ms = 2000\n")
            .unwrap();
    let mut ctl = harness.ctl().unwrap();

    ctl.launch_probe(&["n1"]).unwrap();
    // wait until the agent is provably resident at n1 (dwell 2s),
    // then crash the node for good
    let resident = ctl.pump_until(Duration::from_secs(10), |c| c.running_at("n1"));
    assert!(resident, "agent never registered as resident at n1");
    harness.kill9("n1").unwrap();

    let redispatched = ctl.pump_until(Duration::from_secs(30), |c| {
        c.status().leases_redispatched >= 1
    });
    let status = ctl.status();
    assert!(
        redispatched,
        "home lease never re-dispatched the orphan: {status:?}"
    );
    assert!(
        status.leases_expired >= 1,
        "an expired lease precedes every re-dispatch: {status:?}"
    );

    // outage sends are counted drops on the ctl transport, not panics
    let give_up = ctl.pump_until(Duration::from_secs(30), |c| c.net_stats().dropped >= 1);
    assert!(give_up, "sends into the dead node must count as drops");
}

#[test]
#[ignore = "spawns real napletd processes; run via the CI cluster-smoke job"]
fn directory_leader_kill9_mid_churn_loses_no_registrations() {
    let replicas = ["d1", "d2", "d3"];
    let mut harness = ClusterHarness::launch_with(
        "chaos-directory",
        &["d1", "d2", "d3", "w1"],
        "lease_ms = 60000\n",
        "[directory]\nreplicas = \"d1, d2, d3\"\n",
    )
    .unwrap();
    let mut ctl = harness.ctl().unwrap();
    let mut poller =
        naplet_man::ClusterStatusPoller::connect(harness.config(), naplet_bench::cluster::MON)
            .unwrap();
    let replica_targets: Vec<String> = replicas.iter().map(|s| s.to_string()).collect();

    // wait for the replica set to elect, and learn who leads
    let mut leader = String::new();
    let deadline = std::time::Instant::now() + Duration::from_secs(15);
    while leader.is_empty() && std::time::Instant::now() < deadline {
        let reports = poller
            .poll(&replica_targets, Duration::from_secs(5))
            .unwrap();
        leader = reports
            .iter()
            .filter_map(|r| r.repl.as_ref())
            .find(|r| r.role == "leader")
            .and_then(|r| r.leader.clone())
            .unwrap_or_default();
        if leader.is_empty() {
            std::thread::sleep(Duration::from_millis(200));
        }
    }
    assert!(
        !leader.is_empty(),
        "replica set never elected a leader over TCP"
    );

    // churn before the kill: journeys whose arrival registrations
    // commit through the current leader
    for _ in 0..3 {
        ctl.launch_probe(&["w1"]).unwrap();
    }
    let first_wave = ctl.pump_until(Duration::from_secs(30), |c| c.server().reports.len() >= 3);
    assert!(
        first_wave,
        "pre-kill churn stalled; reports: {:?}",
        ctl.reports()
    );

    // kill -9 the directory leader mid-churn, keep launching while the
    // survivors elect, then restart the corpse
    harness.kill9(&leader).unwrap();
    for _ in 0..3 {
        ctl.launch_probe(&["w1"]).unwrap();
    }
    let second_wave = ctl.pump_until(Duration::from_secs(60), |c| c.server().reports.len() >= 6);
    assert!(
        second_wave,
        "churn through directory failover stalled; reports: {:?}",
        ctl.reports()
    );
    // zero lost registrations: every launched probe reported exactly
    // once — none dropped, none re-dispatched into a duplicate
    assert_eq!(
        ctl.reports(),
        vec![probe("w1"); 6],
        "each probe must report exactly once across the failover"
    );
    harness.restart(&leader).unwrap();

    // the survivors elected exactly one new leader, and the restarted
    // replica rejoins and catches up to the same committed log
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    let converged = loop {
        let reports = poller
            .poll(&replica_targets, Duration::from_secs(5))
            .unwrap();
        let repl: Vec<_> = reports.iter().filter_map(|r| r.repl.as_ref()).collect();
        let leaders = repl.iter().filter(|r| r.role == "leader").count();
        let commits: Vec<u64> = repl.iter().map(|r| r.commit).collect();
        if repl.len() == 3
            && leaders == 1
            && commits.windows(2).all(|w| w[0] == w[1])
            && commits[0] >= 1
        {
            break true;
        }
        if std::time::Instant::now() > deadline {
            eprintln!("final replica status: {repl:?}");
            break false;
        }
        std::thread::sleep(Duration::from_millis(250));
    };
    assert!(
        converged,
        "restarted replica never converged with the new leader"
    );

    for (node, clean) in harness.shutdown() {
        assert!(clean, "napletd[{node}] did not exit cleanly");
    }
}
