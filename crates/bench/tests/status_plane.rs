//! Ops-plane acceptance: the journey watchdog must flag every injected
//! stall with zero clean-run false positives, the alert stream and
//! status reports must be deterministic for a seeded run, and the
//! Prometheus exposition must be a pure function of the metrics.

use naplet_bench::watched_chaos_experiment;
use naplet_obs::prometheus_text;

/// Down-window that strands the probe mid-handoff: s1 goes dark just
/// before the agent's first hop off s0 and stays dark far longer than
/// the watchdog deadline, so only retransmits (non-progress) follow.
const STALL_WINDOW: &[(&str, u64, u64)] = &[("s1", 10, 700)];

/// Progress deadline sitting well above the clean-run inter-progress
/// gap (~15 ms: dwell 5 + latency 2 per leg) and well below the
/// 690 ms down-window.
const DEADLINE_MS: u64 = 200;

#[test]
fn watchdog_flags_an_injected_stall() {
    let out = watched_chaos_experiment(0.0, STALL_WINDOW, DEADLINE_MS, 42);
    assert_eq!(
        out.chaos.completed, 1,
        "the handoff protocol still finishes the journey after the outage"
    );
    assert!(
        !out.alerts.is_empty(),
        "a journey silent for {DEADLINE_MS} ms must raise an alert"
    );
    let orphan = out
        .alerts
        .iter()
        .find(|a| a.orphan)
        .expect("a departure-side stall is an orphan suspicion");
    assert_eq!(
        orphan.last_host, "s0",
        "last progress was the landing request issued at s0"
    );
    assert_eq!(orphan.home, "home");
    assert!(
        out.obs.metrics.counter("alerts.orphan") >= 1,
        "alerts must also land in the metrics registry"
    );
    // the alert is part of the trace stream too
    assert!(
        out.obs.events.iter().any(|e| e.kind.is_alert()),
        "alert events belong to the journey trace"
    );
}

#[test]
fn clean_run_raises_zero_alerts() {
    let out = watched_chaos_experiment(0.0, &[], DEADLINE_MS, 7);
    assert_eq!(out.chaos.completed, 1);
    assert_eq!(out.chaos.retransmits, 0);
    assert!(
        out.alerts.is_empty(),
        "no fault, no alert — got {:?}",
        out.alerts
    );
    assert_eq!(out.obs.metrics.counter("alerts.raised"), 0);
}

#[test]
fn alert_stream_and_status_are_deterministic() {
    let a = watched_chaos_experiment(0.05, STALL_WINDOW, DEADLINE_MS, 42);
    let b = watched_chaos_experiment(0.05, STALL_WINDOW, DEADLINE_MS, 42);
    assert!(!a.alerts.is_empty(), "the chaos run must alert");
    assert_eq!(
        format!("{:?}", a.alerts),
        format!("{:?}", b.alerts),
        "two identical seeded runs must raise a byte-identical alert list"
    );
    let reports_a = naplet_core::codec::to_bytes(&a.status).unwrap();
    let reports_b = naplet_core::codec::to_bytes(&b.status).unwrap();
    assert_eq!(
        reports_a, reports_b,
        "status aggregation must be byte-identical across identical runs"
    );
    assert_eq!(
        prometheus_text(&a.obs.metrics),
        prometheus_text(&b.obs.metrics),
        "the Prometheus page is a pure function of the run"
    );
}

#[test]
fn status_reports_cover_every_server() {
    let out = watched_chaos_experiment(0.0, &[], DEADLINE_MS, 7);
    let hosts: Vec<&str> = out.status.iter().map(|r| r.host.as_str()).collect();
    assert_eq!(hosts, ["home", "s0", "s1", "s2", "s3", "s4", "s5", "s6"]);
    // quiescent space: nothing resident, nothing parked, no journal lag
    for report in &out.status {
        assert!(report.residents.is_empty(), "{}", report.summary());
        assert_eq!(report.parked, 0, "{}", report.summary());
        assert_eq!(report.pending_transfers, 0, "{}", report.summary());
    }
    // one probe instant for the whole space, after the journey ended
    let at = out.status[0].at;
    assert!(at.0 > 0);
    assert!(out.status.iter().all(|r| r.at == at));
}
