//! Observability acceptance: trace exports are deterministic and
//! Chrome-loadable, fault signatures are visible in the metrics
//! histograms, and the event stream is causally consistent — every
//! committed handoff pairs with exactly one admission, retransmits
//! carry attempt ≥ 2, and recovery replay never duplicates a visit
//! span.

use naplet_bench::{traced_chaos_experiment, traced_crash_chaos_experiment};
use naplet_obs::{validate_chrome_trace, TraceEvent, TraceKind};
use proptest::prelude::*;

const WINDOWS: [(&str, u64, u64); 2] = [("s1", 10, 700), ("s3", 10, 2_500)];

#[test]
fn trace_exports_are_byte_identical_across_runs() {
    let a = traced_chaos_experiment(0.05, &WINDOWS, 42);
    let b = traced_chaos_experiment(0.05, &WINDOWS, 42);
    assert!(!a.obs.events.is_empty(), "tracing must record events");
    assert_eq!(
        a.chrome_json, b.chrome_json,
        "two identical runs must export byte-identical traces"
    );
    assert_eq!(a.obs.metrics.render_text(), b.obs.metrics.render_text());
    let entries = validate_chrome_trace(&a.chrome_json).expect("well-formed Chrome trace");
    assert!(
        entries > a.obs.events.len(),
        "process/thread metadata must ride on top of the {} events",
        a.obs.events.len()
    );
}

#[test]
fn retransmitted_handoffs_land_in_higher_rtt_buckets() {
    let clean = traced_chaos_experiment(0.0, &[], 7);
    let lossy = traced_chaos_experiment(0.05, &WINDOWS, 42);
    assert_eq!(clean.obs.metrics.counter("handoff.retransmits"), 0);
    assert!(
        lossy.obs.metrics.counter("handoff.retransmits") >= 1,
        "fault schedule must force at least one retransmit"
    );
    let clean_rtt = clean
        .obs
        .metrics
        .histogram("handoff_rtt_ms")
        .expect("clean run records handoff RTTs");
    let lossy_rtt = lossy
        .obs
        .metrics
        .histogram("handoff_rtt_ms")
        .expect("lossy run records handoff RTTs");
    // a retransmitted handoff pays at least one ~200 ms backoff, so it
    // must populate a strictly higher bucket than any clean handoff
    assert!(
        lossy_rtt.highest_nonzero_bucket().unwrap() > clean_rtt.highest_nonzero_bucket().unwrap(),
        "clean {clean_rtt:?} vs lossy {lossy_rtt:?}"
    );
}

#[test]
fn untraced_runs_keep_metrics_but_no_events() {
    let out = naplet_bench::chaos_experiment(0.0, &[], 7);
    assert_eq!(out.completed, 1, "scenario sanity");
    // the traced twin of the same scenario must agree on the outcome:
    // recording is observational only
    let traced = traced_chaos_experiment(0.0, &[], 7);
    assert_eq!(traced.chaos.completed, out.completed);
    assert_eq!(traced.chaos.visits, out.visits);
    assert_eq!(traced.chaos.migration_bytes, out.migration_bytes);
    assert_eq!(traced.chaos.completion_ms, out.completion_ms);
}

/// The causal-correlation invariants of the event stream.
fn check_causality(events: &[TraceEvent], require_commits: bool) -> Result<(), String> {
    use std::collections::HashMap;
    // (origin host, transfer id) -> non-duplicate admissions
    let mut admitted: HashMap<(String, u64), u32> = HashMap::new();
    let mut commits: Vec<(String, u64)> = Vec::new();
    let mut visit_spans: HashMap<(String, u64), u32> = HashMap::new();
    for e in events {
        match &e.kind {
            TraceKind::TransferReceived {
                origin,
                transfer_id,
                duplicate: false,
            } => {
                *admitted.entry((origin.clone(), *transfer_id)).or_default() += 1;
            }
            TraceKind::HandoffCommit { transfer_id, .. } => {
                commits.push((e.host.clone(), *transfer_id));
            }
            TraceKind::Retransmit { attempt, .. } if *attempt < 2 => {
                return Err(format!("retransmit with attempt {attempt} < 2"));
            }
            TraceKind::VisitEnd { epoch, .. } => {
                let naplet = e.naplet.clone().unwrap_or_default();
                *visit_spans.entry((naplet, *epoch)).or_default() += 1;
            }
            _ => {}
        }
    }
    for key in &commits {
        match admitted.get(key) {
            Some(1) => {}
            Some(n) => return Err(format!("transfer {key:?} admitted {n} times")),
            None => return Err(format!("commit {key:?} without a matching admission")),
        }
    }
    if require_commits {
        for key in admitted.keys() {
            let n = commits.iter().filter(|k| *k == key).count();
            if n != 1 {
                return Err(format!("admission {key:?} committed {n} times"));
            }
        }
    }
    for ((naplet, epoch), n) in &visit_spans {
        if *n > 1 {
            return Err(format!(
                "visit span ({naplet}, epoch {epoch}) recorded {n} times — \
                 recovery replay duplicated a visit"
            ));
        }
    }
    Ok(())
}

proptest! {
    // each case is a full chaos simulation; PROPTEST_CASES scales the
    // count (default 64)
    #[test]
    fn causality_invariants_hold_under_loss(seed in 0u64..1024) {
        let out = traced_chaos_experiment(0.04, &[("s1", 10, 400)], seed);
        prop_assert_eq!(out.chaos.completed, 1, "journey lost (seed {})", seed);
        if let Err(msg) = check_causality(&out.obs.events, true) {
            prop_assert!(false, "seed {}: {}", seed, msg);
        }
    }

    #[test]
    fn causality_invariants_hold_under_crashes(seed in 0u64..1024) {
        // crash instants from the boundary schedule of tests/chaos.rs;
        // under varying seeds they land at arbitrary protocol points
        let crashes = [("s1", 27, Some(40u64)), ("s1", 274, Some(40)), ("s3", 308, Some(40))];
        let (out, obs) = traced_crash_chaos_experiment(0.03, &crashes, None, None, seed);
        prop_assert_eq!(out.chaos.completed, 1, "journey lost (seed {})", seed);
        prop_assert_eq!(out.chaos.duplicate_visits, 0);
        if let Err(msg) = check_causality(&obs.events, true) {
            prop_assert!(false, "seed {}: {}", seed, msg);
        }
    }
}
