//! Observability acceptance: trace exports are deterministic and
//! Chrome-loadable, fault signatures are visible in the metrics
//! histograms, and the event stream is causally consistent — every
//! committed handoff pairs with exactly one admission, retransmits
//! carry attempt ≥ 2, and recovery replay never duplicates a visit
//! span.

use naplet_bench::{traced_chaos_experiment, traced_crash_chaos_experiment};
use naplet_obs::{
    analyze_segments, merge_cluster_trace, validate_chrome_trace, FlatEvent, FlatSegment,
    TraceEvent, TraceKind,
};
use proptest::prelude::*;

const WINDOWS: [(&str, u64, u64); 2] = [("s1", 10, 700), ("s3", 10, 2_500)];

#[test]
fn trace_exports_are_byte_identical_across_runs() {
    let a = traced_chaos_experiment(0.05, &WINDOWS, 42);
    let b = traced_chaos_experiment(0.05, &WINDOWS, 42);
    assert!(!a.obs.events.is_empty(), "tracing must record events");
    assert_eq!(
        a.chrome_json, b.chrome_json,
        "two identical runs must export byte-identical traces"
    );
    assert_eq!(a.obs.metrics.render_text(), b.obs.metrics.render_text());
    let entries = validate_chrome_trace(&a.chrome_json).expect("well-formed Chrome trace");
    assert!(
        entries > a.obs.events.len(),
        "process/thread metadata must ride on top of the {} events",
        a.obs.events.len()
    );
}

#[test]
fn retransmitted_handoffs_land_in_higher_rtt_buckets() {
    let clean = traced_chaos_experiment(0.0, &[], 7);
    let lossy = traced_chaos_experiment(0.05, &WINDOWS, 42);
    assert_eq!(clean.obs.metrics.counter("handoff.retransmits"), 0);
    assert!(
        lossy.obs.metrics.counter("handoff.retransmits") >= 1,
        "fault schedule must force at least one retransmit"
    );
    let clean_rtt = clean
        .obs
        .metrics
        .histogram("handoff_rtt_ms")
        .expect("clean run records handoff RTTs");
    let lossy_rtt = lossy
        .obs
        .metrics
        .histogram("handoff_rtt_ms")
        .expect("lossy run records handoff RTTs");
    // a retransmitted handoff pays at least one ~200 ms backoff, so it
    // must populate a strictly higher bucket than any clean handoff
    assert!(
        lossy_rtt.highest_nonzero_bucket().unwrap() > clean_rtt.highest_nonzero_bucket().unwrap(),
        "clean {clean_rtt:?} vs lossy {lossy_rtt:?}"
    );
}

#[test]
fn untraced_runs_keep_metrics_but_no_events() {
    let out = naplet_bench::chaos_experiment(0.0, &[], 7);
    assert_eq!(out.completed, 1, "scenario sanity");
    // the traced twin of the same scenario must agree on the outcome:
    // recording is observational only
    let traced = traced_chaos_experiment(0.0, &[], 7);
    assert_eq!(traced.chaos.completed, out.completed);
    assert_eq!(traced.chaos.visits, out.visits);
    assert_eq!(traced.chaos.migration_bytes, out.migration_bytes);
    assert_eq!(traced.chaos.completion_ms, out.completion_ms);
}

/// The causal-correlation invariants of the event stream.
fn check_causality(events: &[TraceEvent], require_commits: bool) -> Result<(), String> {
    use std::collections::HashMap;
    // (origin host, transfer id) -> non-duplicate admissions
    let mut admitted: HashMap<(String, u64), u32> = HashMap::new();
    let mut commits: Vec<(String, u64)> = Vec::new();
    let mut visit_spans: HashMap<(String, u64), u32> = HashMap::new();
    for e in events {
        match &e.kind {
            TraceKind::TransferReceived {
                origin,
                transfer_id,
                duplicate: false,
            } => {
                *admitted.entry((origin.clone(), *transfer_id)).or_default() += 1;
            }
            TraceKind::HandoffCommit { transfer_id, .. } => {
                commits.push((e.host.clone(), *transfer_id));
            }
            TraceKind::Retransmit { attempt, .. } if *attempt < 2 => {
                return Err(format!("retransmit with attempt {attempt} < 2"));
            }
            TraceKind::VisitEnd { epoch, .. } => {
                let naplet = e.naplet.clone().unwrap_or_default();
                *visit_spans.entry((naplet, *epoch)).or_default() += 1;
            }
            _ => {}
        }
    }
    for key in &commits {
        match admitted.get(key) {
            Some(1) => {}
            Some(n) => return Err(format!("transfer {key:?} admitted {n} times")),
            None => return Err(format!("commit {key:?} without a matching admission")),
        }
    }
    if require_commits {
        for key in admitted.keys() {
            let n = commits.iter().filter(|k| *k == key).count();
            if n != 1 {
                return Err(format!("admission {key:?} committed {n} times"));
            }
        }
    }
    for ((naplet, epoch), n) in &visit_spans {
        if *n > 1 {
            return Err(format!(
                "visit span ({naplet}, epoch {epoch}) recorded {n} times — \
                 recovery replay duplicated a visit"
            ));
        }
    }
    Ok(())
}

/// Split one sim run's shared event stream into per-host flight
/// segments, the shape the cluster merger consumes. The sim shares one
/// sink across every host, so a synthetic segment per host (complete,
/// epoch 0) is exactly what a per-daemon recorder would have captured.
fn per_host_segments(events: &[TraceEvent]) -> Vec<FlatSegment> {
    let mut hosts: std::collections::BTreeMap<String, Vec<FlatEvent>> = Default::default();
    for event in events {
        hosts
            .entry(event.host.clone())
            .or_default()
            .push(FlatEvent::from_event(event));
    }
    hosts
        .into_iter()
        .map(|(host, events)| FlatSegment {
            host,
            start_seq: 0,
            next_seq: events.len() as u64,
            total: events.len() as u64,
            dropped: 0,
            epoch_unix_ms: 0,
            metrics: None,
            events,
        })
        .collect()
}

proptest! {
    // each case is a full chaos simulation; PROPTEST_CASES scales the
    // count (default 64)
    #[test]
    fn causality_invariants_hold_under_loss(seed in 0u64..1024) {
        let out = traced_chaos_experiment(0.04, &[("s1", 10, 400)], seed);
        prop_assert_eq!(out.chaos.completed, 1, "journey lost (seed {})", seed);
        if let Err(msg) = check_causality(&out.obs.events, true) {
            prop_assert!(false, "seed {}: {}", seed, msg);
        }
    }

    #[test]
    fn causality_invariants_hold_under_crashes(seed in 0u64..1024) {
        // crash instants from the boundary schedule of tests/chaos.rs;
        // under varying seeds they land at arbitrary protocol points
        let crashes = [("s1", 27, Some(40u64)), ("s1", 274, Some(40)), ("s3", 308, Some(40))];
        let (out, obs) = traced_crash_chaos_experiment(0.03, &crashes, None, None, seed);
        prop_assert_eq!(out.chaos.completed, 1, "journey lost (seed {})", seed);
        prop_assert_eq!(out.chaos.duplicate_visits, 0);
        if let Err(msg) = check_causality(&obs.events, true) {
            prop_assert!(false, "seed {}: {}", seed, msg);
        }
    }

    // The wire-context hop counter counts *migrations*, not
    // transmissions: per journey it must be monotone along the causal
    // seq order, contiguous from the first hop, and a retransmitted
    // frame (attempt ≥ 2) must never introduce a hop the journey
    // hasn't already been seen at.
    #[test]
    fn hop_counters_are_monotone_per_journey_under_loss(seed in 0u64..1024) {
        let out = traced_chaos_experiment(0.04, &[("s1", 10, 400)], seed);
        prop_assert_eq!(out.chaos.completed, 1, "journey lost (seed {})", seed);

        let mut per_journey: std::collections::BTreeMap<&str, Vec<(u64, u32, bool)>> =
            Default::default();
        for e in &out.obs.events {
            if let Some(ctx) = &e.ctx {
                let retransmit = matches!(&e.kind, TraceKind::WireSend { attempt, .. } if *attempt >= 2);
                per_journey
                    .entry(ctx.journey.as_str())
                    .or_default()
                    .push((ctx.seq, ctx.hop, retransmit));
            }
        }
        prop_assert!(!per_journey.is_empty(), "run must stamp wire contexts");
        for (journey, mut steps) in per_journey {
            steps.sort_unstable();
            let mut hops_seen = std::collections::BTreeSet::new();
            let mut last_hop = 0u32;
            for (seq, hop, retransmit) in &steps {
                prop_assert!(
                    *hop >= last_hop,
                    "journey {}: hop regressed {} -> {} at seq {} (seed {})",
                    journey, last_hop, hop, seq, seed
                );
                if *retransmit {
                    prop_assert!(
                        hops_seen.contains(hop),
                        "journey {}: retransmit at seq {} minted new hop {} (seed {})",
                        journey, seq, hop, seed
                    );
                }
                hops_seen.insert(*hop);
                last_hop = *hop;
            }
            // contiguous: every hop between first and last was observed
            let lo = *hops_seen.iter().next().unwrap();
            let hi = *hops_seen.iter().next_back().unwrap();
            prop_assert_eq!(
                hops_seen.len() as u32, hi - lo + 1,
                "journey {}: hop gap between {} and {} (seed {})", journey, lo, hi, seed
            );
        }
    }

    // Two identically-seeded sim runs, split into per-host flight
    // segments and stitched by the cluster merger, must produce
    // byte-identical merged traces — and a complete (untruncated)
    // merge of a healthy run must be causally clean even under loss.
    #[test]
    fn merged_sim_traces_are_byte_identical_across_seeded_runs(seed in 0u64..1024) {
        let a = traced_chaos_experiment(0.05, &WINDOWS, seed);
        let b = traced_chaos_experiment(0.05, &WINDOWS, seed);
        let merged_a = merge_cluster_trace(&per_host_segments(&a.obs.events), 0);
        let merged_b = merge_cluster_trace(&per_host_segments(&b.obs.events), 0);
        prop_assert!(
            merged_a.violations.is_empty(),
            "seed {}: merged trace not causally clean: {:?}",
            seed, merged_a.violations
        );
        prop_assert!(merged_a.event_count > 0, "merge must carry events");
        prop_assert_eq!(
            merged_a.json, merged_b.json,
            "seed {}: identically-seeded merges diverged", seed
        );
        validate_chrome_trace(&merged_a.json).expect("merged trace is Chrome-loadable");
    }

    // The critical-path analyzer is as deterministic as the merger it
    // reads: two identically-seeded sim runs must analyze to
    // byte-identical JSON reports.
    #[test]
    fn analyze_output_is_byte_identical_across_seeded_runs(seed in 0u64..1024) {
        let a = traced_chaos_experiment(0.05, &WINDOWS, seed);
        let b = traced_chaos_experiment(0.05, &WINDOWS, seed);
        let report_a = analyze_segments(&per_host_segments(&a.obs.events)).to_json();
        let report_b = analyze_segments(&per_host_segments(&b.obs.events)).to_json();
        prop_assert!(!report_a.is_empty());
        prop_assert_eq!(
            report_a, report_b,
            "seed {}: identically-seeded analyses diverged", seed
        );
    }

    // The segment model is a lossless partition of each journey's
    // timeline: per-journey segment durations must sum to the
    // journey's wall-clock exactly, and the named (non-`other`)
    // segments must claim at least 99% of it.
    #[test]
    fn segment_model_is_a_lossless_partition(seed in 0u64..1024) {
        let out = traced_chaos_experiment(0.05, &WINDOWS, seed);
        let analysis = analyze_segments(&per_host_segments(&out.obs.events));
        prop_assert!(!analysis.journeys.is_empty(), "seed {}: no journeys", seed);
        for j in &analysis.journeys {
            let total: u64 = j.segments.iter().sum();
            prop_assert_eq!(
                total, j.wall_ms,
                "seed {}: journey {} segments sum to {} but wall-clock is {}",
                seed, &j.journey, total, j.wall_ms
            );
            prop_assert!(
                j.attributed_pct_tenths >= 990,
                "seed {}: journey {} only {}.{}% attributed",
                seed, &j.journey,
                j.attributed_pct_tenths / 10, j.attributed_pct_tenths % 10
            );
        }
        prop_assert!(analysis.min_attributed_pct_tenths >= 990);
    }
}
