//! Acceptance test for the reliable-transfer layer: a multi-hop
//! journey must survive frame loss and scheduled host outages without
//! losing or duplicating the agent, and the protocol must add no
//! migration-class traffic when the network is healthy.

use naplet_bench::chaos_experiment;

const ROUTE: [&str; 6] = ["s0", "s1", "s2", "s3", "s4", "home"];

#[test]
fn journey_survives_loss_and_down_windows() {
    // 5% frame loss plus two hosts on the route down for scheduled
    // windows that overlap the agent's arrival
    let out = chaos_experiment(0.05, &[("s1", 10, 700), ("s3", 10, 2_500)], 42);
    assert_eq!(out.completed, 1, "naplet lost: {out:?}");
    assert_eq!(out.visits, ROUTE, "journey must visit every hop in order");
    assert_eq!(
        out.duplicate_visits, 0,
        "retries must never duplicate execution"
    );
    assert_eq!(
        out.parked, 0,
        "all destinations recover within the retry horizon"
    );
    assert!(
        out.retransmits >= 1,
        "retries must be visible in NetStats: {out:?}"
    );
    assert!(
        out.dropped >= 1,
        "the fault schedule must actually drop frames"
    );
}

#[test]
fn healthy_run_adds_no_migration_traffic() {
    let out = chaos_experiment(0.0, &[], 7);
    assert_eq!(out.completed, 1);
    assert_eq!(out.visits, ROUTE);
    assert_eq!(out.duplicate_visits, 0);
    assert_eq!(out.parked, 0);
    assert_eq!(out.retransmits, 0, "no faults, no retries");
    assert_eq!(out.dropped, 0);
    // exactly one Transfer frame per hop: ack/commit overhead rides in
    // the Control class and never inflates migration byte counts
    assert_eq!(out.migrations, 6);
    assert!(
        out.migration_bytes / out.migrations > 0,
        "sanity: transfers are metered"
    );
}

#[test]
fn permanent_outage_parks_instead_of_looping() {
    // s1 never comes back: the Seq itinerary has no fallback, so the
    // naplet must park at s0 with a navigation-log failure instead of
    // retrying forever or vanishing
    let out = chaos_experiment(0.0, &[("s1", 0, u64::MAX)], 11);
    assert_eq!(out.completed, 0);
    assert_eq!(out.parked, 1, "agent must be parked, not lost: {out:?}");
    assert!(out.retransmits >= 1);
}
