//! Acceptance tests for the reliable-transfer layer and the
//! crash-consistency layer on top of it: a multi-hop journey must
//! survive frame loss, scheduled host outages, and whole-server
//! crashes without losing or duplicating the agent, and neither
//! protocol may add traffic when the network is healthy.

use naplet_bench::{chaos_experiment, crash_chaos_experiment};
use naplet_core::itinerary::Pattern;
use naplet_server::LeasePolicy;

const ROUTE: [&str; 6] = ["s0", "s1", "s2", "s3", "s4", "home"];

/// Crash schedule hitting each commit-point window of the handoff, at
/// instants read off a loss-free pilot timeline (latency 2 ms, dwell
/// 5 ms, seed 42):
/// * `s1@27` — destination crash between its LandingReply (t=26) and
///   the Transfer's arrival (t≈31): the grant evaporates with the
///   process, the origin must retry into a cold server;
/// * `s1@274` — origin crash between sending Transfer (t=272) and
///   receiving TransferAck (t=278): recovery must re-drive the
///   in-flight handoff from the journal and the destination must
///   re-ack the duplicate without re-admitting;
/// * `s3@308` — mid-visit crash after the visit effect applied: the
///   journal must rehydrate the naplet and suppress the replay.
const BOUNDARY_CRASHES: [(&str, u64, Option<u64>); 3] = [
    ("s1", 27, Some(40)),
    ("s1", 274, Some(40)),
    ("s3", 308, Some(40)),
];

#[test]
fn journey_survives_loss_and_down_windows() {
    // 5% frame loss plus two hosts on the route down for scheduled
    // windows that overlap the agent's arrival
    let out = chaos_experiment(0.05, &[("s1", 10, 700), ("s3", 10, 2_500)], 42);
    assert_eq!(out.completed, 1, "naplet lost: {out:?}");
    assert_eq!(out.visits, ROUTE, "journey must visit every hop in order");
    assert_eq!(
        out.duplicate_visits, 0,
        "retries must never duplicate execution"
    );
    assert_eq!(
        out.parked, 0,
        "all destinations recover within the retry horizon"
    );
    assert!(
        out.retransmits >= 1,
        "retries must be visible in NetStats: {out:?}"
    );
    assert!(
        out.dropped >= 1,
        "the fault schedule must actually drop frames"
    );
}

#[test]
fn healthy_run_adds_no_migration_traffic() {
    let out = chaos_experiment(0.0, &[], 7);
    assert_eq!(out.completed, 1);
    assert_eq!(out.visits, ROUTE);
    assert_eq!(out.duplicate_visits, 0);
    assert_eq!(out.parked, 0);
    assert_eq!(out.retransmits, 0, "no faults, no retries");
    assert_eq!(out.dropped, 0);
    // exactly one Transfer frame per hop: ack/commit overhead rides in
    // the Control class and never inflates migration byte counts
    assert_eq!(out.migrations, 6);
    assert!(
        out.migration_bytes / out.migrations > 0,
        "sanity: transfers are metered"
    );
}

#[test]
fn journey_survives_crashes_at_protocol_boundaries() {
    // loss-free so the pilot-derived instants land in the exact windows
    let out = crash_chaos_experiment(0.0, &BOUNDARY_CRASHES, None, None, 42);
    assert_eq!(out.chaos.completed, 1, "naplet lost: {out:?}");
    assert_eq!(
        out.chaos.visits, ROUTE,
        "journey must visit every hop in order"
    );
    assert_eq!(
        out.chaos.duplicate_visits, 0,
        "recovery replay must never duplicate a visit effect"
    );
    assert_eq!(out.chaos.parked, 0);
    assert_eq!(out.crashes, 3);
    assert_eq!(out.recoveries, 3);
    assert!(
        out.rehydrated >= 2,
        "s1's in-flight handoff and s3's resident agent must come back \
         from the journal: {out:?}"
    );
    assert!(
        out.replays_suppressed >= 1,
        "s3's applied visit must not re-execute: {out:?}"
    );
    assert!(
        out.handoffs_resumed >= 1,
        "s1's un-acked transfer must be re-driven: {out:?}"
    );
    assert!(out.chaos.retransmits >= 2);
}

#[test]
fn journey_survives_crashes_under_loss() {
    // the same crash schedule with 5% frame loss on top; the instants
    // no longer align with exact protocol windows on the shifted
    // timeline, but the end-to-end invariants must hold regardless
    let out = crash_chaos_experiment(0.05, &BOUNDARY_CRASHES, None, None, 42);
    assert_eq!(out.chaos.completed, 1, "naplet lost: {out:?}");
    assert_eq!(out.chaos.visits, ROUTE);
    assert_eq!(out.chaos.duplicate_visits, 0);
    assert_eq!(out.chaos.parked, 0);
    assert_eq!(out.crashes, 3);
    assert_eq!(out.recoveries, 3);
    assert!(
        out.chaos.dropped >= 1,
        "the loss schedule must actually drop frames"
    );
}

#[test]
fn journaling_and_leases_stay_off_the_wire() {
    // with crashes disabled, a journaling + leasing space must put
    // exactly the same bytes on the wire as the plain PR-1 protocol:
    // durability is local, leases piggyback on existing traffic
    let plain = chaos_experiment(0.0, &[], 7);
    let out = crash_chaos_experiment(0.0, &[], Some(LeasePolicy::default()), None, 7);
    assert_eq!(out.chaos.completed, 1);
    assert_eq!(out.chaos.visits, ROUTE);
    assert_eq!(out.crashes, 0);
    assert_eq!(out.chaos.retransmits, 0);
    assert_eq!(out.chaos.migrations, plain.migrations);
    assert_eq!(
        out.chaos.migration_bytes, plain.migration_bytes,
        "journaling must not inflate migration traffic"
    );
    assert_eq!(
        out.chaos.control_bytes, plain.control_bytes,
        "leases must not add control traffic"
    );
}

#[test]
fn dead_host_agents_recovered_by_lease() {
    // s1 crashes while the agent is resident and never comes back; the
    // journal at s1 is unreachable forever, so only the home-side
    // lease can save the journey. The re-dispatched incarnation walks
    // the route from the start and the Alt fallback steers it around
    // the dead host.
    let route = Pattern::seq(vec![
        Pattern::singleton("s0"),
        Pattern::alt(Pattern::singleton("s1"), Pattern::singleton("s4")),
        Pattern::singleton("s2"),
        Pattern::singleton("s3"),
        Pattern::singleton("home"),
    ]);
    let lease = LeasePolicy {
        duration_ms: 20_000,
        redispatch: true,
        max_redispatches: 1,
    };
    let out = crash_chaos_experiment(0.0, &[("s1", 40, None)], Some(lease), Some(route), 42);
    assert_eq!(out.chaos.completed, 1, "orphan not recovered: {out:?}");
    assert_eq!(
        out.chaos.visits,
        ["s0", "s4", "s2", "s3", "home"],
        "re-dispatched incarnation must route around the dead host"
    );
    assert_eq!(out.chaos.duplicate_visits, 0);
    assert_eq!(out.crashes, 1);
    assert_eq!(out.recoveries, 0, "s1 must never restart in this scenario");
    assert_eq!(out.leases_expired, 1);
    assert_eq!(out.orphans_redispatched, 1);
    assert_eq!(out.lost, 0);
}

#[test]
fn permanent_outage_parks_instead_of_looping() {
    // s1 never comes back: the Seq itinerary has no fallback, so the
    // naplet must park at s0 with a navigation-log failure instead of
    // retrying forever or vanishing
    let out = chaos_experiment(0.0, &[("s1", 0, u64::MAX)], 11);
    assert_eq!(out.completed, 0);
    assert_eq!(out.parked, 1, "agent must be parked, not lost: {out:?}");
    assert!(out.retransmits >= 1);
}
