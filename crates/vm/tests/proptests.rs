//! Property tests for the Naplet VM: the headline invariant is that
//! *execution is oblivious to slicing and migration* — running a
//! program in one go, in random gas slices, or with a full
//! serialize/deserialize between every slice all produce the same
//! result and the same host interaction trace.

use proptest::collection::vec;
use proptest::prelude::*;

use naplet_core::value::Value;
use naplet_vm::{assemble, run, Instr, MockHost, VmImage, VmYield};

fn sum_to_n_src(n: i64) -> String {
    format!(
        r#"
        .program sum
        .func main locals=2
            int 0
            store 0
            int 0
            store 1
        head:
            load 0
            int {n}
            lt
            jmpf done
            load 0
            int 1
            add
            store 0
            load 1
            load 0
            add
            store 1
            jmp head
        done:
            load 1
            halt
        .end
        "#
    )
}

/// Run to completion in one slice.
fn run_straight(src: &str) -> (Value, u64) {
    let p = assemble(src).unwrap();
    let mut img = VmImage::new(p).unwrap();
    let mut host = MockHost::new("h");
    match run(&mut img, &mut host, u64::MAX).unwrap() {
        VmYield::Done(v) => (v, img.gas_used),
        other => panic!("unexpected {other:?}"),
    }
}

/// Run with the given gas slices, serializing the image between every
/// slice (simulated migrations).
fn run_sliced(src: &str, slices: &[u64]) -> (Value, u64) {
    let p = assemble(src).unwrap();
    let mut img = VmImage::new(p).unwrap();
    let mut host = MockHost::new("h");
    let mut i = 0usize;
    loop {
        let budget = slices.get(i).copied().unwrap_or(u64::MAX).max(16);
        i += 1;
        match run(&mut img, &mut host, budget).unwrap() {
            VmYield::Done(v) => return (v, img.gas_used),
            VmYield::OutOfGas => {
                // "migrate": full wire round trip
                img = VmImage::from_wire(&img.to_wire().unwrap()).unwrap();
            }
            VmYield::Travel => panic!("no travel in this program"),
        }
    }
}

proptest! {
    #[test]
    fn slicing_and_migration_preserve_results(
        n in 0i64..200,
        slices in vec(16u64..200, 1..20),
    ) {
        let src = sum_to_n_src(n);
        let (straight, gas_a) = run_straight(&src);
        let (sliced, gas_b) = run_sliced(&src, &slices);
        prop_assert_eq!(straight.clone(), sliced);
        prop_assert_eq!(gas_a, gas_b);
        prop_assert_eq!(straight, Value::Int(n * (n + 1) / 2));
    }

    #[test]
    fn arithmetic_matches_reference(a in -10_000i64..10_000, b in -10_000i64..10_000) {
        prop_assume!(b != 0);
        let src = format!(
            ".program a\n.func main\nint {a}\nint {b}\nadd\nint {a}\nint {b}\nmul\nadd\nint {a}\nint {b}\ndiv\nadd\nint {a}\nint {b}\nmod\nadd\nhalt\n.end\n"
        );
        let (v, _) = run_straight(&src);
        let expect = (a + b) + (a * b) + (a / b) + (a % b);
        prop_assert_eq!(v, Value::Int(expect));
    }

    #[test]
    fn comparison_matches_reference(a in any::<i32>(), b in any::<i32>()) {
        let src = format!(
            ".program c\n.func main\nint {a}\nint {b}\nlt\nhalt\n.end\n"
        );
        let (v, _) = run_straight(&src);
        prop_assert_eq!(v, Value::Bool(a < b));
    }

    #[test]
    fn instr_vectors_codec_round_trip(ops in vec(0u8..10, 0..64)) {
        // map small ints onto a representative instruction alphabet
        let instrs: Vec<Instr> = ops
            .into_iter()
            .map(|o| match o {
                0 => Instr::Nil,
                1 => Instr::Int(-5),
                2 => Instr::Add,
                3 => Instr::Jump(7),
                4 => Instr::Const(3),
                5 => Instr::Call(1, 2),
                6 => Instr::HCall(naplet_vm::HostFn::Report),
                7 => Instr::MakeList(4),
                8 => Instr::Store(9),
                _ => Instr::Halt,
            })
            .collect();
        let bytes = naplet_core::codec::to_bytes(&instrs).unwrap();
        let back: Vec<Instr> = naplet_core::codec::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, instrs);
    }

    #[test]
    fn string_split_join_inverse(parts in vec("[a-z]{1,6}", 1..8)) {
        let joined = parts.join(";");
        let src = format!(
            ".program s\n.func main\nconst \"{joined}\"\nconst \";\"\nssplit\nlen\nhalt\n.end\n"
        );
        let (v, _) = run_straight(&src);
        prop_assert_eq!(v, Value::Int(parts.len() as i64));
    }

    #[test]
    fn gas_used_is_monotone_in_work(n in 1i64..100) {
        let (_, gas_small) = run_straight(&sum_to_n_src(n));
        let (_, gas_big) = run_straight(&sum_to_n_src(n + 50));
        prop_assert!(gas_big > gas_small);
    }
}
