//! # naplet-vm
//!
//! The mobile-code substrate of Naplet-RS: a compact stack-machine VM
//! whose **entire execution state is serializable**.
//!
//! The paper's Java implementation ships agent code as classes via the
//! JVM's dynamic class loader. Rust is statically compiled, so code
//! cannot travel natively; instead, a naplet can carry a [`Program`]
//! for this VM (see `naplet_core::naplet::AgentKind::Vm`). Because the
//! [`VmImage`] serializes stack and call frames too, agents enjoy
//! *strong mobility* — they can yield mid-function with
//! `hcall travel_next`, migrate, and resume on the next host — which
//! exceeds the weak (restart-at-`onStart`) mobility of the original
//! system (see DESIGN.md §2).
//!
//! * [`isa`] — instruction set and host functions
//! * [`program`] — programs, functions, validation
//! * [`image`] — serializable execution images
//! * [`interp`] — the gas-metered interpreter
//! * [`host`] — the host capability interface + adapters
//! * [`asm`] / [`disasm`] — textual assembler / disassembler

#![warn(missing_docs)]

pub mod asm;
pub mod disasm;
pub mod host;
pub mod image;
pub mod interp;
pub mod isa;
pub mod program;

pub use asm::assemble;
pub use disasm::disassemble;
pub use host::{ContextVmHost, MockHost, VmHost};
pub use image::{Frame, VmImage, VmStatus};
pub use interp::{run, VmYield};
pub use isa::{HostFn, Instr};
pub use program::{Function, Program};
