//! The gas-metered interpreter.
//!
//! [`run`] executes an image until it finishes, runs out of its gas
//! budget, or yields for migration. Gas is the NapletMonitor's CPU
//! accounting unit (paper §5.2): the hosting server grants a budget per
//! scheduling slice and decides what to do when it is exhausted
//! (reschedule, or terminate the naplet for exceeding its CPU policy).

use naplet_core::error::{NapletError, Result};
use naplet_core::value::Value;

use crate::host::VmHost;
use crate::image::{Frame, VmImage, VmStatus};
use crate::isa::{HostFn, Instr};

/// Why `run` returned.
#[derive(Debug, Clone, PartialEq)]
pub enum VmYield {
    /// The program completed with this result.
    Done(Value),
    /// The program executed `travel_next`: migrate the image, then
    /// [`VmImage::resume_after_travel`] and `run` again.
    Travel,
    /// The gas budget for this slice is exhausted; the image remains
    /// runnable.
    OutOfGas,
}

fn trap(msg: impl Into<String>) -> NapletError {
    NapletError::VmTrap(msg.into())
}

/// Plain (unquoted) string form used by `StrCat`/`ToStr`.
fn plain_string(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        other => other.to_string(),
    }
}

/// Execute `img` against `host` with a gas budget for this slice.
///
/// Returns a trap error when the program misbehaves (type errors,
/// division by zero, stack underflow, …); the image should then be
/// discarded (its status is left unchanged so post-mortem inspection
/// sees the faulting position).
pub fn run(img: &mut VmImage, host: &mut dyn VmHost, gas_budget: u64) -> Result<VmYield> {
    match img.status {
        VmStatus::Ready => {}
        VmStatus::Done => {
            return Ok(VmYield::Done(img.result.clone().unwrap_or(Value::Nil)));
        }
        VmStatus::AwaitingTravel => {
            return Err(trap("run called on an image awaiting travel"));
        }
    }

    let mut spent: u64 = 0;

    macro_rules! pop {
        () => {
            img.stack.pop().ok_or_else(|| trap("stack underflow"))?
        };
    }

    loop {
        let frame = img
            .frames
            .last()
            .ok_or_else(|| trap("no active frame"))?
            .clone();
        let func = img
            .program
            .funcs
            .get(frame.func as usize)
            .ok_or_else(|| trap("bad function index"))?;
        let ins = func
            .code
            .get(frame.pc as usize)
            .ok_or_else(|| trap(format!("pc {} out of range in `{}`", frame.pc, func.name)))?
            .clone();

        let cost = ins.gas_cost();
        if spent + cost > gas_budget {
            return Ok(VmYield::OutOfGas);
        }
        spent += cost;
        img.gas_used += cost;

        // pc advances before execution; jumps overwrite it
        img.frames.last_mut().unwrap().pc = frame.pc + 1;

        match ins {
            Instr::Const(i) => {
                let v = img
                    .program
                    .consts
                    .get(i as usize)
                    .ok_or_else(|| trap("const index out of range"))?
                    .clone();
                img.stack.push(v);
            }
            Instr::Int(n) => img.stack.push(Value::Int(n)),
            Instr::Nil => img.stack.push(Value::Nil),
            Instr::Bool(b) => img.stack.push(Value::Bool(b)),
            Instr::Dup => {
                let v = img
                    .stack
                    .last()
                    .ok_or_else(|| trap("dup on empty stack"))?
                    .clone();
                img.stack.push(v);
            }
            Instr::Pop => {
                pop!();
            }
            Instr::Swap => {
                let n = img.stack.len();
                if n < 2 {
                    return Err(trap("swap needs two values"));
                }
                img.stack.swap(n - 1, n - 2);
            }
            Instr::Load(i) => {
                let idx = frame.base as usize + i as usize;
                let v = img
                    .stack
                    .get(idx)
                    .ok_or_else(|| trap(format!("local {i} out of frame")))?
                    .clone();
                img.stack.push(v);
            }
            Instr::Store(i) => {
                let v = pop!();
                let idx = frame.base as usize + i as usize;
                let slot = img
                    .stack
                    .get_mut(idx)
                    .ok_or_else(|| trap(format!("local {i} out of frame")))?;
                *slot = v;
            }
            Instr::GLoad(i) => {
                let v = img.globals.get(i as usize).cloned().unwrap_or(Value::Nil);
                img.stack.push(v);
            }
            Instr::GStore(i) => {
                let v = pop!();
                let i = i as usize;
                if img.globals.len() <= i {
                    img.globals.resize(i + 1, Value::Nil);
                }
                img.globals[i] = v;
            }

            Instr::Add | Instr::Sub | Instr::Mul | Instr::Div | Instr::Mod => {
                let b = pop!();
                let a = pop!();
                img.stack.push(arith(&ins, a, b)?);
            }
            Instr::Neg => {
                let v = pop!();
                img.stack.push(match v {
                    Value::Int(i) => Value::Int(
                        i.checked_neg()
                            .ok_or_else(|| trap("integer overflow in neg"))?,
                    ),
                    Value::Float(f) => Value::Float(-f),
                    other => return Err(trap(format!("neg on {}", other.type_name()))),
                });
            }

            Instr::Eq => {
                let b = pop!();
                let a = pop!();
                img.stack.push(Value::Bool(a == b));
            }
            Instr::Ne => {
                let b = pop!();
                let a = pop!();
                img.stack.push(Value::Bool(a != b));
            }
            Instr::Lt | Instr::Le | Instr::Gt | Instr::Ge => {
                let b = pop!();
                let a = pop!();
                img.stack.push(Value::Bool(compare(&ins, &a, &b)?));
            }
            Instr::Not => {
                let v = pop!();
                img.stack.push(Value::Bool(!v.is_truthy()));
            }

            Instr::Jump(t) => img.frames.last_mut().unwrap().pc = t,
            Instr::JumpIfFalse(t) => {
                let v = pop!();
                if !v.is_truthy() {
                    img.frames.last_mut().unwrap().pc = t;
                }
            }
            Instr::JumpIfTrue(t) => {
                let v = pop!();
                if v.is_truthy() {
                    img.frames.last_mut().unwrap().pc = t;
                }
            }

            Instr::Call(fi, argc) => {
                let callee = img
                    .program
                    .funcs
                    .get(fi as usize)
                    .ok_or_else(|| trap("call target out of range"))?;
                if callee.arity != argc {
                    return Err(trap(format!(
                        "call `{}`: arity {} got {argc}",
                        callee.name, callee.arity
                    )));
                }
                if img.stack.len() < argc as usize {
                    return Err(trap("call: missing arguments"));
                }
                let base = (img.stack.len() - argc as usize) as u32;
                let extra = callee.locals - argc;
                for _ in 0..extra {
                    img.stack.push(Value::Nil);
                }
                img.frames.push(Frame {
                    func: fi,
                    pc: 0,
                    base,
                });
            }
            Instr::Ret => {
                let rv = pop!();
                let done_frame = img.frames.pop().ok_or_else(|| trap("ret without frame"))?;
                img.stack.truncate(done_frame.base as usize);
                if img.frames.is_empty() {
                    img.status = VmStatus::Done;
                    img.result = Some(rv.clone());
                    return Ok(VmYield::Done(rv));
                }
                img.stack.push(rv);
            }

            Instr::MakeList(n) => {
                let n = n as usize;
                if img.stack.len() < n {
                    return Err(trap("make_list: missing elements"));
                }
                let items = img.stack.split_off(img.stack.len() - n);
                img.stack.push(Value::List(items));
            }
            Instr::ListGet => {
                let idx = pop!()
                    .as_int()
                    .map_err(|_| trap("list_get: index not int"))?;
                let list = pop!();
                let l = list.as_list().map_err(|_| trap("list_get: not a list"))?;
                let v = usize::try_from(idx)
                    .ok()
                    .and_then(|i| l.get(i))
                    .ok_or_else(|| trap(format!("list index {idx} out of range ({})", l.len())))?;
                img.stack.push(v.clone());
            }
            Instr::ListPush => {
                let v = pop!();
                let mut list = pop!();
                match &mut list {
                    Value::List(l) => l.push(v),
                    other => return Err(trap(format!("list_push on {}", other.type_name()))),
                }
                img.stack.push(list);
            }
            Instr::Len => {
                let v = pop!();
                let n = match &v {
                    Value::List(l) => l.len(),
                    Value::Map(m) => m.len(),
                    Value::Str(s) => s.chars().count(),
                    Value::Bytes(b) => b.len(),
                    other => return Err(trap(format!("len on {}", other.type_name()))),
                };
                img.stack.push(Value::Int(n as i64));
            }
            Instr::MakeMap(n) => {
                let n = n as usize;
                if img.stack.len() < 2 * n {
                    return Err(trap("make_map: missing entries"));
                }
                let mut flat = img.stack.split_off(img.stack.len() - 2 * n);
                let mut map = std::collections::BTreeMap::new();
                while !flat.is_empty() {
                    let k = flat.remove(0);
                    let v = flat.remove(0);
                    let key = k.as_str().map_err(|_| trap("make_map: key not str"))?;
                    map.insert(key.to_string(), v);
                }
                img.stack.push(Value::Map(map));
            }
            Instr::MapGet => {
                let k = pop!();
                let m = pop!();
                let key = k.as_str().map_err(|_| trap("map_get: key not str"))?;
                let map = m.as_map().map_err(|_| trap("map_get: not a map"))?;
                img.stack.push(map.get(key).cloned().unwrap_or(Value::Nil));
            }
            Instr::MapSet => {
                let v = pop!();
                let k = pop!();
                let mut m = pop!();
                let key = k
                    .as_str()
                    .map_err(|_| trap("map_set: key not str"))?
                    .to_string();
                m.as_map_mut()
                    .map_err(|_| trap("map_set: not a map"))?
                    .insert(key, v);
                img.stack.push(m);
            }

            Instr::StrCat => {
                let b = pop!();
                let a = pop!();
                img.stack
                    .push(Value::Str(plain_string(&a) + &plain_string(&b)));
            }
            Instr::ToStr => {
                let v = pop!();
                img.stack.push(Value::Str(plain_string(&v)));
            }
            Instr::ToInt => {
                let v = pop!();
                let n = match &v {
                    Value::Int(i) => *i,
                    Value::Float(f) => *f as i64,
                    Value::Bool(b) => *b as i64,
                    Value::Str(s) => s
                        .trim()
                        .parse::<i64>()
                        .map_err(|_| trap(format!("to_int: cannot parse `{s}`")))?,
                    other => return Err(trap(format!("to_int on {}", other.type_name()))),
                };
                img.stack.push(Value::Int(n));
            }
            Instr::StrSplit => {
                let sep = pop!();
                let s = pop!();
                let sep = sep.as_str().map_err(|_| trap("str_split: sep not str"))?;
                let s = s.as_str().map_err(|_| trap("str_split: not str"))?;
                let parts: Vec<Value> = if sep.is_empty() {
                    s.chars().map(|c| Value::Str(c.to_string())).collect()
                } else {
                    s.split(sep).map(|p| Value::Str(p.to_string())).collect()
                };
                img.stack.push(Value::List(parts));
            }

            Instr::HCall(HostFn::TravelNext) => {
                img.status = VmStatus::AwaitingTravel;
                return Ok(VmYield::Travel);
            }
            Instr::HCall(hf) => {
                let result = exec_hostcall(img, host, hf)?;
                img.stack.push(result);
            }
            Instr::Halt => {
                let rv = img.stack.pop().unwrap_or(Value::Nil);
                img.status = VmStatus::Done;
                img.result = Some(rv.clone());
                return Ok(VmYield::Done(rv));
            }
            Instr::Nop => {}
        }
    }
}

fn exec_hostcall(img: &mut VmImage, host: &mut dyn VmHost, hf: HostFn) -> Result<Value> {
    let mut pop = || {
        img.stack
            .pop()
            .ok_or_else(|| trap(format!("hostcall {}: stack underflow", hf.mnemonic())))
    };
    Ok(match hf {
        HostFn::StateGet => {
            let key = pop()?;
            host.state_get(key.as_str().map_err(|_| trap("state_get: key not str"))?)?
        }
        HostFn::StateSet | HostFn::StateSetPublic => {
            let value = pop()?;
            let key = pop()?;
            host.state_set(
                key.as_str().map_err(|_| trap("state_set: key not str"))?,
                value,
                hf == HostFn::StateSetPublic,
            )?;
            Value::Nil
        }
        HostFn::HostName => Value::Str(host.host_name()),
        HostFn::AgentId => Value::Str(host.agent_id()),
        HostFn::Hops => Value::Int(host.hops()),
        HostFn::Now => Value::Int(host.now()),
        HostFn::Log => {
            let line = pop()?;
            host.log(&plain_string(&line));
            Value::Nil
        }
        HostFn::SvcCall => {
            let args = pop()?;
            let name = pop()?;
            host.svc_call(
                name.as_str().map_err(|_| trap("svc_call: name not str"))?,
                args,
            )?
        }
        HostFn::ChanExchange => {
            let request = pop()?;
            let service = pop()?;
            host.chan_exchange(
                service
                    .as_str()
                    .map_err(|_| trap("chan_exchange: service not str"))?,
                request,
            )?
        }
        HostFn::MsgSend => {
            let value = pop()?;
            let peer = pop()?;
            let ok = host.msg_send(
                peer.as_str().map_err(|_| trap("msg_send: peer not str"))?,
                value,
            )?;
            Value::Bool(ok)
        }
        HostFn::MsgRecv => host.msg_recv()?,
        HostFn::Peers => Value::List(host.peers().into_iter().map(Value::Str).collect()),
        HostFn::Report => {
            let v = pop()?;
            host.report(v)?;
            Value::Nil
        }
        HostFn::TravelNext => unreachable!("handled by the interpreter loop"),
    })
}

fn arith(op: &Instr, a: Value, b: Value) -> Result<Value> {
    use Value::{Float, Int};
    match (op, a, b) {
        (Instr::Add, Int(x), Int(y)) => Ok(Int(x
            .checked_add(y)
            .ok_or_else(|| trap("int overflow in add"))?)),
        (Instr::Sub, Int(x), Int(y)) => Ok(Int(x
            .checked_sub(y)
            .ok_or_else(|| trap("int overflow in sub"))?)),
        (Instr::Mul, Int(x), Int(y)) => Ok(Int(x
            .checked_mul(y)
            .ok_or_else(|| trap("int overflow in mul"))?)),
        (Instr::Div, Int(_), Int(0)) => Err(trap("division by zero")),
        (Instr::Div, Int(x), Int(y)) => Ok(Int(x
            .checked_div(y)
            .ok_or_else(|| trap("int overflow in div"))?)),
        (Instr::Mod, Int(_), Int(0)) => Err(trap("modulo by zero")),
        (Instr::Mod, Int(x), Int(y)) => Ok(Int(x
            .checked_rem(y)
            .ok_or_else(|| trap("int overflow in mod"))?)),
        (Instr::Mod, a, b) => Err(trap(format!(
            "mod on {} and {}",
            a.type_name(),
            b.type_name()
        ))),
        (op, a, b) => {
            // float path (with int widening)
            let x = a
                .as_float()
                .map_err(|_| trap(format!("{op:?} on {}", a.type_name())))?;
            let y = b
                .as_float()
                .map_err(|_| trap(format!("{op:?} on {}", b.type_name())))?;
            Ok(Float(match op {
                Instr::Add => x + y,
                Instr::Sub => x - y,
                Instr::Mul => x * y,
                Instr::Div => {
                    if y == 0.0 {
                        return Err(trap("division by zero"));
                    }
                    x / y
                }
                _ => unreachable!(),
            }))
        }
    }
}

fn compare(op: &Instr, a: &Value, b: &Value) -> Result<bool> {
    let ord = match (a, b) {
        (Value::Str(x), Value::Str(y)) => x.cmp(y),
        _ => {
            let x = a
                .as_float()
                .map_err(|_| trap(format!("compare on {}", a.type_name())))?;
            let y = b
                .as_float()
                .map_err(|_| trap(format!("compare on {}", b.type_name())))?;
            x.partial_cmp(&y).ok_or_else(|| trap("compare on NaN"))?
        }
    };
    Ok(match op {
        Instr::Lt => ord.is_lt(),
        Instr::Le => ord.is_le(),
        Instr::Gt => ord.is_gt(),
        Instr::Ge => ord.is_ge(),
        _ => unreachable!(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::MockHost;
    use crate::program::{Function, Program};

    fn prog(consts: Vec<Value>, code: Vec<Instr>) -> Program {
        Program {
            name: "t".into(),
            consts,
            funcs: vec![Function {
                name: "main".into(),
                arity: 0,
                locals: 4,
                code,
            }],
            entry: 0,
            globals: 4,
        }
    }

    fn run_to_done(p: Program) -> Value {
        let mut img = VmImage::new(p).unwrap();
        let mut host = MockHost::new("test");
        match run(&mut img, &mut host, u64::MAX).unwrap() {
            VmYield::Done(v) => v,
            other => panic!("expected done, got {other:?}"),
        }
    }

    #[test]
    fn arithmetic_and_halt() {
        let v = run_to_done(prog(
            vec![],
            vec![Instr::Int(20), Instr::Int(22), Instr::Add, Instr::Halt],
        ));
        assert_eq!(v, Value::Int(42));
    }

    #[test]
    fn float_widening() {
        let v = run_to_done(prog(
            vec![Value::Float(0.5)],
            vec![Instr::Int(3), Instr::Const(0), Instr::Mul, Instr::Halt],
        ));
        assert_eq!(v, Value::Float(1.5));
    }

    #[test]
    fn division_by_zero_traps() {
        let p = prog(
            vec![],
            vec![Instr::Int(1), Instr::Int(0), Instr::Div, Instr::Halt],
        );
        let mut img = VmImage::new(p).unwrap();
        let mut host = MockHost::new("t");
        let err = run(&mut img, &mut host, u64::MAX).unwrap_err();
        assert_eq!(err.kind(), "vm-trap");
    }

    #[test]
    fn int_overflow_traps() {
        let p = prog(
            vec![],
            vec![Instr::Int(i64::MAX), Instr::Int(1), Instr::Add, Instr::Halt],
        );
        let mut img = VmImage::new(p).unwrap();
        let mut host = MockHost::new("t");
        assert!(run(&mut img, &mut host, u64::MAX).is_err());
    }

    #[test]
    fn locals_and_loop() {
        // sum 1..=5 via a loop: local0 = i, local1 = acc
        let code = vec![
            Instr::Int(0),
            Instr::Store(0),
            Instr::Int(0),
            Instr::Store(1),
            // loop head (4): i < 5 ?
            Instr::Load(0),
            Instr::Int(5),
            Instr::Lt,
            Instr::JumpIfFalse(16),
            // i += 1; acc += i
            Instr::Load(0),
            Instr::Int(1),
            Instr::Add,
            Instr::Store(0),
            Instr::Load(1),
            Instr::Load(0),
            Instr::Add,
            Instr::Store(1),
            // (16 is exit) jump head
            Instr::Jump(4),
            // exit
        ];
        // fix: exit label index
        let mut code = code;
        code.push(Instr::Load(1)); // 17
        code.push(Instr::Halt); // 18
                                // adjust: JumpIfFalse target should be 17 (Load(1)) and Jump(4) at 16
        code[7] = Instr::JumpIfFalse(17);
        assert_eq!(run_to_done(prog(vec![], code)), Value::Int(15));
    }

    #[test]
    fn function_calls_and_recursion() {
        // fib(n) = n < 2 ? n : fib(n-1) + fib(n-2)
        let fib = Function {
            name: "fib".into(),
            arity: 1,
            locals: 1,
            code: vec![
                Instr::Load(0),
                Instr::Int(2),
                Instr::Lt,
                Instr::JumpIfFalse(6),
                Instr::Load(0),
                Instr::Ret,
                Instr::Load(0),
                Instr::Int(1),
                Instr::Sub,
                Instr::Call(1, 1),
                Instr::Load(0),
                Instr::Int(2),
                Instr::Sub,
                Instr::Call(1, 1),
                Instr::Add,
                Instr::Ret,
            ],
        };
        let main = Function {
            name: "main".into(),
            arity: 0,
            locals: 0,
            code: vec![Instr::Int(10), Instr::Call(1, 1), Instr::Halt],
        };
        let p = Program {
            name: "fib".into(),
            consts: vec![],
            funcs: vec![main, fib],
            entry: 0,
            globals: 0,
        };
        p.validate().unwrap();
        let mut img = VmImage::new(p).unwrap();
        let mut host = MockHost::new("t");
        let VmYield::Done(v) = run(&mut img, &mut host, u64::MAX).unwrap() else {
            panic!()
        };
        assert_eq!(v, Value::Int(55));
    }

    #[test]
    fn globals_persist_across_functions() {
        let setter = Function {
            name: "setter".into(),
            arity: 0,
            locals: 0,
            code: vec![Instr::Int(7), Instr::GStore(2), Instr::Nil, Instr::Ret],
        };
        let main = Function {
            name: "main".into(),
            arity: 0,
            locals: 0,
            code: vec![Instr::Call(1, 0), Instr::Pop, Instr::GLoad(2), Instr::Halt],
        };
        let p = Program {
            name: "g".into(),
            consts: vec![],
            funcs: vec![main, setter],
            entry: 0,
            globals: 3,
        };
        let mut img = VmImage::new(p).unwrap();
        let mut host = MockHost::new("t");
        let VmYield::Done(v) = run(&mut img, &mut host, u64::MAX).unwrap() else {
            panic!()
        };
        assert_eq!(v, Value::Int(7));
    }

    #[test]
    fn lists_and_maps() {
        let v = run_to_done(prog(
            vec![Value::from("k")],
            vec![
                Instr::Int(1),
                Instr::Int(2),
                Instr::MakeList(2),
                Instr::Int(3),
                Instr::ListPush,
                Instr::Dup,
                Instr::Len,
                Instr::Store(0), // len == 3
                Instr::Int(2),
                Instr::ListGet, // == 3
                Instr::Store(1),
                Instr::Const(0),
                Instr::Load(0),
                Instr::MakeMap(1),
                Instr::Const(0),
                Instr::Load(1),
                Instr::MapSet, // {k: 3}
                Instr::Const(0),
                Instr::MapGet,
                Instr::Halt,
            ],
        ));
        assert_eq!(v, Value::Int(3));
    }

    #[test]
    fn string_ops() {
        let v = run_to_done(prog(
            vec![Value::from("a;b;c"), Value::from(";")],
            vec![
                Instr::Const(0),
                Instr::Const(1),
                Instr::StrSplit,
                Instr::Int(1),
                Instr::ListGet,
                Instr::Const(1),
                Instr::StrCat,
                Instr::Int(42),
                Instr::ToStr,
                Instr::StrCat,
                Instr::Halt,
            ],
        ));
        assert_eq!(v, Value::from("b;42"));
    }

    #[test]
    fn to_int_parses() {
        let v = run_to_done(prog(
            vec![Value::from(" 17 ")],
            vec![Instr::Const(0), Instr::ToInt, Instr::Halt],
        ));
        assert_eq!(v, Value::Int(17));
    }

    #[test]
    fn comparisons_and_logic() {
        let v = run_to_done(prog(
            vec![Value::from("abc"), Value::from("abd")],
            vec![
                Instr::Const(0),
                Instr::Const(1),
                Instr::Lt,  // true
                Instr::Not, // false
                Instr::Halt,
            ],
        ));
        assert_eq!(v, Value::Bool(false));
    }

    #[test]
    fn hostcalls_route_to_host() {
        let p = prog(
            vec![
                Value::from("key"),
                Value::from("logged"),
                Value::from("double"),
            ],
            vec![
                Instr::Const(0),
                Instr::Int(5),
                Instr::HCall(HostFn::StateSet),
                Instr::Pop,
                Instr::Const(1),
                Instr::HCall(HostFn::Log),
                Instr::Pop,
                Instr::Const(2),
                Instr::Int(21),
                Instr::HCall(HostFn::SvcCall),
                Instr::HCall(HostFn::Report),
                Instr::Pop,
                Instr::Const(0),
                Instr::HCall(HostFn::StateGet),
                Instr::Halt,
            ],
        );
        let mut img = VmImage::new(p).unwrap();
        let mut host =
            MockHost::new("srv").with_service("double", |v| Ok(Value::Int(v.as_int()? * 2)));
        let VmYield::Done(v) = run(&mut img, &mut host, u64::MAX).unwrap() else {
            panic!()
        };
        assert_eq!(v, Value::Int(5));
        assert_eq!(host.logs, vec!["logged"]);
        assert_eq!(host.reports, vec![Value::Int(42)]);
        assert_eq!(host.state.get("key"), Some(&Value::Int(5)));
    }

    #[test]
    fn out_of_gas_is_resumable() {
        // long loop; run with small slices until done
        let code = vec![
            Instr::Int(0),
            Instr::Store(0),
            Instr::Load(0),
            Instr::Int(1000),
            Instr::Lt,
            Instr::JumpIfFalse(11),
            Instr::Load(0),
            Instr::Int(1),
            Instr::Add,
            Instr::Store(0),
            Instr::Jump(2),
            Instr::Load(0),
            Instr::Halt,
        ];
        let mut img = VmImage::new(prog(vec![], code)).unwrap();
        let mut host = MockHost::new("t");
        let mut slices = 0;
        loop {
            match run(&mut img, &mut host, 100).unwrap() {
                VmYield::OutOfGas => slices += 1,
                VmYield::Done(v) => {
                    assert_eq!(v, Value::Int(1000));
                    break;
                }
                VmYield::Travel => panic!("no travel here"),
            }
            assert!(slices < 1000, "not making progress");
        }
        assert!(slices > 10, "gas limit should have split execution");
        assert!(img.gas_used >= 1000);
    }

    #[test]
    fn travel_yield_and_resume_mid_function() {
        // loop: h = travel_next(); while h != nil { log(h) }
        let code = vec![
            Instr::HCall(HostFn::TravelNext), // 0
            Instr::Dup,                       // 1
            Instr::JumpIfFalse(6),            // 2 → exit when nil
            Instr::HCall(HostFn::Log),        // 3 (consumes host name)
            Instr::Pop,                       // 4
            Instr::Jump(0),                   // 5
            Instr::Pop,                       // 6 (the nil)
            Instr::Int(99),                   // 7
            Instr::Halt,                      // 8
        ];
        let mut img = VmImage::new(prog(vec![], code)).unwrap();
        let mut host = MockHost::new("h0");

        // first slice: yields for travel
        assert_eq!(run(&mut img, &mut host, u64::MAX).unwrap(), VmYield::Travel);

        // simulate migration: serialize → deserialize → resume at h1
        let mut img = VmImage::from_wire(&img.to_wire().unwrap()).unwrap();
        img.resume_after_travel(Some("h1")).unwrap();
        let mut host = MockHost::new("h1");
        assert_eq!(run(&mut img, &mut host, u64::MAX).unwrap(), VmYield::Travel);
        assert_eq!(host.logs, vec!["h1"]);

        // journey ends
        img.resume_after_travel(None).unwrap();
        let VmYield::Done(v) = run(&mut img, &mut host, u64::MAX).unwrap() else {
            panic!()
        };
        assert_eq!(v, Value::Int(99));
    }

    #[test]
    fn done_image_returns_done_again() {
        let mut img = VmImage::new(prog(vec![], vec![Instr::Int(1), Instr::Halt])).unwrap();
        let mut host = MockHost::new("t");
        assert_eq!(
            run(&mut img, &mut host, u64::MAX).unwrap(),
            VmYield::Done(Value::Int(1))
        );
        assert_eq!(
            run(&mut img, &mut host, u64::MAX).unwrap(),
            VmYield::Done(Value::Int(1))
        );
    }

    #[test]
    fn awaiting_travel_image_rejects_run() {
        let mut img = VmImage::new(prog(
            vec![],
            vec![Instr::HCall(HostFn::TravelNext), Instr::Halt],
        ))
        .unwrap();
        let mut host = MockHost::new("t");
        assert_eq!(run(&mut img, &mut host, u64::MAX).unwrap(), VmYield::Travel);
        assert!(run(&mut img, &mut host, u64::MAX).is_err());
    }

    #[test]
    fn stack_underflow_traps() {
        let mut img = VmImage::new(prog(vec![], vec![Instr::Add, Instr::Halt])).unwrap();
        let mut host = MockHost::new("t");
        assert!(run(&mut img, &mut host, u64::MAX).is_err());
    }

    #[test]
    fn msg_send_recv_roundtrip_via_host() {
        let p = prog(
            vec![Value::from("peer@p:0")],
            vec![
                Instr::Const(0),
                Instr::Int(5),
                Instr::HCall(HostFn::MsgSend),
                Instr::Pop,
                Instr::HCall(HostFn::MsgRecv),
                Instr::Halt,
            ],
        );
        let mut img = VmImage::new(p).unwrap();
        let mut host = MockHost::new("t");
        host.inbox.push(Value::Int(31));
        let VmYield::Done(v) = run(&mut img, &mut host, u64::MAX).unwrap() else {
            panic!()
        };
        assert_eq!(v, Value::Int(31));
        assert_eq!(host.sent, vec![("peer@p:0".to_string(), Value::Int(5))]);
    }
}
