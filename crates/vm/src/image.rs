//! Serializable VM execution images — the strong-mobility substrate.
//!
//! A [`VmImage`] is the *entire* execution state of a mobile program:
//! code, globals, operand stack and call frames. Because it is plain
//! serializable data, a naplet can carry it across hosts and resume
//! mid-function — stronger mobility than the paper's Java system,
//! which can only restart agents at `onStart()` after each hop
//! (DESIGN.md §2).

use serde::{Deserialize, Serialize};

use naplet_core::error::{NapletError, Result};
use naplet_core::value::Value;

use crate::program::Program;

/// One call frame. `base` is the stack index of local slot 0.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Frame {
    /// Function index into `program.funcs`.
    pub func: u16,
    /// Next instruction index within the function.
    pub pc: u32,
    /// Stack index where this frame's locals start.
    pub base: u32,
}

/// Execution status of an image.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum VmStatus {
    /// Runnable: `run` may be called.
    Ready,
    /// Suspended at a `travel_next` host call; migrate the image, then
    /// call [`VmImage::resume_after_travel`].
    AwaitingTravel,
    /// The program finished with a result.
    Done,
}

/// Complete, serializable execution state of a mobile program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VmImage {
    /// The carried code.
    pub program: Program,
    /// Global slots.
    pub globals: Vec<Value>,
    /// Operand + locals stack.
    pub stack: Vec<Value>,
    /// Call frames (innermost last).
    pub frames: Vec<Frame>,
    /// Current status.
    pub status: VmStatus,
    /// Program result once `status == Done`.
    pub result: Option<Value>,
    /// Total gas consumed over the image's lifetime (all hosts).
    pub gas_used: u64,
}

impl VmImage {
    /// Build a fresh image positioned at the entry function.
    pub fn new(program: Program) -> Result<VmImage> {
        program.validate()?;
        let entry = program.entry_func();
        let stack = vec![Value::Nil; entry.locals as usize];
        let frames = vec![Frame {
            func: program.entry,
            pc: 0,
            base: 0,
        }];
        Ok(VmImage {
            program,
            globals: vec![],
            stack,
            frames,
            status: VmStatus::Ready,
            result: None,
            gas_used: 0,
        })
    }

    /// Resume after a migration that was requested by `travel_next`:
    /// push the new host name (or nil when the journey completed) as
    /// the host call's return value and become runnable again.
    pub fn resume_after_travel(&mut self, new_host: Option<&str>) -> Result<()> {
        if self.status != VmStatus::AwaitingTravel {
            return Err(NapletError::VmTrap(
                "resume_after_travel on an image that was not awaiting travel".into(),
            ));
        }
        self.stack.push(match new_host {
            Some(h) => Value::Str(h.to_string()),
            None => Value::Nil,
        });
        self.status = VmStatus::Ready;
        Ok(())
    }

    /// Is the program finished?
    pub fn is_done(&self) -> bool {
        self.status == VmStatus::Done
    }

    /// Serialize for migration.
    pub fn to_wire(&self) -> Result<Vec<u8>> {
        naplet_core::codec::to_bytes(self)
    }

    /// Deserialize a migrated image.
    pub fn from_wire(bytes: &[u8]) -> Result<VmImage> {
        naplet_core::codec::from_bytes(bytes)
    }

    /// Wire size in bytes (migration cost of carrying this code+state).
    pub fn wire_size(&self) -> u64 {
        naplet_core::codec::encoded_size(self).unwrap_or(u64::MAX)
    }

    /// Approximate live memory footprint for monitor budgeting.
    pub fn memory_footprint(&self) -> u64 {
        let stack: u64 = self.stack.iter().map(Value::deep_size).sum();
        let globals: u64 = self.globals.iter().map(Value::deep_size).sum();
        stack + globals + 64 * self.frames.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Instr;
    use crate::program::Function;

    fn program() -> Program {
        Program {
            name: "t".into(),
            consts: vec![],
            funcs: vec![Function {
                name: "main".into(),
                arity: 0,
                locals: 2,
                code: vec![Instr::Nil, Instr::Halt],
            }],
            entry: 0,
            globals: 0,
        }
    }

    #[test]
    fn new_image_positions_at_entry() {
        let img = VmImage::new(program()).unwrap();
        assert_eq!(img.frames.len(), 1);
        assert_eq!(img.frames[0].pc, 0);
        assert_eq!(img.stack.len(), 2); // entry locals pre-allocated
        assert_eq!(img.status, VmStatus::Ready);
        assert!(!img.is_done());
    }

    #[test]
    fn invalid_program_rejected() {
        let mut p = program();
        p.funcs.clear();
        assert!(VmImage::new(p).is_err());
    }

    #[test]
    fn resume_requires_awaiting_state() {
        let mut img = VmImage::new(program()).unwrap();
        assert!(img.resume_after_travel(Some("h")).is_err());
        img.status = VmStatus::AwaitingTravel;
        img.resume_after_travel(Some("h2")).unwrap();
        assert_eq!(img.stack.last(), Some(&Value::from("h2")));
        assert_eq!(img.status, VmStatus::Ready);
    }

    #[test]
    fn resume_with_done_journey_pushes_nil() {
        let mut img = VmImage::new(program()).unwrap();
        img.status = VmStatus::AwaitingTravel;
        img.resume_after_travel(None).unwrap();
        assert_eq!(img.stack.last(), Some(&Value::Nil));
    }

    #[test]
    fn wire_round_trip() {
        let mut img = VmImage::new(program()).unwrap();
        img.stack.push(Value::from("mid-flight"));
        img.gas_used = 123;
        let bytes = img.to_wire().unwrap();
        assert_eq!(bytes.len() as u64, img.wire_size());
        let back = VmImage::from_wire(&bytes).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn memory_footprint_counts_stack() {
        let mut img = VmImage::new(program()).unwrap();
        let before = img.memory_footprint();
        img.stack.push(Value::Bytes(vec![0; 4096]));
        assert!(img.memory_footprint() > before + 4096);
    }
}
