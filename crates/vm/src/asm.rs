//! A line assembler for Naplet VM programs.
//!
//! Mobile agents in examples and experiments are written in this
//! textual form; the assembler produces a validated [`Program`].
//!
//! ```text
//! ; comments start with ';' or '#'
//! .program greeter
//! .globals 1
//! .func main locals=1
//!     hcall host_name
//!     store 0
//!     const "hello from "
//!     load 0
//!     scat
//!     hcall report
//!     pop
//!     nil
//!     halt
//! .end
//! ```
//!
//! * `.func NAME [args=N] [locals=M]` … `.end` delimits a function;
//!   `locals` counts all slots including arguments (defaults to `args`).
//! * labels are `name:` on their own or before an instruction;
//!   `jmp/jmpf/jmpt label` resolve within the function.
//! * `call NAME ARGC` resolves function names program-wide, so forward
//!   references are fine.
//! * `const <literal>` interns into the constant pool: strings with
//!   the usual escapes, integers, floats (contain `.`), `true`,
//!   `false`, `nil`.

use std::collections::HashMap;

use naplet_core::error::{NapletError, Result};
use naplet_core::value::Value;

use crate::isa::{HostFn, Instr};
use crate::program::{Function, Program};

/// Assemble source text into a validated program.
pub fn assemble(source: &str) -> Result<Program> {
    Assembler::new().assemble(source)
}

struct PendingFunc {
    name: String,
    arity: u8,
    locals: u8,
    /// (mnemonic line, source line number) for the second pass.
    lines: Vec<(String, usize)>,
}

struct Assembler {
    program_name: String,
    globals: u16,
    consts: Vec<Value>,
    funcs: Vec<PendingFunc>,
}

fn err(line: usize, msg: impl std::fmt::Display) -> NapletError {
    NapletError::Parse(format!("asm line {line}: {msg}"))
}

impl Assembler {
    fn new() -> Assembler {
        Assembler {
            program_name: "anonymous".into(),
            globals: 0,
            consts: Vec::new(),
            funcs: Vec::new(),
        }
    }

    fn assemble(mut self, source: &str) -> Result<Program> {
        // pass 1: split into directives and function bodies
        let mut current: Option<PendingFunc> = None;
        for (no, raw) in source.lines().enumerate() {
            let no = no + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix(".program") {
                self.program_name = rest.trim().to_string();
            } else if let Some(rest) = line.strip_prefix(".globals") {
                self.globals = rest
                    .trim()
                    .parse()
                    .map_err(|_| err(no, "bad .globals count"))?;
            } else if let Some(rest) = line.strip_prefix(".func") {
                if current.is_some() {
                    return Err(err(no, "nested .func"));
                }
                current = Some(parse_func_header(rest.trim(), no)?);
            } else if line == ".end" {
                let f = current
                    .take()
                    .ok_or_else(|| err(no, ".end without .func"))?;
                self.funcs.push(f);
            } else {
                let f = current
                    .as_mut()
                    .ok_or_else(|| err(no, "instruction outside .func"))?;
                f.lines.push((line.to_string(), no));
            }
        }
        if current.is_some() {
            return Err(NapletError::Parse(
                "asm: missing .end for last .func".into(),
            ));
        }
        if self.funcs.is_empty() {
            return Err(NapletError::Parse("asm: no functions".into()));
        }

        // function name → index map (forward references allowed)
        let func_index: HashMap<String, u16> = self
            .funcs
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.clone(), i as u16))
            .collect();
        if func_index.len() != self.funcs.len() {
            return Err(NapletError::Parse("asm: duplicate function name".into()));
        }
        let entry = *func_index
            .get("main")
            .ok_or_else(|| NapletError::Parse("asm: no `main` function".into()))?;

        // pass 2: assemble each function
        let pending = std::mem::take(&mut self.funcs);
        let mut funcs = Vec::with_capacity(pending.len());
        for f in pending {
            funcs.push(self.assemble_func(f, &func_index)?);
        }

        let program = Program {
            name: self.program_name,
            consts: self.consts,
            funcs,
            entry,
            globals: self.globals,
        };
        program.validate()?;
        Ok(program)
    }

    fn intern(&mut self, v: Value) -> u16 {
        if let Some(i) = self.consts.iter().position(|c| c == &v) {
            return i as u16;
        }
        self.consts.push(v);
        (self.consts.len() - 1) as u16
    }

    fn assemble_func(
        &mut self,
        f: PendingFunc,
        func_index: &HashMap<String, u16>,
    ) -> Result<Function> {
        // first sweep: label positions
        let mut labels: HashMap<String, u32> = HashMap::new();
        let mut pc: u32 = 0;
        for (line, no) in &f.lines {
            let mut rest = line.as_str();
            while let Some((label, tail)) = split_label(rest) {
                if labels.insert(label.to_string(), pc).is_some() {
                    return Err(err(*no, format!("duplicate label `{label}`")));
                }
                rest = tail.trim();
            }
            if !rest.is_empty() {
                pc += 1;
            }
        }

        // second sweep: emit
        let mut code = Vec::with_capacity(pc as usize);
        for (line, no) in &f.lines {
            let mut rest = line.as_str();
            while let Some((_, tail)) = split_label(rest) {
                rest = tail.trim();
            }
            if rest.is_empty() {
                continue;
            }
            code.push(self.parse_instr(rest, *no, &labels, func_index)?);
        }

        Ok(Function {
            name: f.name,
            arity: f.arity,
            locals: f.locals,
            code,
        })
    }

    fn parse_instr(
        &mut self,
        line: &str,
        no: usize,
        labels: &HashMap<String, u32>,
        func_index: &HashMap<String, u16>,
    ) -> Result<Instr> {
        let (op, rest) = match line.split_once(char::is_whitespace) {
            Some((op, rest)) => (op, rest.trim()),
            None => (line, ""),
        };
        let label = |name: &str| -> Result<u32> {
            labels
                .get(name)
                .copied()
                .ok_or_else(|| err(no, format!("unknown label `{name}`")))
        };
        let num = |s: &str| -> Result<u64> {
            s.parse::<u64>()
                .map_err(|_| err(no, format!("bad number `{s}`")))
        };
        Ok(match op {
            "const" => {
                let v = parse_literal(rest, no)?;
                Instr::Const(self.intern(v))
            }
            "int" => Instr::Int(
                rest.parse::<i64>()
                    .map_err(|_| err(no, format!("bad int `{rest}`")))?,
            ),
            "nil" => Instr::Nil,
            "true" => Instr::Bool(true),
            "false" => Instr::Bool(false),
            "dup" => Instr::Dup,
            "pop" => Instr::Pop,
            "swap" => Instr::Swap,
            "load" => Instr::Load(num(rest)? as u8),
            "store" => Instr::Store(num(rest)? as u8),
            "gload" => Instr::GLoad(num(rest)? as u16),
            "gstore" => Instr::GStore(num(rest)? as u16),
            "add" => Instr::Add,
            "sub" => Instr::Sub,
            "mul" => Instr::Mul,
            "div" => Instr::Div,
            "mod" => Instr::Mod,
            "neg" => Instr::Neg,
            "eq" => Instr::Eq,
            "ne" => Instr::Ne,
            "lt" => Instr::Lt,
            "le" => Instr::Le,
            "gt" => Instr::Gt,
            "ge" => Instr::Ge,
            "not" => Instr::Not,
            "jmp" => Instr::Jump(label(rest)?),
            "jmpf" => Instr::JumpIfFalse(label(rest)?),
            "jmpt" => Instr::JumpIfTrue(label(rest)?),
            "call" => {
                let (name, argc) = rest
                    .split_once(char::is_whitespace)
                    .ok_or_else(|| err(no, "call NAME ARGC"))?;
                let fi = func_index
                    .get(name.trim())
                    .ok_or_else(|| err(no, format!("unknown function `{name}`")))?;
                Instr::Call(*fi, num(argc.trim())? as u8)
            }
            "ret" => Instr::Ret,
            "mklist" => Instr::MakeList(num(rest)? as u16),
            "lget" => Instr::ListGet,
            "lpush" => Instr::ListPush,
            "len" => Instr::Len,
            "mkmap" => Instr::MakeMap(num(rest)? as u16),
            "mget" => Instr::MapGet,
            "mset" => Instr::MapSet,
            "scat" => Instr::StrCat,
            "tostr" => Instr::ToStr,
            "toint" => Instr::ToInt,
            "ssplit" => Instr::StrSplit,
            "hcall" => {
                let hf = HostFn::from_mnemonic(rest)
                    .ok_or_else(|| err(no, format!("unknown host function `{rest}`")))?;
                Instr::HCall(hf)
            }
            "halt" => Instr::Halt,
            "nop" => Instr::Nop,
            other => return Err(err(no, format!("unknown mnemonic `{other}`"))),
        })
    }
}

fn strip_comment(line: &str) -> &str {
    // a ';' or '#' outside a string literal starts a comment
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            ';' | '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn split_label(line: &str) -> Option<(&str, &str)> {
    // `name:` prefix where name is an identifier
    let idx = line.find(':')?;
    let (name, rest) = line.split_at(idx);
    let name = name.trim();
    if !name.is_empty()
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        && !name.chars().next().unwrap().is_ascii_digit()
    {
        Some((name, &rest[1..]))
    } else {
        None
    }
}

fn parse_func_header(rest: &str, no: usize) -> Result<PendingFunc> {
    let mut parts = rest.split_whitespace();
    let name = parts
        .next()
        .ok_or_else(|| err(no, ".func needs a name"))?
        .to_string();
    let mut arity: u8 = 0;
    let mut locals: Option<u8> = None;
    for p in parts {
        if let Some(v) = p.strip_prefix("args=") {
            arity = v.parse().map_err(|_| err(no, "bad args="))?;
        } else if let Some(v) = p.strip_prefix("locals=") {
            locals = Some(v.parse().map_err(|_| err(no, "bad locals="))?);
        } else {
            return Err(err(no, format!("unknown .func attribute `{p}`")));
        }
    }
    let locals = locals.unwrap_or(arity).max(arity);
    Ok(PendingFunc {
        name,
        arity,
        locals,
        lines: Vec::new(),
    })
}

fn parse_literal(s: &str, no: usize) -> Result<Value> {
    let s = s.trim();
    if s.starts_with('"') {
        if !s.ends_with('"') || s.len() < 2 {
            return Err(err(no, "unterminated string literal"));
        }
        let inner = &s[1..s.len() - 1];
        let mut out = String::with_capacity(inner.len());
        let mut chars = inner.chars();
        while let Some(c) = chars.next() {
            if c == '\\' {
                match chars.next() {
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    other => return Err(err(no, format!("bad escape `\\{other:?}`"))),
                }
            } else {
                out.push(c);
            }
        }
        return Ok(Value::Str(out));
    }
    match s {
        "nil" => return Ok(Value::Nil),
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    if s.contains('.') {
        return s
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|_| err(no, format!("bad float literal `{s}`")));
    }
    s.parse::<i64>()
        .map(Value::Int)
        .map_err(|_| err(no, format!("bad literal `{s}`")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::MockHost;
    use crate::image::VmImage;
    use crate::interp::{run, VmYield};

    fn exec(src: &str) -> (Value, MockHost) {
        let p = assemble(src).expect("assemble");
        let mut img = VmImage::new(p).unwrap();
        let mut host = MockHost::new("asmhost");
        match run(&mut img, &mut host, u64::MAX).unwrap() {
            VmYield::Done(v) => (v, host),
            other => panic!("expected done, got {other:?}"),
        }
    }

    #[test]
    fn hello_world() {
        let (v, host) = exec(
            r#"
            .program hello
            .func main
                const "hello from "
                hcall host_name
                scat
                hcall report
                pop
                int 1
                halt
            .end
        "#,
        );
        assert_eq!(v, Value::Int(1));
        assert_eq!(host.reports, vec![Value::from("hello from asmhost")]);
    }

    #[test]
    fn loops_with_labels() {
        let (v, _) = exec(
            r#"
            .program sum
            .func main locals=2
                int 0
                store 0      ; i
                int 0
                store 1      ; acc
            head:
                load 0
                int 10
                lt
                jmpf done
                load 0
                int 1
                add
                store 0
                load 1
                load 0
                add
                store 1
                jmp head
            done:
                load 1
                halt
            .end
        "#,
        );
        assert_eq!(v, Value::Int(55));
    }

    #[test]
    fn forward_function_references() {
        let (v, _) = exec(
            r#"
            .program fwd
            .func main
                int 6
                int 7
                call mulf 2
                halt
            .end
            .func mulf args=2
                load 0
                load 1
                mul
                ret
            .end
        "#,
        );
        assert_eq!(v, Value::Int(42));
    }

    #[test]
    fn literals_and_comments() {
        let (v, _) = exec(
            r#"
            .program lit
            .func main locals=1
                const "semi ; inside" # trailing comment
                len
                const 2.5
                add
                halt
            .end
        "#,
        );
        assert_eq!(v, Value::Float(13.0 + 2.5));
    }

    #[test]
    fn string_escapes() {
        let (v, _) = exec(
            r#"
            .program esc
            .func main
                const "a\n\"b\"\t\\"
                halt
            .end
        "#,
        );
        assert_eq!(v, Value::from("a\n\"b\"\t\\"));
    }

    #[test]
    fn constants_are_interned() {
        let p = assemble(
            r#"
            .program intern
            .func main
                const "x"
                const "x"
                const "y"
                pop
                pop
                halt
            .end
        "#,
        )
        .unwrap();
        assert_eq!(p.consts.len(), 2);
    }

    #[test]
    fn errors_are_located() {
        let cases = [
            (".func main\n bogus\n.end", "line 2"),
            (".func main\n jmp nowhere\n halt\n.end", "unknown label"),
            (".func main\n call nofn 0\n halt\n.end", "unknown function"),
            (".func main\n const \"open\n halt\n.end", "unterminated"),
            (".func other\n halt\n.end", "no `main`"),
            (
                ".func main\n halt\n.end\n.func main\n halt\n.end",
                "duplicate function",
            ),
            (".func main\n nil", "missing .end"),
            ("nop", "outside .func"),
            (".func main\nx: nop\nx: nop\nhalt\n.end", "duplicate label"),
        ];
        for (src, needle) in cases {
            let e = assemble(src).unwrap_err().to_string();
            assert!(
                e.contains(needle),
                "error `{e}` should mention `{needle}` for {src:?}"
            );
        }
    }

    #[test]
    fn globals_directive() {
        let (v, _) = exec(
            r#"
            .program g
            .globals 2
            .func main
                int 9
                gstore 1
                gload 1
                halt
            .end
        "#,
        );
        assert_eq!(v, Value::Int(9));
    }

    #[test]
    fn hcall_travel_assembles() {
        let p = assemble(
            r#"
            .program t
            .func main
                hcall travel_next
                pop
                nil
                halt
            .end
        "#,
        )
        .unwrap();
        assert_eq!(p.funcs[0].code[0], Instr::HCall(HostFn::TravelNext));
    }

    #[test]
    fn label_on_same_line_as_instruction() {
        let (v, _) = exec(
            r#"
            .program l
            .func main locals=1
                int 3
                store 0
            again: load 0
                int 1
                sub
                store 0
                load 0
                jmpt again
                const "done"
                halt
            .end
        "#,
        );
        assert_eq!(v, Value::from("done"));
    }

    #[test]
    fn assembled_program_validates() {
        let p = assemble(
            r#"
            .program v
            .func main
                nil
                halt
            .end
        "#,
        )
        .unwrap();
        p.validate().unwrap();
        assert_eq!(p.name, "v");
    }
}
