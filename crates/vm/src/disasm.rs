//! Disassembler: renders a [`Program`] back into assembler-style text
//! for debugging, diffing and golden tests.

use std::fmt::Write as _;

use crate::isa::Instr;
use crate::program::Program;

/// Render the whole program.
pub fn disassemble(p: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, ".program {}", p.name);
    if p.globals > 0 {
        let _ = writeln!(out, ".globals {}", p.globals);
    }
    for f in &p.funcs {
        let _ = writeln!(out, ".func {} args={} locals={}", f.name, f.arity, f.locals);
        for (pc, ins) in f.code.iter().enumerate() {
            let _ = writeln!(out, "  {pc:>4}: {}", render(p, ins));
        }
        let _ = writeln!(out, ".end");
    }
    out
}

fn render(p: &Program, ins: &Instr) -> String {
    match ins {
        Instr::Const(i) => match p.consts.get(*i as usize) {
            Some(v) => format!("const {v}    ; #{i}"),
            None => format!("const <bad #{i}>"),
        },
        Instr::Int(n) => format!("int {n}"),
        Instr::Nil => "nil".into(),
        Instr::Bool(true) => "true".into(),
        Instr::Bool(false) => "false".into(),
        Instr::Dup => "dup".into(),
        Instr::Pop => "pop".into(),
        Instr::Swap => "swap".into(),
        Instr::Load(i) => format!("load {i}"),
        Instr::Store(i) => format!("store {i}"),
        Instr::GLoad(i) => format!("gload {i}"),
        Instr::GStore(i) => format!("gstore {i}"),
        Instr::Add => "add".into(),
        Instr::Sub => "sub".into(),
        Instr::Mul => "mul".into(),
        Instr::Div => "div".into(),
        Instr::Mod => "mod".into(),
        Instr::Neg => "neg".into(),
        Instr::Eq => "eq".into(),
        Instr::Ne => "ne".into(),
        Instr::Lt => "lt".into(),
        Instr::Le => "le".into(),
        Instr::Gt => "gt".into(),
        Instr::Ge => "ge".into(),
        Instr::Not => "not".into(),
        Instr::Jump(t) => format!("jmp -> {t}"),
        Instr::JumpIfFalse(t) => format!("jmpf -> {t}"),
        Instr::JumpIfTrue(t) => format!("jmpt -> {t}"),
        Instr::Call(fi, argc) => match p.funcs.get(*fi as usize) {
            Some(f) => format!("call {} {argc}", f.name),
            None => format!("call <bad #{fi}> {argc}"),
        },
        Instr::Ret => "ret".into(),
        Instr::MakeList(n) => format!("mklist {n}"),
        Instr::ListGet => "lget".into(),
        Instr::ListPush => "lpush".into(),
        Instr::Len => "len".into(),
        Instr::MakeMap(n) => format!("mkmap {n}"),
        Instr::MapGet => "mget".into(),
        Instr::MapSet => "mset".into(),
        Instr::StrCat => "scat".into(),
        Instr::ToStr => "tostr".into(),
        Instr::ToInt => "toint".into(),
        Instr::StrSplit => "ssplit".into(),
        Instr::HCall(hf) => format!("hcall {}", hf.mnemonic()),
        Instr::Halt => "halt".into(),
        Instr::Nop => "nop".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    #[test]
    fn disassembly_mentions_everything() {
        let p = assemble(
            r#"
            .program demo
            .globals 1
            .func main locals=1
                const "greeting"
                store 0
            top:
                load 0
                hcall log
                pop
                int 2
                int 3
                call addf 2
                jmpt top
                nil
                halt
            .end
            .func addf args=2
                load 0
                load 1
                add
                ret
            .end
        "#,
        )
        .unwrap();
        let text = disassemble(&p);
        assert!(text.contains(".program demo"));
        assert!(text.contains(".globals 1"));
        assert!(text.contains("call addf 2"));
        assert!(text.contains("hcall log"));
        assert!(text.contains("jmpt -> "));
        assert!(text.contains("\"greeting\""));
        assert!(text.contains(".func addf args=2 locals=2"));
    }
}
