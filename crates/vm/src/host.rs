//! The host interface mobile code calls into, and adapters.
//!
//! [`VmHost`] mirrors the capabilities of
//! `naplet_core::context::NapletContext` at the VM
//! boundary (strings and [`Value`]s only, so images stay serializable).
//! [`ContextVmHost`] adapts any `NapletContext` — the hosting server
//! passes its run context straight through. [`MockHost`] is a
//! self-contained recording host for tests and benchmarks.

use std::collections::BTreeMap;

use naplet_core::context::NapletContext;
use naplet_core::error::{NapletError, Result};
use naplet_core::id::NapletId;
use naplet_core::message::Payload;
use naplet_core::value::Value;

/// Host capabilities exposed to mobile code (all [`crate::isa::HostFn`]
/// variants except the strong-mobility yield, which the interpreter
/// handles itself).
pub trait VmHost {
    /// Read own state (naplet-side, full access).
    fn state_get(&mut self, key: &str) -> Result<Value>;
    /// Write a state entry; `public` selects the public protection mode.
    fn state_set(&mut self, key: &str, value: Value, public: bool) -> Result<()>;
    /// Current host name.
    fn host_name(&mut self) -> String;
    /// Own naplet id, textual form.
    fn agent_id(&mut self) -> String;
    /// Completed hops.
    fn hops(&mut self) -> i64;
    /// Server time (ms).
    fn now(&mut self) -> i64;
    /// Diagnostic log line.
    fn log(&mut self, line: &str);
    /// Open (non-privileged) service call.
    fn svc_call(&mut self, name: &str, args: Value) -> Result<Value>;
    /// Privileged service-channel exchange.
    fn chan_exchange(&mut self, service: &str, request: Value) -> Result<Value>;
    /// Post a user message; `Ok(false)` on transient delivery refusal.
    fn msg_send(&mut self, peer: &str, value: Value) -> Result<bool>;
    /// Non-blocking mailbox check; `Nil` when empty.
    fn msg_recv(&mut self) -> Result<Value>;
    /// Textual ids of address book peers.
    fn peers(&mut self) -> Vec<String>;
    /// Report to the owner's listener.
    fn report(&mut self, value: Value) -> Result<()>;
}

/// Adapter running mobile code against a real naplet context.
pub struct ContextVmHost<'a> {
    ctx: &'a mut dyn NapletContext,
    hops: i64,
}

impl<'a> ContextVmHost<'a> {
    /// Wrap a context; `hops` comes from the navigation log (the
    /// context does not know it).
    pub fn new(ctx: &'a mut dyn NapletContext, hops: usize) -> ContextVmHost<'a> {
        ContextVmHost {
            ctx,
            hops: hops as i64,
        }
    }
}

impl VmHost for ContextVmHost<'_> {
    fn state_get(&mut self, key: &str) -> Result<Value> {
        Ok(self.ctx.state().get(key))
    }
    fn state_set(&mut self, key: &str, value: Value, public: bool) -> Result<()> {
        if public {
            self.ctx.state().set_public(key, value);
        } else {
            self.ctx.state().set(key, value);
        }
        Ok(())
    }
    fn host_name(&mut self) -> String {
        self.ctx.host_name().to_string()
    }
    fn agent_id(&mut self) -> String {
        self.ctx.naplet_id().to_string()
    }
    fn hops(&mut self) -> i64 {
        self.hops
    }
    fn now(&mut self) -> i64 {
        self.ctx.now().0 as i64
    }
    fn log(&mut self, line: &str) {
        self.ctx.log(line);
    }
    fn svc_call(&mut self, name: &str, args: Value) -> Result<Value> {
        self.ctx.call_service(name, args)
    }
    fn chan_exchange(&mut self, service: &str, request: Value) -> Result<Value> {
        self.ctx.channel_exchange(service, request)
    }
    fn msg_send(&mut self, peer: &str, value: Value) -> Result<bool> {
        let id: NapletId = peer
            .parse()
            .map_err(|e: NapletError| NapletError::Communication(e.to_string()))?;
        match self.ctx.post_message(&id, value) {
            Ok(()) => Ok(true),
            Err(e) if e.is_transient() => Ok(false),
            Err(e) => Err(e),
        }
    }
    fn msg_recv(&mut self) -> Result<Value> {
        Ok(match self.ctx.get_message()? {
            Some(msg) => match msg.payload {
                Payload::User(v) => v,
                Payload::System(_) => Value::Nil,
            },
            None => Value::Nil,
        })
    }
    fn peers(&mut self) -> Vec<String> {
        self.ctx
            .address_book()
            .iter()
            .map(|e| e.naplet_id.to_string())
            .collect()
    }
    fn report(&mut self, value: Value) -> Result<()> {
        self.ctx.report_home(value)
    }
}

/// Self-contained host for tests and microbenchmarks: state is a map,
/// services are closures, sends/reports/logs are recorded.
#[derive(Default)]
pub struct MockHost {
    /// Simulated host name.
    pub host: String,
    /// Simulated agent id.
    pub agent: String,
    /// Simulated hop count.
    pub hop_count: i64,
    /// Simulated clock.
    pub time: i64,
    /// Naplet state entries.
    pub state: BTreeMap<String, Value>,
    /// Captured log lines.
    pub logs: Vec<String>,
    /// Captured reports.
    pub reports: Vec<Value>,
    /// Captured message sends.
    pub sent: Vec<(String, Value)>,
    /// Inbox served by `msg_recv`.
    pub inbox: Vec<Value>,
    /// Peers returned by `peers`.
    pub peer_ids: Vec<String>,
    services: BTreeMap<String, Box<dyn FnMut(Value) -> Result<Value> + Send>>,
    channels: BTreeMap<String, Box<dyn FnMut(Value) -> Result<Value> + Send>>,
}

impl MockHost {
    /// Fresh mock named `host`.
    pub fn new(host: &str) -> MockHost {
        MockHost {
            host: host.to_string(),
            agent: format!("vm@{host}:0"),
            ..Default::default()
        }
    }

    /// Register an open service.
    pub fn with_service(
        mut self,
        name: &str,
        f: impl FnMut(Value) -> Result<Value> + Send + 'static,
    ) -> Self {
        self.services.insert(name.to_string(), Box::new(f));
        self
    }

    /// Register a privileged channel service.
    pub fn with_channel(
        mut self,
        name: &str,
        f: impl FnMut(Value) -> Result<Value> + Send + 'static,
    ) -> Self {
        self.channels.insert(name.to_string(), Box::new(f));
        self
    }
}

impl VmHost for MockHost {
    fn state_get(&mut self, key: &str) -> Result<Value> {
        Ok(self.state.get(key).cloned().unwrap_or(Value::Nil))
    }
    fn state_set(&mut self, key: &str, value: Value, _public: bool) -> Result<()> {
        self.state.insert(key.to_string(), value);
        Ok(())
    }
    fn host_name(&mut self) -> String {
        self.host.clone()
    }
    fn agent_id(&mut self) -> String {
        self.agent.clone()
    }
    fn hops(&mut self) -> i64 {
        self.hop_count
    }
    fn now(&mut self) -> i64 {
        self.time
    }
    fn log(&mut self, line: &str) {
        self.logs.push(line.to_string());
    }
    fn svc_call(&mut self, name: &str, args: Value) -> Result<Value> {
        match self.services.get_mut(name) {
            Some(f) => f(args),
            None => Err(NapletError::Service(format!("no open service `{name}`"))),
        }
    }
    fn chan_exchange(&mut self, service: &str, request: Value) -> Result<Value> {
        match self.channels.get_mut(service) {
            Some(f) => f(request),
            None => Err(NapletError::Service(format!(
                "no privileged service `{service}`"
            ))),
        }
    }
    fn msg_send(&mut self, peer: &str, value: Value) -> Result<bool> {
        self.sent.push((peer.to_string(), value));
        Ok(true)
    }
    fn msg_recv(&mut self) -> Result<Value> {
        Ok(if self.inbox.is_empty() {
            Value::Nil
        } else {
            self.inbox.remove(0)
        })
    }
    fn peers(&mut self) -> Vec<String> {
        self.peer_ids.clone()
    }
    fn report(&mut self, value: Value) -> Result<()> {
        self.reports.push(value);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use naplet_core::clock::Millis;
    use naplet_core::context::LocalContext;

    #[test]
    fn mock_host_records() {
        let mut h = MockHost::new("s1").with_service("id", Ok);
        h.state_set("k", Value::Int(1), false).unwrap();
        assert_eq!(h.state_get("k").unwrap(), Value::Int(1));
        assert_eq!(h.svc_call("id", Value::Int(7)).unwrap(), Value::Int(7));
        assert!(h.svc_call("none", Value::Nil).is_err());
        h.log("x");
        h.report(Value::Nil).unwrap();
        h.msg_send("peer@p:0", Value::Int(2)).unwrap();
        assert_eq!(h.logs.len(), 1);
        assert_eq!(h.reports.len(), 1);
        assert_eq!(h.sent.len(), 1);
        assert_eq!(h.msg_recv().unwrap(), Value::Nil);
        h.inbox.push(Value::Int(3));
        assert_eq!(h.msg_recv().unwrap(), Value::Int(3));
    }

    #[test]
    fn context_adapter_passes_through() {
        let id = NapletId::new("u", "h", Millis(0)).unwrap();
        let mut ctx = LocalContext::new("server-1", id.clone());
        ctx.register_service("double", |v| Ok(Value::Int(v.as_int()? * 2)));
        let peer = NapletId::new("peer", "p", Millis(1)).unwrap();
        ctx.address_book.put(peer.clone(), "sp");

        let mut host = ContextVmHost::new(&mut ctx, 3);
        assert_eq!(host.host_name(), "server-1");
        assert_eq!(host.agent_id(), id.to_string());
        assert_eq!(host.hops(), 3);
        host.state_set("k", Value::Int(9), false).unwrap();
        assert_eq!(host.state_get("k").unwrap(), Value::Int(9));
        assert_eq!(
            host.svc_call("double", Value::Int(4)).unwrap(),
            Value::Int(8)
        );
        assert!(host.msg_send(&peer.to_string(), Value::Int(1)).unwrap());
        assert_eq!(host.peers(), vec![peer.to_string()]);
        host.report(Value::from("r")).unwrap();
        host.log("line");
        assert!(host.msg_send("not-an-id", Value::Nil).is_err());

        assert_eq!(ctx.sent.len(), 1);
        assert_eq!(ctx.reports.len(), 1);
        assert_eq!(ctx.log_lines, vec!["line"]);
    }
}
