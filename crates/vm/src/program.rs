//! VM programs: functions, constant pool, validation.

use serde::{Deserialize, Serialize};

use naplet_core::error::{NapletError, Result};
use naplet_core::value::Value;

use crate::isa::Instr;

/// One function: named, fixed arity, `locals` total local slots
/// (including the arguments, which occupy slots `0..arity`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Function {
    /// Function name (call target for the assembler; diagnostics).
    pub name: String,
    /// Number of arguments.
    pub arity: u8,
    /// Total local slots, `>= arity`.
    pub locals: u8,
    /// Instruction sequence.
    pub code: Vec<Instr>,
}

/// A complete mobile program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Human-readable program name (diagnostics, codebase naming).
    pub name: String,
    /// Constant pool shared by all functions.
    pub consts: Vec<Value>,
    /// Functions; entry point is index `entry`.
    pub funcs: Vec<Function>,
    /// Index of the entry function (must take 0 arguments).
    pub entry: u16,
    /// Number of global slots.
    pub globals: u16,
}

impl Program {
    /// Find a function index by name.
    pub fn func_index(&self, name: &str) -> Option<u16> {
        self.funcs
            .iter()
            .position(|f| f.name == name)
            .map(|i| i as u16)
    }

    /// The entry function.
    pub fn entry_func(&self) -> &Function {
        &self.funcs[self.entry as usize]
    }

    /// Serialized size in bytes — the cost of carrying this code.
    pub fn wire_size(&self) -> u64 {
        naplet_core::codec::encoded_size(self).unwrap_or(u64::MAX)
    }

    /// Validate structural invariants so the interpreter can trust
    /// indexes: entry exists and takes no arguments, all jump targets
    /// are in range, all local/global/const/function references are in
    /// bounds, functions end in `Ret`/`Halt`/`Jump` (no fall-through).
    pub fn validate(&self) -> Result<()> {
        if self.funcs.is_empty() {
            return Err(err("program has no functions"));
        }
        let entry = self
            .funcs
            .get(self.entry as usize)
            .ok_or_else(|| err("entry index out of range"))?;
        if entry.arity != 0 {
            return Err(err("entry function must take 0 arguments"));
        }
        for f in &self.funcs {
            if f.locals < f.arity {
                return Err(err(&format!("function `{}`: locals < arity", f.name)));
            }
            if f.code.is_empty() {
                return Err(err(&format!("function `{}` is empty", f.name)));
            }
            match f.code.last() {
                Some(Instr::Ret | Instr::Halt | Instr::Jump(_)) => {}
                _ => {
                    return Err(err(&format!(
                        "function `{}` may fall off its end (must end in ret/halt/jump)",
                        f.name
                    )))
                }
            }
            for (pc, ins) in f.code.iter().enumerate() {
                let ctx = || format!("`{}`@{pc}", f.name);
                match ins {
                    Instr::Const(i) if *i as usize >= self.consts.len() => {
                        return Err(err(&format!("{}: const {i} out of range", ctx())));
                    }
                    Instr::Load(i) | Instr::Store(i) if *i >= f.locals => {
                        return Err(err(&format!("{}: local {i} out of range", ctx())));
                    }
                    Instr::GLoad(i) | Instr::GStore(i) if *i >= self.globals => {
                        return Err(err(&format!("{}: global {i} out of range", ctx())));
                    }
                    Instr::Jump(t) | Instr::JumpIfFalse(t) | Instr::JumpIfTrue(t)
                        if *t as usize >= f.code.len() =>
                    {
                        return Err(err(&format!("{}: jump target {t} out of range", ctx())));
                    }
                    Instr::Call(fi, argc) => {
                        let callee = self
                            .funcs
                            .get(*fi as usize)
                            .ok_or_else(|| err(&format!("{}: call target {fi} missing", ctx())))?;
                        if callee.arity != *argc {
                            return Err(err(&format!(
                                "{}: call `{}` with {argc} args, arity {}",
                                ctx(),
                                callee.name,
                                callee.arity
                            )));
                        }
                    }
                    _ => {}
                }
            }
        }
        Ok(())
    }
}

fn err(msg: &str) -> NapletError {
    NapletError::VmTrap(format!("invalid program: {msg}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal() -> Program {
        Program {
            name: "t".into(),
            consts: vec![Value::from("hello")],
            funcs: vec![Function {
                name: "main".into(),
                arity: 0,
                locals: 1,
                code: vec![Instr::Const(0), Instr::Halt],
            }],
            entry: 0,
            globals: 1,
        }
    }

    #[test]
    fn valid_program_passes() {
        minimal().validate().unwrap();
        assert_eq!(minimal().func_index("main"), Some(0));
        assert_eq!(minimal().func_index("missing"), None);
        assert!(minimal().wire_size() > 0);
    }

    #[test]
    fn rejects_bad_entry() {
        let mut p = minimal();
        p.entry = 7;
        assert!(p.validate().is_err());
        let mut p = minimal();
        p.funcs[0].arity = 1;
        p.funcs[0].locals = 1;
        assert!(p.validate().is_err()); // entry with args
    }

    #[test]
    fn rejects_out_of_range_refs() {
        let mut p = minimal();
        p.funcs[0].code[0] = Instr::Const(9);
        assert!(p.validate().is_err());

        let mut p = minimal();
        p.funcs[0].code[0] = Instr::Load(5);
        assert!(p.validate().is_err());

        let mut p = minimal();
        p.funcs[0].code[0] = Instr::GStore(3);
        assert!(p.validate().is_err());

        let mut p = minimal();
        p.funcs[0].code[0] = Instr::Jump(99);
        assert!(p.validate().is_err());
    }

    #[test]
    fn rejects_fall_through() {
        let mut p = minimal();
        p.funcs[0].code = vec![Instr::Nil, Instr::Pop];
        assert!(p.validate().is_err());
    }

    #[test]
    fn rejects_arity_mismatch_call() {
        let mut p = minimal();
        p.funcs.push(Function {
            name: "f1".into(),
            arity: 2,
            locals: 2,
            code: vec![Instr::Nil, Instr::Ret],
        });
        p.funcs[0].code = vec![Instr::Nil, Instr::Call(1, 1), Instr::Halt];
        assert!(p.validate().is_err());
        p.funcs[0].code = vec![Instr::Nil, Instr::Nil, Instr::Call(1, 2), Instr::Halt];
        p.validate().unwrap();
    }

    #[test]
    fn rejects_locals_smaller_than_arity() {
        let mut p = minimal();
        p.funcs.push(Function {
            name: "bad".into(),
            arity: 3,
            locals: 1,
            code: vec![Instr::Nil, Instr::Ret],
        });
        assert!(p.validate().is_err());
    }

    #[test]
    fn codec_round_trip() {
        let p = minimal();
        let bytes = naplet_core::codec::to_bytes(&p).unwrap();
        let back: Program = naplet_core::codec::from_bytes(&bytes).unwrap();
        assert_eq!(back, p);
    }
}
