//! Instruction set of the Naplet VM.
//!
//! A compact stack machine: operands live on an explicit value stack,
//! locals are stack slots addressed from a frame base (Lua-style).
//! Instructions are serializable — a program travels inside the naplet
//! as part of its VM image, which is what makes the agent's *code*
//! genuinely mobile on a statically compiled host language.

use serde::{Deserialize, Serialize};

/// Host functions callable from mobile code via [`Instr::HCall`].
///
/// Each host function maps onto a capability of the naplet execution
/// context (paper §2.1/§5.3): state access, messaging, services,
/// reporting, and the strong-mobility yield `TravelNext`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HostFn {
    /// `(key) -> value` — read own state (naplet-side, full access).
    StateGet,
    /// `(key, value) -> nil` — write a private state entry.
    StateSet,
    /// `(key, value) -> nil` — write a public state entry.
    StateSetPublic,
    /// `() -> str` — name of the current host.
    HostName,
    /// `() -> str` — own naplet identifier (textual form).
    AgentId,
    /// `() -> int` — completed hops (navigation log length).
    Hops,
    /// `() -> int` — current server time in ms.
    Now,
    /// `(line) -> nil` — append to the naplet's execution log.
    Log,
    /// `(name, args) -> value` — call an open (non-privileged) service.
    SvcCall,
    /// `(service, request) -> value` — one request/reply exchange over
    /// a privileged service channel.
    ChanExchange,
    /// `(peer_id_str, value) -> bool` — post a user message to a peer
    /// in the address book; `false` when the post office reports a
    /// (transient) failure.
    MsgSend,
    /// `() -> value|nil` — non-blocking mailbox check.
    MsgRecv,
    /// `() -> list[str]` — textual ids of all address book peers.
    Peers,
    /// `(value) -> nil` — report to the owner's listener at home.
    Report,
    /// `() -> str|nil` — *strong-mobility yield*: suspend the VM,
    /// let the server advance the itinerary and migrate the whole VM
    /// image; execution resumes here on the next host with the new
    /// host name on the stack (or nil when the journey is done).
    TravelNext,
}

impl HostFn {
    /// Number of arguments consumed from the stack.
    pub fn arity(self) -> usize {
        match self {
            HostFn::StateGet | HostFn::Log | HostFn::Report => 1,
            HostFn::StateSet
            | HostFn::StateSetPublic
            | HostFn::SvcCall
            | HostFn::ChanExchange
            | HostFn::MsgSend => 2,
            HostFn::HostName
            | HostFn::AgentId
            | HostFn::Hops
            | HostFn::Now
            | HostFn::MsgRecv
            | HostFn::Peers
            | HostFn::TravelNext => 0,
        }
    }

    /// Assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            HostFn::StateGet => "state_get",
            HostFn::StateSet => "state_set",
            HostFn::StateSetPublic => "state_set_public",
            HostFn::HostName => "host_name",
            HostFn::AgentId => "agent_id",
            HostFn::Hops => "hops",
            HostFn::Now => "now",
            HostFn::Log => "log",
            HostFn::SvcCall => "svc_call",
            HostFn::ChanExchange => "chan_exchange",
            HostFn::MsgSend => "msg_send",
            HostFn::MsgRecv => "msg_recv",
            HostFn::Peers => "peers",
            HostFn::Report => "report",
            HostFn::TravelNext => "travel_next",
        }
    }

    /// Parse an assembler mnemonic.
    pub fn from_mnemonic(s: &str) -> Option<HostFn> {
        Some(match s {
            "state_get" => HostFn::StateGet,
            "state_set" => HostFn::StateSet,
            "state_set_public" => HostFn::StateSetPublic,
            "host_name" => HostFn::HostName,
            "agent_id" => HostFn::AgentId,
            "hops" => HostFn::Hops,
            "now" => HostFn::Now,
            "log" => HostFn::Log,
            "svc_call" => HostFn::SvcCall,
            "chan_exchange" => HostFn::ChanExchange,
            "msg_send" => HostFn::MsgSend,
            "msg_recv" => HostFn::MsgRecv,
            "peers" => HostFn::Peers,
            "report" => HostFn::Report,
            "travel_next" => HostFn::TravelNext,
            _ => return None,
        })
    }

    /// Every host function (for exhaustive tests).
    pub fn all() -> &'static [HostFn] {
        &[
            HostFn::StateGet,
            HostFn::StateSet,
            HostFn::StateSetPublic,
            HostFn::HostName,
            HostFn::AgentId,
            HostFn::Hops,
            HostFn::Now,
            HostFn::Log,
            HostFn::SvcCall,
            HostFn::ChanExchange,
            HostFn::MsgSend,
            HostFn::MsgRecv,
            HostFn::Peers,
            HostFn::Report,
            HostFn::TravelNext,
        ]
    }
}

/// One VM instruction. Jump targets are absolute instruction indexes
/// within the current function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Instr {
    /// Push constant-pool entry `i`.
    Const(u16),
    /// Push an immediate small integer.
    Int(i64),
    /// Push nil.
    Nil,
    /// Push boolean.
    Bool(bool),
    /// Duplicate the top of stack.
    Dup,
    /// Discard the top of stack.
    Pop,
    /// Swap the two topmost values.
    Swap,
    /// Push local slot `i` of the current frame.
    Load(u8),
    /// Pop into local slot `i`.
    Store(u8),
    /// Push global slot `i`.
    GLoad(u16),
    /// Pop into global slot `i`.
    GStore(u16),

    /// Arithmetic (int/float with widening). Division by zero traps.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (traps on zero divisor).
    Div,
    /// Remainder (ints only; traps on zero divisor).
    Mod,
    /// Arithmetic negation.
    Neg,

    /// Structural equality.
    Eq,
    /// Structural inequality.
    Ne,
    /// Numeric/string less-than.
    Lt,
    /// Numeric/string less-or-equal.
    Le,
    /// Numeric/string greater-than.
    Gt,
    /// Numeric/string greater-or-equal.
    Ge,
    /// Logical not (truthiness).
    Not,

    /// Unconditional jump to instruction index.
    Jump(u32),
    /// Jump when the popped value is falsy.
    JumpIfFalse(u32),
    /// Jump when the popped value is truthy.
    JumpIfTrue(u32),

    /// Call function `f` with `argc` arguments on the stack.
    Call(u16, u8),
    /// Return the top of stack from the current function.
    Ret,

    /// Pop `n` values, push them as a list (first-pushed first).
    MakeList(u16),
    /// `(list, index) -> value` — index read (traps out of range).
    ListGet,
    /// `(list, value) -> list` — append.
    ListPush,
    /// `(list|map|str|bytes) -> int` — length.
    Len,
    /// Pop `2n` values (alternating key, value), push a map.
    MakeMap(u16),
    /// `(map, key) -> value|nil` — map read.
    MapGet,
    /// `(map, key, value) -> map` — map write (functional update).
    MapSet,

    /// `(a, b) -> str` — string concatenation of displays.
    StrCat,
    /// `(v) -> str` — stringify.
    ToStr,
    /// `(v) -> int` — parse/convert to int (traps on failure).
    ToInt,
    /// `(str, sep) -> list[str]` — split a string.
    StrSplit,

    /// Call a host function with its fixed arity.
    HCall(HostFn),
    /// Stop the program; the value on top of the stack (or nil) is the
    /// program result.
    Halt,
    /// No operation.
    Nop,
}

impl Instr {
    /// Gas cost of executing this instruction. Host calls are an order
    /// of magnitude more expensive than plain instructions; this is the
    /// knob experiment E6 (monitor overhead) turns.
    pub fn gas_cost(&self) -> u64 {
        match self {
            Instr::HCall(_) => 10,
            Instr::Call(_, _) => 4,
            Instr::MakeList(n) | Instr::MakeMap(n) => 2 + *n as u64,
            _ => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonic_round_trip() {
        for &h in HostFn::all() {
            assert_eq!(HostFn::from_mnemonic(h.mnemonic()), Some(h));
        }
        assert_eq!(HostFn::from_mnemonic("bogus"), None);
    }

    #[test]
    fn arities_match_docs() {
        assert_eq!(HostFn::StateGet.arity(), 1);
        assert_eq!(HostFn::StateSet.arity(), 2);
        assert_eq!(HostFn::TravelNext.arity(), 0);
        assert_eq!(HostFn::MsgSend.arity(), 2);
    }

    #[test]
    fn gas_costs_ordered() {
        assert!(Instr::HCall(HostFn::Log).gas_cost() > Instr::Add.gas_cost());
        assert!(Instr::Call(0, 0).gas_cost() > Instr::Add.gas_cost());
        assert_eq!(Instr::MakeList(8).gas_cost(), 10);
    }

    #[test]
    fn instr_codec_round_trip() {
        let instrs = vec![
            Instr::Const(3),
            Instr::Int(-9),
            Instr::Jump(42),
            Instr::HCall(HostFn::ChanExchange),
            Instr::Call(2, 3),
        ];
        let bytes = naplet_core::codec::to_bytes(&instrs).unwrap();
        let back: Vec<Instr> = naplet_core::codec::from_bytes(&bytes).unwrap();
        assert_eq!(back, instrs);
    }
}
