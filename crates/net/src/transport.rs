//! The pluggable transport abstraction.
//!
//! Every live driver (the threaded `LiveRuntime` in `naplet-server`,
//! the `napletd` daemon) pumps frames through a [`Transport`] instead
//! of a concrete network, so the very same event-handler servers run
//! over the in-process fabric ([`crate::threaded::ThreadedNet`]) and
//! over real sockets ([`crate::tcp::TcpTransport`]) without a line of
//! server code changing. The deterministic discrete-event runtime does
//! *not* go through this trait — it drives the fabric directly in
//! virtual time, which is what keeps simulation outputs byte-identical
//! regardless of how the live transports evolve.

use crossbeam::channel::Receiver;

use naplet_core::error::Result;

use crate::frame::Frame;
use crate::stats::{NetStats, TrafficClass};
use crate::threaded::ThreadedNet;

/// A live frame transport between named hosts.
///
/// Semantics shared by every backend:
///
/// * [`Transport::send`] returns `Ok(true)` when delivery was
///   scheduled, `Ok(false)` when the transport dropped the frame
///   (loss, partition, dead peer — the reliable-transfer layer above
///   retransmits), and `Err` only for frames addressed to a host the
///   transport has never heard of (a driver programming error);
/// * faults never panic the transport: a broken connection or an
///   injected loss becomes a counted drop in [`Transport::stats`];
/// * frames between two registered endpoints arrive byte-identical to
///   what was sent — the loopback parity suite in
///   `crates/net/tests/tcp_loopback.rs` holds the TCP backend to the
///   in-process fabric's behavior frame for frame.
pub trait Transport: Send + Sync + 'static {
    /// Register a local endpoint named `host` and obtain its inbox.
    /// Frames addressed to `host` arrive on the returned receiver.
    fn register(&self, host: &str) -> Receiver<Frame>;

    /// Send a frame toward `frame.to`. See the trait docs for the
    /// `Ok(true)` / `Ok(false)` / `Err` contract.
    fn send(&self, frame: Frame) -> Result<bool>;

    /// Shared transport statistics (bytes by class, drops,
    /// retransmits, crash/recovery counters).
    fn stats(&self) -> &NetStats;

    /// Advance the transport's fault clock to `ms` since the driver's
    /// epoch. Fabric-backed transports evaluate scheduled fault
    /// windows against it; socket transports, whose faults are real,
    /// ignore it.
    fn set_now(&self, _ms: u64) {}

    /// Meter a bulk side-channel fetch (lazy code loading) of `bytes`
    /// from `from` to `to` and return the modelled one-way delay, or
    /// `Ok(None)` when the fetch was lost. Socket transports return
    /// `Ok(Some(0))`: a real fetch has no modelled delay to wait out.
    fn fetch(&self, from: &str, to: &str, class: TrafficClass, bytes: u64) -> Result<Option<u64>>;
}

impl Transport for ThreadedNet {
    fn register(&self, host: &str) -> Receiver<Frame> {
        ThreadedNet::register(self, host)
    }

    fn send(&self, frame: Frame) -> Result<bool> {
        ThreadedNet::send(self, frame)
    }

    fn stats(&self) -> &NetStats {
        self.fabric().stats()
    }

    fn set_now(&self, ms: u64) {
        self.fabric().set_now(ms);
    }

    fn fetch(&self, from: &str, to: &str, class: TrafficClass, bytes: u64) -> Result<Option<u64>> {
        self.fabric().transfer(from, to, class, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::Fabric;
    use crate::latency::{Bandwidth, LatencyModel};

    fn threaded() -> ThreadedNet {
        let fabric = Fabric::new(LatencyModel::Constant(1), Bandwidth(None), 3);
        ThreadedNet::start(fabric, 0)
    }

    #[test]
    fn threaded_net_honors_the_trait_contract() {
        let net = threaded();
        let t: &dyn Transport = &net;
        let _a = t.register("a");
        let b = t.register("b");
        assert!(t
            .send(Frame::new("a", "b", TrafficClass::Message, vec![1u8, 2]))
            .unwrap());
        let f = b.recv_timeout(std::time::Duration::from_secs(1)).unwrap();
        assert_eq!(&f.payload[..], &[1, 2]);
        assert!(t
            .send(Frame::new("a", "ghost", TrafficClass::Message, vec![]))
            .is_err());
        assert_eq!(t.stats().snapshot().messages(TrafficClass::Message), 1);
    }

    #[test]
    fn threaded_fetch_meters_through_the_fabric() {
        let net = threaded();
        let t: &dyn Transport = &net;
        t.register("a");
        t.register("b");
        let delay = t.fetch("a", "b", TrafficClass::Code, 100).unwrap();
        assert!(delay.is_some());
        assert_eq!(t.stats().snapshot().bytes(TrafficClass::Code), 100);
    }
}
