//! Live threaded transport.
//!
//! [`ThreadedNet`] runs the fabric with real concurrency: every virtual
//! host owns a crossbeam channel, and a timer thread applies the
//! modelled link delay (scaled by a configurable factor) before
//! delivering each frame. This is the "autonomously running servers"
//! deployment shape of the paper; the deterministic discrete-event
//! runtime in `naplet-server` is the measurement shape.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use naplet_core::error::{NapletError, Result};

use crate::fabric::Fabric;
use crate::frame::Frame;

enum TimerCmd {
    Deliver { due: Instant, frame: Frame },
    Shutdown,
}

type Registry = Arc<Mutex<HashMap<String, Sender<Frame>>>>;

/// A live, threaded network over a [`Fabric`].
pub struct ThreadedNet {
    fabric: Fabric,
    registry: Registry,
    timer_tx: Sender<TimerCmd>,
    timer: Option<JoinHandle<()>>,
    /// Real microseconds of sleep per modelled millisecond of delay.
    /// `0` delivers immediately (tests), `1000` is real time.
    us_per_ms: u64,
}

impl ThreadedNet {
    /// Start a threaded net over `fabric`. `us_per_ms` scales modelled
    /// delay into real sleep (0 = immediate delivery).
    pub fn start(fabric: Fabric, us_per_ms: u64) -> ThreadedNet {
        let registry: Registry = Arc::new(Mutex::new(HashMap::new()));
        let (timer_tx, timer_rx) = unbounded::<TimerCmd>();
        let reg = Arc::clone(&registry);
        let timer = std::thread::Builder::new()
            .name("naplet-net-timer".into())
            .spawn(move || timer_loop(timer_rx, reg))
            .expect("spawn timer thread");
        ThreadedNet {
            fabric,
            registry,
            timer_tx,
            timer: Some(timer),
            us_per_ms,
        }
    }

    /// The underlying fabric (topology control, stats).
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Register a host and obtain its inbox.
    pub fn register(&self, host: &str) -> Receiver<Frame> {
        self.fabric.add_host(host);
        let (tx, rx) = unbounded();
        self.registry.lock().insert(host.to_string(), tx);
        rx
    }

    /// Send a frame. Returns `Ok(true)` when delivery was scheduled,
    /// `Ok(false)` when the fabric dropped it (loss/partition), and an
    /// error for unknown hosts.
    pub fn send(&self, frame: Frame) -> Result<bool> {
        let delay = self
            .fabric
            .transfer(&frame.from, &frame.to, frame.class, frame.wire_len())?;
        let Some(delay_ms) = delay else {
            return Ok(false);
        };
        let sleep_us = delay_ms * self.us_per_ms;
        if sleep_us == 0 {
            deliver(&self.registry, frame);
        } else {
            let due = Instant::now() + Duration::from_micros(sleep_us);
            self.timer_tx
                .send(TimerCmd::Deliver { due, frame })
                .map_err(|_| NapletError::Internal("timer thread gone".into()))?;
        }
        Ok(true)
    }
}

impl Drop for ThreadedNet {
    fn drop(&mut self) {
        let _ = self.timer_tx.send(TimerCmd::Shutdown);
        if let Some(h) = self.timer.take() {
            let _ = h.join();
        }
    }
}

fn deliver(registry: &Registry, frame: Frame) {
    let tx = registry.lock().get(&frame.to).cloned();
    if let Some(tx) = tx {
        // a closed inbox means the host handler exited; frame is lost
        let _ = tx.send(frame);
    }
}

fn timer_loop(rx: Receiver<TimerCmd>, registry: Registry) {
    // min-heap of (due, seq) with payloads kept alongside
    let mut heap: BinaryHeap<Reverse<(Instant, u64)>> = BinaryHeap::new();
    let mut payloads: HashMap<u64, Frame> = HashMap::new();
    let mut seq = 0u64;
    loop {
        // deliver everything due
        let now = Instant::now();
        while let Some(&Reverse((due, s))) = heap.peek() {
            if due > now {
                break;
            }
            heap.pop();
            if let Some(frame) = payloads.remove(&s) {
                deliver(&registry, frame);
            }
        }
        // wait for the next command or the next due instant
        let timeout = heap
            .peek()
            .map(|&Reverse((due, _))| due.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(50));
        match rx.recv_timeout(timeout) {
            Ok(TimerCmd::Deliver { due, frame }) => {
                heap.push(Reverse((due, seq)));
                payloads.insert(seq, frame);
                seq += 1;
            }
            Ok(TimerCmd::Shutdown) => return,
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::{Bandwidth, LatencyModel};
    use crate::stats::TrafficClass;

    fn net(latency_ms: u64, us_per_ms: u64) -> ThreadedNet {
        let fabric = Fabric::new(LatencyModel::Constant(latency_ms), Bandwidth(None), 3);
        ThreadedNet::start(fabric, us_per_ms)
    }

    #[test]
    fn immediate_delivery() {
        let net = net(5, 0);
        let _a = net.register("a");
        let b = net.register("b");
        assert!(net
            .send(Frame::new("a", "b", TrafficClass::Message, vec![1u8, 2]))
            .unwrap());
        let f = b.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(f.from, "a");
        assert_eq!(&f.payload[..], &[1, 2]);
    }

    #[test]
    fn delayed_delivery_orders_by_due_time() {
        let fabric = Fabric::new(LatencyModel::Constant(10), Bandwidth(None), 3);
        let net = ThreadedNet::start(fabric, 200); // 10ms modelled → 2ms real
        let _a = net.register("a");
        let b = net.register("b");
        let t0 = Instant::now();
        net.send(Frame::new("a", "b", TrafficClass::Message, vec![7u8]))
            .unwrap();
        let f = b.recv_timeout(Duration::from_secs(2)).unwrap();
        assert!(
            t0.elapsed() >= Duration::from_millis(1),
            "should be delayed"
        );
        assert_eq!(&f.payload[..], &[7]);
    }

    #[test]
    fn drops_respect_fabric_state() {
        let net = net(1, 0);
        let _a = net.register("a");
        let b = net.register("b");
        net.fabric().cut_link("a", "b");
        assert!(!net
            .send(Frame::new("a", "b", TrafficClass::Message, vec![]))
            .unwrap());
        assert!(b.recv_timeout(Duration::from_millis(50)).is_err());
        assert_eq!(net.fabric().stats().snapshot().dropped, 1);
    }

    #[test]
    fn unknown_destination_errors() {
        let net = net(1, 0);
        let _a = net.register("a");
        assert!(net
            .send(Frame::new("a", "ghost", TrafficClass::Message, vec![]))
            .is_err());
    }

    #[test]
    fn stats_metered_by_wire_len() {
        let net = net(1, 0);
        let _a = net.register("a");
        let _b = net.register("b");
        let frame = Frame::new("a", "b", TrafficClass::Code, vec![0u8; 100]);
        let expect = frame.wire_len();
        net.send(frame).unwrap();
        assert_eq!(
            net.fabric().stats().snapshot().bytes(TrafficClass::Code),
            expect
        );
    }

    #[test]
    fn concurrent_senders_all_deliver() {
        let net = Arc::new(net(1, 0));
        let hub = net.register("hub");
        let mut handles = Vec::new();
        for i in 0..8 {
            let net = Arc::clone(&net);
            let name = format!("w{i}");
            net.register(&name);
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    net.send(Frame::new(&name, "hub", TrafficClass::Message, vec![1u8]))
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut got = 0;
        while hub.recv_timeout(Duration::from_millis(200)).is_ok() {
            got += 1;
            if got == 400 {
                break;
            }
        }
        assert_eq!(got, 400);
    }
}
