//! Capped exponential backoff with deterministic jitter.
//!
//! One backoff engine serves every layer that retries: the
//! reliable-transfer acknowledgement timers in `naplet-server`
//! (`RetryPolicy` delegates here) and the per-peer reconnect loop of
//! the TCP transport ([`crate::tcp::TcpTransport`]). Keeping the math
//! in one place means a retransmit storm and a reconnect storm
//! de-synchronize the same way.

/// Capped exponential backoff for a 1-based attempt number:
/// `min(base << (attempt - 1), max)`. The shift amount is clamped so
/// absurd attempt numbers cannot overflow.
pub fn capped_backoff_ms(base_ms: u64, max_ms: u64, attempt: u32) -> u64 {
    let exp = attempt.saturating_sub(1).min(16);
    base_ms.saturating_mul(1u64 << exp).min(max_ms)
}

/// Backoff plus deterministic jitter in `[0, backoff/4]`, keyed on the
/// retrying entity's identity. Jitter de-synchronizes retry storms
/// while keeping discrete-event runs reproducible: the same `(key,
/// attempt)` always jitters identically.
pub fn jittered_backoff_ms(base_ms: u64, max_ms: u64, key: u64, attempt: u32) -> u64 {
    let backoff = capped_backoff_ms(base_ms, max_ms, attempt);
    let span = (backoff / 4).max(1);
    // splitmix64-style finalizer over (key, attempt)
    let mut h = key ^ (u64::from(attempt) << 32) ^ 0x9e37_79b9_7f4a_7c15;
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    backoff + (h % span)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubles_and_caps() {
        assert_eq!(capped_backoff_ms(200, 3_200, 1), 200);
        assert_eq!(capped_backoff_ms(200, 3_200, 2), 400);
        assert_eq!(capped_backoff_ms(200, 3_200, 5), 3_200);
        assert_eq!(capped_backoff_ms(200, 3_200, 6), 3_200); // capped
        assert_eq!(capped_backoff_ms(200, 3_200, 60), 3_200); // shift clamped
    }

    #[test]
    fn jitter_deterministic_and_bounded() {
        for attempt in 1..=8 {
            for key in [0u64, 1, 42, u64::MAX] {
                let a = jittered_backoff_ms(200, 3_200, key, attempt);
                let b = jittered_backoff_ms(200, 3_200, key, attempt);
                assert_eq!(a, b, "same inputs must jitter identically");
                let base = capped_backoff_ms(200, 3_200, attempt);
                assert!(a >= base && a <= base + base / 4 + 1);
            }
        }
    }

    #[test]
    fn zero_base_never_panics() {
        assert_eq!(capped_backoff_ms(0, 100, 3), 0);
        let j = jittered_backoff_ms(0, 100, 7, 3);
        assert_eq!(j, 0, "span is clamped to 1 so jitter stays 0");
    }
}
