//! Traffic accounting — the measurement backbone of every experiment.
//!
//! The fabric meters every transfer by [`TrafficClass`]: agent
//! migrations, code (lazy class loading), inter-agent messages,
//! control-plane traffic (launch/landing handshakes, directory
//! registrations) and SNMP client/server requests (the centralized
//! baseline). EXPERIMENTS.md reports these counters; the §6 claim —
//! centralized SNMP micro-management "tends to generate heavy traffic"
//! — is tested directly against them.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// What kind of payload crossed the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TrafficClass {
    /// A serialized naplet in flight (migration).
    Migration,
    /// Lazy code loading (first visit of a codebase to a host).
    Code,
    /// Inter-naplet user/system messages (post office).
    Message,
    /// Control plane: launch/landing permits, directory registration,
    /// location queries, confirmations.
    Control,
    /// Conventional client/server management traffic (SNMP baseline).
    Snmp,
    /// Anything else.
    Other,
}

impl TrafficClass {
    /// All classes, for exhaustive reporting.
    pub fn all() -> &'static [TrafficClass] {
        &[
            TrafficClass::Migration,
            TrafficClass::Code,
            TrafficClass::Message,
            TrafficClass::Control,
            TrafficClass::Snmp,
            TrafficClass::Other,
        ]
    }

    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            TrafficClass::Migration => "migration",
            TrafficClass::Code => "code",
            TrafficClass::Message => "message",
            TrafficClass::Control => "control",
            TrafficClass::Snmp => "snmp",
            TrafficClass::Other => "other",
        }
    }
}

/// Counters for one class or link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter {
    /// Number of transfers.
    pub messages: u64,
    /// Payload bytes.
    pub bytes: u64,
    /// Sum of modelled one-way delays (ms) — total latency paid.
    pub latency_ms: u64,
}

impl Counter {
    fn add(&mut self, bytes: u64, latency_ms: u64) {
        self.messages += 1;
        self.bytes += bytes;
        self.latency_ms += latency_ms;
    }
}

#[derive(Debug, Default)]
struct Inner {
    by_class: BTreeMap<TrafficClass, Counter>,
    by_link: BTreeMap<(String, String), Counter>,
    dropped: u64,
    retransmits: u64,
    crashes: u64,
    recoveries: u64,
}

/// Shared, thread-safe traffic statistics.
#[derive(Debug, Clone, Default)]
pub struct NetStats {
    inner: Arc<Mutex<Inner>>,
}

/// An immutable snapshot of the counters.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// Per-class totals.
    pub by_class: BTreeMap<TrafficClass, Counter>,
    /// Per-directed-link totals.
    pub by_link: BTreeMap<(String, String), Counter>,
    /// Transfers dropped by loss/partition injection.
    pub dropped: u64,
    /// Transfers that were retransmissions (attempt ≥ 2) of an earlier
    /// send — the visible cost of the reliable-transfer layer.
    pub retransmits: u64,
    /// Process crashes injected into the space (crash-and-restart
    /// schedules; each wipes one server's volatile state).
    pub crashes: u64,
    /// Recovery replays completed: a crashed server restarted and
    /// rehydrated its journal.
    pub recoveries: u64,
}

impl StatsSnapshot {
    /// Total bytes across all classes.
    pub fn total_bytes(&self) -> u64 {
        self.by_class.values().map(|c| c.bytes).sum()
    }

    /// Total transfers across all classes.
    pub fn total_messages(&self) -> u64 {
        self.by_class.values().map(|c| c.messages).sum()
    }

    /// Bytes for one class.
    pub fn bytes(&self, class: TrafficClass) -> u64 {
        self.by_class.get(&class).map(|c| c.bytes).unwrap_or(0)
    }

    /// Transfer count for one class.
    pub fn messages(&self, class: TrafficClass) -> u64 {
        self.by_class.get(&class).map(|c| c.messages).unwrap_or(0)
    }

    /// Difference `self - earlier`, over per-class and per-link
    /// counters alike.
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        let mut out = self.clone();
        for (class, c) in &mut out.by_class {
            if let Some(e) = earlier.by_class.get(class) {
                c.messages -= e.messages.min(c.messages);
                c.bytes -= e.bytes.min(c.bytes);
                c.latency_ms -= e.latency_ms.min(c.latency_ms);
            }
        }
        for (link, c) in &mut out.by_link {
            if let Some(e) = earlier.by_link.get(link) {
                c.messages -= e.messages.min(c.messages);
                c.bytes -= e.bytes.min(c.bytes);
                c.latency_ms -= e.latency_ms.min(c.latency_ms);
            }
        }
        out.dropped -= earlier.dropped.min(out.dropped);
        out.retransmits -= earlier.retransmits.min(out.retransmits);
        out.crashes -= earlier.crashes.min(out.crashes);
        out.recoveries -= earlier.recoveries.min(out.recoveries);
        out
    }
}

impl NetStats {
    /// Fresh, zeroed statistics.
    pub fn new() -> NetStats {
        NetStats::default()
    }

    /// Record one transfer.
    pub fn record(&self, from: &str, to: &str, class: TrafficClass, bytes: u64, latency_ms: u64) {
        let mut inner = self.inner.lock();
        inner
            .by_class
            .entry(class)
            .or_default()
            .add(bytes, latency_ms);
        inner
            .by_link
            .entry((from.to_string(), to.to_string()))
            .or_default()
            .add(bytes, latency_ms);
    }

    /// Record a dropped transfer (loss / partition).
    pub fn record_drop(&self) {
        self.inner.lock().dropped += 1;
    }

    /// Record a retransmission (a send whose attempt number is ≥ 2).
    pub fn record_retransmit(&self) {
        self.inner.lock().retransmits += 1;
    }

    /// Record an injected process crash.
    pub fn record_crash(&self) {
        self.inner.lock().crashes += 1;
    }

    /// Record a completed crash-recovery replay.
    pub fn record_recovery(&self) {
        self.inner.lock().recoveries += 1;
    }

    /// Take a snapshot of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        let inner = self.inner.lock();
        StatsSnapshot {
            by_class: inner.by_class.clone(),
            by_link: inner.by_link.clone(),
            dropped: inner.dropped,
            retransmits: inner.retransmits,
            crashes: inner.crashes,
            recoveries: inner.recoveries,
        }
    }

    /// Reset everything to zero.
    pub fn reset(&self) {
        let mut inner = self.inner.lock();
        *inner = Inner::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let s = NetStats::new();
        s.record("a", "b", TrafficClass::Migration, 100, 5);
        s.record("a", "b", TrafficClass::Migration, 50, 3);
        s.record("b", "a", TrafficClass::Message, 10, 1);
        let snap = s.snapshot();
        assert_eq!(snap.bytes(TrafficClass::Migration), 150);
        assert_eq!(snap.messages(TrafficClass::Migration), 2);
        assert_eq!(snap.bytes(TrafficClass::Message), 10);
        assert_eq!(snap.total_bytes(), 160);
        assert_eq!(snap.total_messages(), 3);
        assert_eq!(
            snap.by_link
                .get(&("a".to_string(), "b".to_string()))
                .unwrap()
                .bytes,
            150
        );
        assert_eq!(
            snap.by_class
                .get(&TrafficClass::Migration)
                .unwrap()
                .latency_ms,
            8
        );
    }

    #[test]
    fn drops_counted() {
        let s = NetStats::new();
        s.record_drop();
        s.record_drop();
        assert_eq!(s.snapshot().dropped, 2);
    }

    #[test]
    fn reset_zeroes() {
        let s = NetStats::new();
        s.record("a", "b", TrafficClass::Snmp, 7, 1);
        s.reset();
        assert_eq!(s.snapshot().total_bytes(), 0);
        assert_eq!(s.snapshot().dropped, 0);
    }

    #[test]
    fn since_subtracts() {
        let s = NetStats::new();
        s.record("a", "b", TrafficClass::Snmp, 100, 2);
        let t0 = s.snapshot();
        s.record("a", "b", TrafficClass::Snmp, 40, 1);
        s.record_drop();
        let delta = s.snapshot().since(&t0);
        assert_eq!(delta.bytes(TrafficClass::Snmp), 40);
        assert_eq!(delta.messages(TrafficClass::Snmp), 1);
        assert_eq!(delta.dropped, 1);
    }

    #[test]
    fn since_subtracts_per_link_counters() {
        let s = NetStats::new();
        s.record("a", "b", TrafficClass::Control, 100, 2);
        s.record("b", "a", TrafficClass::Control, 30, 1);
        let t0 = s.snapshot();
        s.record("a", "b", TrafficClass::Control, 40, 1);
        let delta = s.snapshot().since(&t0);
        let ab = delta
            .by_link
            .get(&("a".to_string(), "b".to_string()))
            .unwrap();
        assert_eq!(ab.messages, 1, "a→b delta must not include the baseline");
        assert_eq!(ab.bytes, 40);
        assert_eq!(ab.latency_ms, 1);
        let ba = delta
            .by_link
            .get(&("b".to_string(), "a".to_string()))
            .unwrap();
        assert_eq!(*ba, Counter::default(), "quiet links delta to zero");
    }

    #[test]
    fn retransmits_counted_and_subtracted() {
        let s = NetStats::new();
        s.record_retransmit();
        let t0 = s.snapshot();
        assert_eq!(t0.retransmits, 1);
        s.record_retransmit();
        s.record_retransmit();
        assert_eq!(s.snapshot().since(&t0).retransmits, 2);
    }

    #[test]
    fn crashes_and_recoveries_counted_and_subtracted() {
        let s = NetStats::new();
        s.record_crash();
        s.record_recovery();
        let t0 = s.snapshot();
        assert_eq!(t0.crashes, 1);
        assert_eq!(t0.recoveries, 1);
        s.record_crash();
        s.record_crash();
        s.record_recovery();
        let delta = s.snapshot().since(&t0);
        assert_eq!(delta.crashes, 2);
        assert_eq!(delta.recoveries, 1);
    }

    #[test]
    fn snapshot_is_shared_across_clones() {
        let s = NetStats::new();
        let s2 = s.clone();
        s2.record("x", "y", TrafficClass::Control, 1, 0);
        assert_eq!(s.snapshot().messages(TrafficClass::Control), 1);
    }

    #[test]
    fn class_labels_unique() {
        let mut labels: Vec<&str> = TrafficClass::all().iter().map(|c| c.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), TrafficClass::all().len());
    }
}
