//! Deterministic discrete-event core.
//!
//! [`EventQueue`] orders events by virtual time with FIFO tie-breaking
//! (a monotone sequence number), which makes every simulation run
//! bit-for-bit reproducible for a given fabric seed. The naplet-server
//! runtime drives its whole multi-server world off one such queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event queue over virtual milliseconds.
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
    now: u64,
}

#[derive(Debug)]
struct Entry<T> {
    time: u64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so earliest (time, seq) pops first
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

impl<T> EventQueue<T> {
    /// Empty queue at time 0.
    pub fn new() -> EventQueue<T> {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0,
        }
    }

    /// Current virtual time (the time of the last popped event).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Schedule at an absolute virtual time. Times in the past are
    /// clamped to `now` (events never travel backwards).
    pub fn push_at(&mut self, time: u64, payload: T) {
        let time = time.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// Schedule `delay` ms after the current time.
    pub fn push_after(&mut self, delay: u64, payload: T) {
        self.push_at(self.now.saturating_add(delay), payload);
    }

    /// Time of the earliest pending event, without popping it.
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|e| e.time)
    }

    /// The earliest pending event's payload, without popping it
    /// (drivers use this to aim fault injection at the next event).
    pub fn peek(&self) -> Option<&T> {
        self.heap.peek().map(|e| &e.payload)
    }

    /// Pop the earliest event, advancing virtual time to it.
    pub fn pop(&mut self) -> Option<(u64, T)> {
        self.heap.pop().map(|e| {
            self.now = e.time;
            (e.time, e.payload)
        })
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending (quiescence).
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push_at(30, "c");
        q.push_at(10, "a");
        q.push_at(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.now(), 20);
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_tie_break_at_same_time() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push_at(5, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn push_after_uses_now() {
        let mut q = EventQueue::new();
        q.push_at(100, "x");
        q.pop();
        q.push_after(5, "y");
        assert_eq!(q.pop(), Some((105, "y")));
    }

    #[test]
    fn past_times_clamped() {
        let mut q = EventQueue::new();
        q.push_at(50, "a");
        q.pop();
        q.push_at(10, "late");
        assert_eq!(q.pop(), Some((50, "late")));
        assert_eq!(q.now(), 50);
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push_at(1, ());
        q.push_at(2, ());
        assert_eq!(q.len(), 2);
        q.pop();
        q.pop();
        assert!(q.is_empty());
    }
}
