//! Deterministic discrete-event core.
//!
//! [`EventQueue`] orders events by virtual time with FIFO tie-breaking,
//! which makes every simulation run bit-for-bit reproducible for a
//! given fabric seed. The naplet-server runtime drives its whole
//! multi-server world off one such queue.
//!
//! Two interchangeable backends exist. The default is a *bucketed*
//! queue — a `BTreeMap` from virtual time to a FIFO of payloads —
//! which fits the workload's shape: most events land in a handful of
//! near-future time buckets (link latency plus dwell), so scheduling
//! is an O(log #distinct-times) map probe plus a `VecDeque` push
//! instead of a full heap sift of every pending event. The original
//! global [`BinaryHeap`] remains available via
//! [`EventQueue::with_heap_backend`] so benchmarks can A/B the two;
//! both pop in exactly the same (time, insertion) order.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

/// An event queue over virtual milliseconds.
#[derive(Debug)]
pub struct EventQueue<T> {
    backend: Backend<T>,
    seq: u64,
    len: usize,
    now: u64,
}

#[derive(Debug)]
enum Backend<T> {
    /// Per-time FIFO buckets; insertion order within a bucket is the
    /// global sequence order, so pops match the heap exactly.
    Bucketed(BTreeMap<u64, VecDeque<T>>),
    /// The original single max-heap (kept for baseline comparison).
    Heap(BinaryHeap<Entry<T>>),
}

#[derive(Debug)]
struct Entry<T> {
    time: u64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so earliest (time, seq) pops first
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

impl<T> EventQueue<T> {
    /// Empty queue at time 0 (bucketed backend).
    pub fn new() -> EventQueue<T> {
        EventQueue {
            backend: Backend::Bucketed(BTreeMap::new()),
            seq: 0,
            len: 0,
            now: 0,
        }
    }

    /// Empty queue at time 0 using the legacy binary-heap backend.
    /// Identical observable behaviour; exists so the bench suite can
    /// measure the bucketed backend against the original.
    pub fn with_heap_backend() -> EventQueue<T> {
        EventQueue {
            backend: Backend::Heap(BinaryHeap::new()),
            seq: 0,
            len: 0,
            now: 0,
        }
    }

    /// Current virtual time (the time of the last popped event).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Schedule at an absolute virtual time. Times in the past are
    /// clamped to `now` (events never travel backwards).
    pub fn push_at(&mut self, time: u64, payload: T) {
        let time = time.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.len += 1;
        match &mut self.backend {
            Backend::Bucketed(buckets) => {
                buckets.entry(time).or_default().push_back(payload);
            }
            Backend::Heap(heap) => heap.push(Entry { time, seq, payload }),
        }
    }

    /// Schedule `delay` ms after the current time.
    pub fn push_after(&mut self, delay: u64, payload: T) {
        self.push_at(self.now.saturating_add(delay), payload);
    }

    /// Time of the earliest pending event, without popping it.
    pub fn peek_time(&self) -> Option<u64> {
        match &self.backend {
            Backend::Bucketed(buckets) => buckets.keys().next().copied(),
            Backend::Heap(heap) => heap.peek().map(|e| e.time),
        }
    }

    /// The earliest pending event's payload, without popping it
    /// (drivers use this to aim fault injection at the next event).
    pub fn peek(&self) -> Option<&T> {
        match &self.backend {
            Backend::Bucketed(buckets) => buckets.first_key_value().and_then(|(_, q)| q.front()),
            Backend::Heap(heap) => heap.peek().map(|e| &e.payload),
        }
    }

    /// Pop the earliest event, advancing virtual time to it.
    pub fn pop(&mut self) -> Option<(u64, T)> {
        let popped = match &mut self.backend {
            Backend::Bucketed(buckets) => {
                let mut entry = buckets.first_entry()?;
                let time = *entry.key();
                let payload = entry.get_mut().pop_front().expect("bucket never empty");
                if entry.get().is_empty() {
                    entry.remove();
                }
                (time, payload)
            }
            Backend::Heap(heap) => {
                let e = heap.pop()?;
                (e.time, e.payload)
            }
        };
        self.len -= 1;
        self.now = popped.0;
        Some(popped)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending (quiescence).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both() -> [EventQueue<&'static str>; 2] {
        [EventQueue::new(), EventQueue::with_heap_backend()]
    }

    #[test]
    fn pops_in_time_order() {
        for mut q in both() {
            q.push_at(30, "c");
            q.push_at(10, "a");
            q.push_at(20, "b");
            assert_eq!(q.pop(), Some((10, "a")));
            assert_eq!(q.pop(), Some((20, "b")));
            assert_eq!(q.now(), 20);
            assert_eq!(q.pop(), Some((30, "c")));
            assert_eq!(q.pop(), None);
        }
    }

    #[test]
    fn fifo_tie_break_at_same_time() {
        for mut q in [EventQueue::new(), EventQueue::with_heap_backend()] {
            for i in 0..10 {
                q.push_at(5, i);
            }
            let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
            assert_eq!(order, (0..10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn push_after_uses_now() {
        for mut q in both() {
            q.push_at(100, "x");
            q.pop();
            q.push_after(5, "y");
            assert_eq!(q.pop(), Some((105, "y")));
        }
    }

    #[test]
    fn past_times_clamped() {
        for mut q in both() {
            q.push_at(50, "a");
            q.pop();
            q.push_at(10, "late");
            assert_eq!(q.pop(), Some((50, "late")));
            assert_eq!(q.now(), 50);
        }
    }

    #[test]
    fn len_and_empty() {
        for mut q in [EventQueue::<()>::new(), EventQueue::with_heap_backend()] {
            assert!(q.is_empty());
            q.push_at(1, ());
            q.push_at(2, ());
            assert_eq!(q.len(), 2);
            q.peek();
            q.peek_time();
            assert_eq!(q.len(), 2);
            q.pop();
            q.pop();
            assert!(q.is_empty());
        }
    }

    /// The optimization contract: for any interleaving of pushes and
    /// pops the two backends emit identical (time, payload) streams.
    #[test]
    fn bucketed_and_heap_pop_identically() {
        let mut fast = EventQueue::new();
        let mut slow = EventQueue::with_heap_backend();
        // deterministic LCG drives a mixed push/pop schedule
        let mut rng: u64 = 0x5eed_cafe;
        let mut step = || {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            rng >> 33
        };
        for i in 0..2_000u64 {
            let op = step() % 4;
            if op < 3 {
                let delay = step() % 17; // heavy tie collisions
                fast.push_after(delay, i);
                slow.push_after(delay, i);
            } else {
                assert_eq!(fast.pop(), slow.pop());
            }
            assert_eq!(fast.len(), slow.len());
            assert_eq!(fast.peek_time(), slow.peek_time());
            assert_eq!(fast.peek(), slow.peek());
        }
        loop {
            let (a, b) = (fast.pop(), slow.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
