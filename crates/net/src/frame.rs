//! Wire framing for the threaded transport.
//!
//! A [`Frame`] is what actually crosses a link: source, destination,
//! traffic class and an opaque payload. Frames encode to a
//! length-prefixed binary layout over [`bytes::Bytes`] so a stream
//! transport can delimit them; [`Frame::wire_len`] is the byte count
//! the fabric meters.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use naplet_core::error::{NapletError, Result};
use naplet_core::tracectx::TraceCtx;

use crate::stats::TrafficClass;

/// High bit of the class-tag byte: set when a [`TraceCtx`] extension
/// block follows it. Frames without context encode byte-identically to
/// the pre-tracing layout (class tags only use the low 3 bits).
const CTX_FLAG: u8 = 0x80;

/// One transport frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Sending host.
    pub from: String,
    /// Destination host.
    pub to: String,
    /// Traffic class for metering.
    pub class: TrafficClass,
    /// Opaque payload (already codec-encoded by the caller).
    pub payload: Bytes,
    /// Optional wire-propagated trace context (absent unless the
    /// sending node has tracing or its flight recorder on).
    pub ctx: Option<TraceCtx>,
}

fn class_tag(c: TrafficClass) -> u8 {
    match c {
        TrafficClass::Migration => 0,
        TrafficClass::Code => 1,
        TrafficClass::Message => 2,
        TrafficClass::Control => 3,
        TrafficClass::Snmp => 4,
        TrafficClass::Other => 5,
    }
}

fn tag_class(t: u8) -> Result<TrafficClass> {
    Ok(match t {
        0 => TrafficClass::Migration,
        1 => TrafficClass::Code,
        2 => TrafficClass::Message,
        3 => TrafficClass::Control,
        4 => TrafficClass::Snmp,
        5 => TrafficClass::Other,
        other => return Err(NapletError::Codec(format!("bad traffic class tag {other}"))),
    })
}

impl Frame {
    /// Build a frame (no trace context).
    pub fn new(from: &str, to: &str, class: TrafficClass, payload: impl Into<Bytes>) -> Frame {
        Frame {
            from: from.to_string(),
            to: to.to_string(),
            class,
            payload: payload.into(),
            ctx: None,
        }
    }

    /// Attach (or clear) the trace-context extension.
    pub fn with_ctx(mut self, ctx: Option<TraceCtx>) -> Frame {
        self.ctx = ctx;
        self
    }

    /// Total encoded length in bytes (what the fabric meters).
    pub fn wire_len(&self) -> u64 {
        // 4 (frame len) + 1 (class) [+ ctx block] + 2×(2 + name) + payload
        let ctx_len = match &self.ctx {
            Some(ctx) => 2 + ctx.journey.len() + 2 + ctx.origin.len() + 4 + 8,
            None => 0,
        };
        (4 + 1 + ctx_len + 2 + self.from.len() + 2 + self.to.len() + self.payload.len()) as u64
    }

    /// Encode to a self-delimiting byte string.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.wire_len() as usize);
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Encode by appending to a caller-supplied buffer, so batch
    /// senders reuse one allocation across many frames instead of a
    /// fresh `BytesMut` each. Bytes appended are exactly
    /// [`Frame::encode`].
    pub fn encode_into(&self, buf: &mut impl BufMut) {
        let body_len = self.wire_len() as u32 - 4;
        buf.put_u32(body_len);
        match &self.ctx {
            None => buf.put_u8(class_tag(self.class)),
            Some(ctx) => {
                buf.put_u8(class_tag(self.class) | CTX_FLAG);
                buf.put_u16(ctx.journey.len() as u16);
                buf.put_slice(ctx.journey.as_bytes());
                buf.put_u16(ctx.origin.len() as u16);
                buf.put_slice(ctx.origin.as_bytes());
                buf.put_u32(ctx.hop);
                buf.put_u64(ctx.seq);
            }
        }
        buf.put_u16(self.from.len() as u16);
        buf.put_slice(self.from.as_bytes());
        buf.put_u16(self.to.len() as u16);
        buf.put_slice(self.to.as_bytes());
        buf.put_slice(&self.payload);
    }

    /// Decode one frame from the start of `buf`, consuming it.
    /// Returns `Ok(None)` when `buf` does not yet hold a full frame
    /// (stream reassembly).
    pub fn decode(buf: &mut BytesMut) -> Result<Option<Frame>> {
        Frame::decode_limited(buf, u32::MAX as usize)
    }

    /// [`Frame::decode`] with a frame-size ceiling: a length prefix
    /// claiming a body larger than `max_frame_bytes` is rejected
    /// immediately instead of making a stream reader buffer (or wait
    /// for) gigabytes that will never arrive. Socket transports use
    /// this so a malformed or hostile peer costs one counted drop, not
    /// a hang or an allocation bomb.
    pub fn decode_limited(buf: &mut BytesMut, max_frame_bytes: usize) -> Result<Option<Frame>> {
        if buf.len() < 4 {
            return Ok(None);
        }
        let body_len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
        if body_len > max_frame_bytes {
            return Err(NapletError::Codec(format!(
                "frame body of {body_len} bytes exceeds the {max_frame_bytes}-byte limit"
            )));
        }
        if buf.len() < 4 + body_len {
            return Ok(None);
        }
        buf.advance(4);
        let mut body = buf.split_to(body_len);
        let tag = get_u8(&mut body)?;
        let class = tag_class(tag & !CTX_FLAG)?;
        let ctx = if tag & CTX_FLAG != 0 {
            let journey = get_string(&mut body)?;
            let origin = get_string(&mut body)?;
            let hop = get_u32(&mut body)?;
            let seq = get_u64(&mut body)?;
            Some(TraceCtx {
                journey,
                origin,
                hop,
                seq,
            })
        } else {
            None
        };
        let from = get_string(&mut body)?;
        let to = get_string(&mut body)?;
        let payload = body.freeze();
        Ok(Some(Frame {
            from,
            to,
            class,
            payload,
            ctx,
        }))
    }
}

fn get_u8(b: &mut BytesMut) -> Result<u8> {
    if b.is_empty() {
        return Err(NapletError::Codec("frame truncated (u8)".into()));
    }
    Ok(b.get_u8())
}

fn get_u32(b: &mut BytesMut) -> Result<u32> {
    if b.len() < 4 {
        return Err(NapletError::Codec("frame truncated (u32)".into()));
    }
    Ok(b.get_u32())
}

fn get_u64(b: &mut BytesMut) -> Result<u64> {
    if b.len() < 8 {
        return Err(NapletError::Codec("frame truncated (u64)".into()));
    }
    Ok(b.get_u64())
}

fn get_string(b: &mut BytesMut) -> Result<String> {
    if b.len() < 2 {
        return Err(NapletError::Codec("frame truncated (len)".into()));
    }
    let n = b.get_u16() as usize;
    if b.len() < n {
        return Err(NapletError::Codec("frame truncated (name)".into()));
    }
    // validate on the borrowed bytes; only a valid name pays for the
    // owned String
    let name = std::str::from_utf8(&b[..n])
        .map_err(|e| NapletError::Codec(format!("bad utf8: {e}")))?
        .to_string();
    b.advance(n);
    Ok(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let f = Frame::new("alpha", "beta", TrafficClass::Migration, vec![1u8, 2, 3]);
        let mut buf = BytesMut::from(&f.encode()[..]);
        let back = Frame::decode(&mut buf).unwrap().unwrap();
        assert_eq!(back, f);
        assert!(buf.is_empty());
    }

    #[test]
    fn wire_len_matches_encoding() {
        for payload_len in [0usize, 1, 100, 4096] {
            let f = Frame::new("a", "bb", TrafficClass::Snmp, vec![0u8; payload_len]);
            assert_eq!(f.encode().len() as u64, f.wire_len());
        }
    }

    #[test]
    fn partial_frames_wait_for_more() {
        let f = Frame::new("x", "y", TrafficClass::Message, vec![9u8; 50]);
        let encoded = f.encode();
        let mut buf = BytesMut::from(&encoded[..10]);
        assert_eq!(Frame::decode(&mut buf).unwrap(), None);
        buf.extend_from_slice(&encoded[10..]);
        assert_eq!(Frame::decode(&mut buf).unwrap(), Some(f));
    }

    #[test]
    fn two_frames_in_one_buffer() {
        let a = Frame::new("a", "b", TrafficClass::Control, vec![1u8]);
        let b = Frame::new("b", "a", TrafficClass::Other, vec![2u8, 2]);
        let mut buf = BytesMut::new();
        buf.extend_from_slice(&a.encode());
        buf.extend_from_slice(&b.encode());
        assert_eq!(Frame::decode(&mut buf).unwrap(), Some(a));
        assert_eq!(Frame::decode(&mut buf).unwrap(), Some(b));
        assert_eq!(Frame::decode(&mut buf).unwrap(), None);
    }

    #[test]
    fn all_classes_round_trip() {
        for &c in TrafficClass::all() {
            let f = Frame::new("s", "d", c, vec![]);
            let mut buf = BytesMut::from(&f.encode()[..]);
            assert_eq!(Frame::decode(&mut buf).unwrap().unwrap().class, c);
        }
    }

    #[test]
    fn encode_into_appends_identical_bytes() {
        let a = Frame::new("alpha", "beta", TrafficClass::Migration, vec![7u8; 32]);
        let b = Frame::new("beta", "alpha", TrafficClass::Message, vec![1u8, 2]);
        let mut buf = BytesMut::new();
        a.encode_into(&mut buf);
        b.encode_into(&mut buf);
        let mut expected = Vec::new();
        expected.extend_from_slice(&a.encode());
        expected.extend_from_slice(&b.encode());
        assert_eq!(&buf[..], expected.as_slice());
        assert_eq!(Frame::decode(&mut buf).unwrap(), Some(a));
        assert_eq!(Frame::decode(&mut buf).unwrap(), Some(b));
    }

    #[test]
    fn invalid_utf8_name_rejected() {
        let f = Frame::new("ab", "cd", TrafficClass::Control, vec![]);
        let mut raw = BytesMut::from(&f.encode()[..]);
        raw[7] = 0xff; // first byte of `from`
        assert!(Frame::decode(&mut raw).is_err());
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        // a malformed prefix claiming a 64 MiB body must error at once,
        // not wait for 64 MiB that will never arrive
        let mut buf = BytesMut::new();
        buf.put_u32(64 * 1024 * 1024);
        buf.put_slice(&[0u8; 16]);
        let err = Frame::decode_limited(&mut buf, 1024 * 1024).unwrap_err();
        assert!(err.to_string().contains("exceeds"), "{err}");
    }

    #[test]
    fn limit_boundary_is_inclusive() {
        let f = Frame::new("a", "b", TrafficClass::Message, vec![3u8; 100]);
        let body = f.wire_len() as usize - 4;
        let mut buf = BytesMut::from(&f.encode()[..]);
        assert_eq!(Frame::decode_limited(&mut buf, body).unwrap(), Some(f));
        let g = Frame::new("a", "b", TrafficClass::Message, vec![3u8; 101]);
        let mut buf = BytesMut::from(&g.encode()[..]);
        assert!(Frame::decode_limited(&mut buf, body).is_err());
    }

    fn sample_ctx() -> TraceCtx {
        TraceCtx {
            journey: "naplet://czxu@home/1".into(),
            origin: "home".into(),
            hop: 3,
            seq: 17,
        }
    }

    #[test]
    fn ctx_extension_round_trips() {
        let f = Frame::new("alpha", "beta", TrafficClass::Migration, vec![1u8, 2, 3])
            .with_ctx(Some(sample_ctx()));
        assert_eq!(f.encode().len() as u64, f.wire_len());
        let mut buf = BytesMut::from(&f.encode()[..]);
        let back = Frame::decode(&mut buf).unwrap().unwrap();
        assert_eq!(back, f);
        assert_eq!(back.ctx.as_ref().unwrap().seq, 17);
        assert!(buf.is_empty());
    }

    #[test]
    fn ctx_free_encoding_is_byte_stable() {
        // a frame without context must encode exactly as it did before
        // the extension existed: no flag bit, no extra bytes
        let f = Frame::new("alpha", "beta", TrafficClass::Code, vec![9u8; 8]);
        let encoded = f.encode();
        assert_eq!(encoded[4], 1, "bare class tag, no CTX_FLAG");
        assert_eq!(
            encoded.len(),
            4 + 1 + 2 + 5 + 2 + 4 + 8,
            "pre-extension layout"
        );
        let with = f.clone().with_ctx(Some(sample_ctx()));
        assert!(with.encode()[4] & CTX_FLAG != 0);
        assert!(with.wire_len() > f.wire_len());
    }

    #[test]
    fn truncated_ctx_block_rejected() {
        let f = Frame::new("a", "b", TrafficClass::Message, vec![]).with_ctx(Some(sample_ctx()));
        let encoded = f.encode();
        // lie about the body length so the ctx block runs off the end
        let mut raw = BytesMut::from(&encoded[..12]);
        let short = (raw.len() - 4) as u32;
        raw[..4].copy_from_slice(&short.to_be_bytes());
        assert!(Frame::decode(&mut raw).is_err());
    }

    #[test]
    fn corrupt_class_tag_rejected() {
        let f = Frame::new("s", "d", TrafficClass::Other, vec![]);
        let mut raw = BytesMut::from(&f.encode()[..]);
        raw[4] = 99; // class byte
        assert!(Frame::decode(&mut raw).is_err());
    }
}
