//! Link latency and bandwidth models.
//!
//! Every transfer on the fabric costs `propagation + size/bandwidth`
//! milliseconds. Propagation comes from a configurable [`LatencyModel`];
//! bandwidth from a per-fabric [`Bandwidth`]. Presets approximate the
//! environments the paper targets: a campus LAN (the authors' testbed)
//! and the open Internet/WAN that motivates mobile agents in the first
//! place (reasons (a)/(b) of Lange & Oshima's list: reduce network
//! load, overcome latency).

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Propagation delay model between two hosts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum LatencyModel {
    /// Fixed one-way delay in ms.
    Constant(u64),
    /// Uniformly jittered delay in `[min, max]` ms.
    Uniform {
        /// Lower bound (ms).
        min: u64,
        /// Upper bound (ms), inclusive.
        max: u64,
    },
    /// Explicit per-link delays with a default for unlisted links.
    /// Keys are `(from, to)` pairs; lookups try `(from,to)` then
    /// `(to,from)` (symmetric links).
    PerLink {
        /// Explicit link delays.
        links: BTreeMap<(String, String), u64>,
        /// Delay for links not listed.
        default: u64,
    },
}

impl LatencyModel {
    /// Campus LAN preset: ~1 ms, light jitter.
    pub fn lan() -> LatencyModel {
        LatencyModel::Uniform { min: 1, max: 3 }
    }

    /// Wide-area preset: ~40–120 ms.
    pub fn wan() -> LatencyModel {
        LatencyModel::Uniform { min: 40, max: 120 }
    }

    /// Sample the one-way propagation delay for a link.
    pub fn delay_ms(&self, from: &str, to: &str, rng: &mut impl Rng) -> u64 {
        match self {
            LatencyModel::Constant(ms) => *ms,
            LatencyModel::Uniform { min, max } => {
                if min >= max {
                    *min
                } else {
                    rng.gen_range(*min..=*max)
                }
            }
            LatencyModel::PerLink { links, default } => links
                .get(&(from.to_string(), to.to_string()))
                .or_else(|| links.get(&(to.to_string(), from.to_string())))
                .copied()
                .unwrap_or(*default),
        }
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::lan()
    }
}

/// Link bandwidth in bytes per millisecond (`None` = infinite).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Bandwidth(pub Option<u64>);

impl Bandwidth {
    /// 100 Mbit/s ≈ 12_500 bytes/ms.
    pub fn fast_ethernet() -> Bandwidth {
        Bandwidth(Some(12_500))
    }

    /// 1.5 Mbit/s uplink ≈ 190 bytes/ms (early-2000s WAN).
    pub fn t1() -> Bandwidth {
        Bandwidth(Some(190))
    }

    /// Serialization delay for a payload of `bytes`.
    pub fn transfer_ms(&self, bytes: u64) -> u64 {
        match self.0 {
            None => 0,
            Some(bpms) => bytes.div_ceil(bpms.max(1)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn constant_is_constant() {
        let m = LatencyModel::Constant(5);
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(m.delay_ms("a", "b", &mut r), 5);
        }
    }

    #[test]
    fn uniform_within_bounds_and_varies() {
        let m = LatencyModel::Uniform { min: 10, max: 20 };
        let mut r = rng();
        let samples: Vec<u64> = (0..100).map(|_| m.delay_ms("a", "b", &mut r)).collect();
        assert!(samples.iter().all(|&s| (10..=20).contains(&s)));
        assert!(samples.iter().any(|&s| s != samples[0]), "should jitter");
        // degenerate range
        let m = LatencyModel::Uniform { min: 7, max: 7 };
        assert_eq!(m.delay_ms("a", "b", &mut r), 7);
    }

    #[test]
    fn per_link_symmetric_lookup() {
        let mut links = BTreeMap::new();
        links.insert(("a".to_string(), "b".to_string()), 3);
        let m = LatencyModel::PerLink { links, default: 9 };
        let mut r = rng();
        assert_eq!(m.delay_ms("a", "b", &mut r), 3);
        assert_eq!(m.delay_ms("b", "a", &mut r), 3);
        assert_eq!(m.delay_ms("a", "c", &mut r), 9);
    }

    #[test]
    fn bandwidth_transfer_times() {
        assert_eq!(Bandwidth(None).transfer_ms(1 << 30), 0);
        assert_eq!(Bandwidth(Some(1000)).transfer_ms(0), 0);
        assert_eq!(Bandwidth(Some(1000)).transfer_ms(1), 1);
        assert_eq!(Bandwidth(Some(1000)).transfer_ms(1000), 1);
        assert_eq!(Bandwidth(Some(1000)).transfer_ms(1001), 2);
        assert!(
            Bandwidth::t1().transfer_ms(100_000) > Bandwidth::fast_ethernet().transfer_ms(100_000)
        );
    }

    #[test]
    fn presets_sensible() {
        let mut r = rng();
        let lan = LatencyModel::lan().delay_ms("a", "b", &mut r);
        let wan = LatencyModel::wan().delay_ms("a", "b", &mut r);
        assert!(lan < 10);
        assert!(wan >= 40);
    }
}
