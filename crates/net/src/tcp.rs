//! Real-socket transport: length-prefixed [`Frame`]s over TCP.
//!
//! [`TcpTransport`] is the multi-process deployment shape of the
//! paper: one `napletd` process per host, each hosting one
//! NapletServer, exchanging the already-byte-stable [`Frame`] codec
//! over persistent per-peer connections. The design mirrors the
//! in-process fabric's fault semantics so the reliable-transfer layer
//! above needs no changes:
//!
//! * every fault — an unreachable peer, a mid-write connection drop, a
//!   reset, a short read, a malformed or oversized length prefix — is
//!   a *counted drop* in [`NetStats`], never a panic, exactly like an
//!   injected fault-schedule loss on the fabric;
//! * outbound connections are persistent and reconnect on drop with
//!   the capped, deterministically-jittered backoff of
//!   [`crate::backoff`] (the same machinery the acknowledgement timers
//!   use), so a restarted peer is re-reached by the very next
//!   retransmission after the backoff window;
//! * frames arrive byte-identical to what was sent — the loopback
//!   parity suite holds this transport to the in-process fabric frame
//!   for frame.
//!
//! Peers are static (the cluster-bootstrap config's peer list);
//! discovery is future work tracked in ROADMAP.md.

use std::collections::{BTreeMap, HashMap};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::BytesMut;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use naplet_core::error::{NapletError, Result};

use crate::backoff::jittered_backoff_ms;
use crate::frame::Frame;
use crate::stats::{NetStats, TrafficClass};
use crate::transport::Transport;

/// Static configuration of one TCP transport endpoint.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Address to listen on (`0.0.0.0:port`, or port `0` for tests).
    pub listen: SocketAddr,
    /// Static peer list: node name → address.
    pub peers: BTreeMap<String, SocketAddr>,
    /// Reject frames whose length prefix claims a body larger than
    /// this (a malformed or hostile peer costs one drop, not a hang).
    pub max_frame_bytes: usize,
    /// Timeout for one outbound connection attempt.
    pub connect_timeout_ms: u64,
    /// Deadline for one outbound frame write. A peer that accepted the
    /// connection but stopped draining it (wedged process, full socket
    /// buffers) stalls `write` forever without this; with it the frame
    /// becomes a counted drop and the connection re-dials through the
    /// reconnect backoff. `0` disables the deadline.
    pub write_timeout_ms: u64,
    /// First-attempt reconnect backoff (doubles per failed attempt).
    pub reconnect_base_ms: u64,
    /// Reconnect backoff cap.
    pub reconnect_max_ms: u64,
}

impl TcpConfig {
    /// Config listening on `listen` with the given peer list and
    /// defaults for everything else.
    pub fn new(listen: SocketAddr, peers: BTreeMap<String, SocketAddr>) -> TcpConfig {
        TcpConfig {
            listen,
            peers,
            max_frame_bytes: 16 * 1024 * 1024,
            connect_timeout_ms: 500,
            write_timeout_ms: 2_000,
            reconnect_base_ms: 100,
            reconnect_max_ms: 3_200,
        }
    }
}

type Registry = Arc<Mutex<HashMap<String, Sender<Frame>>>>;

struct Shared {
    registry: Registry,
    stats: NetStats,
    stop: Arc<AtomicBool>,
    max_frame_bytes: usize,
}

/// A live TCP transport: one listener, persistent per-peer outbound
/// connections, shared [`NetStats`].
pub struct TcpTransport {
    shared: Arc<Shared>,
    config: TcpConfig,
    local_addr: SocketAddr,
    /// Outbound queues, one writer thread per peer.
    peers: Mutex<HashMap<String, Sender<Frame>>>,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl TcpTransport {
    /// Bind the listener and start the accept loop plus one writer per
    /// configured peer. With port `0` the OS picks; see
    /// [`TcpTransport::local_addr`].
    pub fn start(config: TcpConfig) -> Result<TcpTransport> {
        let listener = TcpListener::bind(config.listen)
            .map_err(|e| NapletError::Internal(format!("bind {}: {e}", config.listen)))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| NapletError::Internal(format!("local_addr: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| NapletError::Internal(format!("nonblocking listener: {e}")))?;
        let shared = Arc::new(Shared {
            registry: Arc::new(Mutex::new(HashMap::new())),
            stats: NetStats::new(),
            stop: Arc::new(AtomicBool::new(false)),
            max_frame_bytes: config.max_frame_bytes,
        });
        let transport = TcpTransport {
            shared: Arc::clone(&shared),
            config: config.clone(),
            local_addr,
            peers: Mutex::new(HashMap::new()),
            threads: Mutex::new(Vec::new()),
        };
        let accept_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("naplet-tcp-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))
            .map_err(|e| NapletError::Internal(format!("spawn accept thread: {e}")))?;
        transport.threads.lock().push(handle);
        for (name, addr) in &config.peers {
            transport.spawn_peer(name, *addr)?;
        }
        Ok(transport)
    }

    /// The bound listen address (resolves port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Add (or re-point) an outbound peer after start. Used by tests
    /// and by drivers that learn addresses late.
    pub fn add_peer(&self, name: &str, addr: SocketAddr) -> Result<()> {
        self.spawn_peer(name, addr)
    }

    /// Register a local endpoint; inbound frames addressed to `host`
    /// arrive on the returned receiver.
    pub fn register(&self, host: &str) -> Receiver<Frame> {
        let (tx, rx) = unbounded();
        self.shared.registry.lock().insert(host.to_string(), tx);
        rx
    }

    /// Send a frame: local endpoints deliver directly (free and
    /// unmetered, like the fabric's local delivery); remote frames are
    /// queued to the peer's writer. `Err` only for destinations in
    /// neither the local registry nor the peer list.
    pub fn send(&self, frame: Frame) -> Result<bool> {
        if let Some(tx) = self.shared.registry.lock().get(&frame.to) {
            let _ = tx.send(frame);
            return Ok(true);
        }
        let peers = self.peers.lock();
        let Some(tx) = peers.get(&frame.to) else {
            return Err(NapletError::NotFound(format!(
                "unknown destination host `{}`",
                frame.to
            )));
        };
        // a disconnected writer means shutdown is in progress
        let _ = tx.send(frame);
        Ok(true)
    }

    /// Shared transport statistics.
    pub fn stats(&self) -> &NetStats {
        &self.shared.stats
    }

    fn spawn_peer(&self, name: &str, addr: SocketAddr) -> Result<()> {
        let (tx, rx) = unbounded::<Frame>();
        self.peers.lock().insert(name.to_string(), tx);
        let shared = Arc::clone(&self.shared);
        let config = self.config.clone();
        let key = name_key(name);
        let handle = std::thread::Builder::new()
            .name(format!("naplet-tcp-peer-{name}"))
            .spawn(move || writer_loop(rx, addr, shared, config, key))
            .map_err(|e| NapletError::Internal(format!("spawn peer thread: {e}")))?;
        self.threads.lock().push(handle);
        Ok(())
    }
}

impl Transport for TcpTransport {
    fn register(&self, host: &str) -> Receiver<Frame> {
        TcpTransport::register(self, host)
    }

    fn send(&self, frame: Frame) -> Result<bool> {
        TcpTransport::send(self, frame)
    }

    fn stats(&self) -> &NetStats {
        TcpTransport::stats(self)
    }

    fn fetch(&self, from: &str, to: &str, class: TrafficClass, bytes: u64) -> Result<Option<u64>> {
        // a real fetch has no modelled delay; meter the bytes so code
        // traffic still shows in the per-class accounting
        self.shared.stats.record(from, to, class, bytes, 0);
        Ok(Some(0))
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // dropping the queue senders unblocks every writer
        self.peers.lock().clear();
        for handle in self.threads.lock().drain(..) {
            let _ = handle.join();
        }
    }
}

/// Stable per-peer jitter key so concurrent reconnect loops
/// de-synchronize deterministically (FNV-1a over the peer name).
fn name_key(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut readers: Vec<JoinHandle<()>> = Vec::new();
    while !shared.stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                let conn_shared = Arc::clone(&shared);
                if let Ok(handle) = std::thread::Builder::new()
                    .name("naplet-tcp-read".into())
                    .spawn(move || reader_loop(stream, conn_shared))
                {
                    readers.push(handle);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
        readers.retain(|h| !h.is_finished());
    }
    for handle in readers {
        let _ = handle.join();
    }
}

fn reader_loop(mut stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let mut buf = BytesMut::new();
    let mut chunk = [0u8; 64 * 1024];
    while !shared.stop.load(Ordering::Relaxed) {
        match stream.read(&mut chunk) {
            Ok(0) => {
                // EOF; data short of a full frame is a counted loss
                if !buf.is_empty() {
                    shared.stats.record_drop();
                }
                return;
            }
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                loop {
                    match Frame::decode_limited(&mut buf, shared.max_frame_bytes) {
                        Ok(Some(frame)) => deliver(&shared, frame),
                        Ok(None) => break,
                        Err(_) => {
                            // malformed length prefix or body: count
                            // one drop and cut the connection — the
                            // stream cannot be resynchronized
                            shared.stats.record_drop();
                            return;
                        }
                    }
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(_) => {
                // ECONNRESET and friends: fault-schedule-equivalent drop
                shared.stats.record_drop();
                return;
            }
        }
    }
}

fn deliver(shared: &Shared, frame: Frame) {
    let tx = shared.registry.lock().get(&frame.to).cloned();
    match tx {
        Some(tx) => {
            // a closed inbox means the endpoint's pump exited
            let _ = tx.send(frame);
        }
        None => shared.stats.record_drop(),
    }
}

fn writer_loop(
    rx: Receiver<Frame>,
    addr: SocketAddr,
    shared: Arc<Shared>,
    config: TcpConfig,
    jitter_key: u64,
) {
    let mut conn: Option<TcpStream> = None;
    let mut attempt: u32 = 0;
    let mut next_attempt = Instant::now();
    // one encode scratch per writer thread, reused across frames
    let mut scratch: Vec<u8> = Vec::new();
    loop {
        let frame = match rx.recv_timeout(Duration::from_millis(100)) {
            Ok(frame) => frame,
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                if shared.stop.load(Ordering::Relaxed) {
                    return;
                }
                continue;
            }
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
        };
        if shared.stop.load(Ordering::Relaxed) {
            return;
        }
        if conn.is_none() {
            let now = Instant::now();
            if now < next_attempt {
                // inside the backoff window: the frame is lost, the
                // reliability layer above will retransmit past it
                shared.stats.record_drop();
                continue;
            }
            match TcpStream::connect_timeout(
                &addr,
                Duration::from_millis(config.connect_timeout_ms),
            ) {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    if config.write_timeout_ms > 0 {
                        let _ = stream.set_write_timeout(Some(Duration::from_millis(
                            config.write_timeout_ms,
                        )));
                    }
                    conn = Some(stream);
                    attempt = 0;
                }
                Err(_) => {
                    attempt = attempt.saturating_add(1);
                    let wait = jittered_backoff_ms(
                        config.reconnect_base_ms,
                        config.reconnect_max_ms,
                        jitter_key,
                        attempt,
                    );
                    next_attempt = now + Duration::from_millis(wait);
                    shared.stats.record_drop();
                    continue;
                }
            }
        }
        scratch.clear();
        frame.encode_into(&mut scratch);
        let stream = conn.as_mut().expect("connected above");
        match stream.write_all(&scratch) {
            Ok(()) => {
                shared
                    .stats
                    .record(&frame.from, &frame.to, frame.class, frame.wire_len(), 0);
            }
            Err(_) => {
                // connection dropped mid-write: count the loss, arm the
                // reconnect backoff — the next send past the window
                // re-dials the (possibly restarted) peer
                shared.stats.record_drop();
                conn = None;
                attempt = attempt.saturating_add(1);
                let wait = jittered_backoff_ms(
                    config.reconnect_base_ms,
                    config.reconnect_max_ms,
                    jitter_key,
                    attempt,
                );
                next_attempt = Instant::now() + Duration::from_millis(wait);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (TcpTransport, TcpTransport) {
        // bootstrap two endpoints on OS-assigned ports, then teach
        // each the other's real address
        let a = TcpTransport::start(TcpConfig::new(
            "127.0.0.1:0".parse().unwrap(),
            BTreeMap::new(),
        ))
        .unwrap();
        let b = TcpTransport::start(TcpConfig::new(
            "127.0.0.1:0".parse().unwrap(),
            BTreeMap::new(),
        ))
        .unwrap();
        a.add_peer("b", b.local_addr()).unwrap();
        b.add_peer("a", a.local_addr()).unwrap();
        (a, b)
    }

    fn recv(rx: &Receiver<Frame>) -> Frame {
        rx.recv_timeout(Duration::from_secs(5)).expect("frame")
    }

    #[test]
    fn frames_cross_the_wire() {
        let (a, b) = pair();
        let _ain = a.register("a");
        let bin = b.register("b");
        a.send(Frame::new(
            "a",
            "b",
            TrafficClass::Migration,
            vec![1u8, 2, 3],
        ))
        .unwrap();
        let f = recv(&bin);
        assert_eq!(f.from, "a");
        assert_eq!(f.class, TrafficClass::Migration);
        assert_eq!(&f.payload[..], &[1, 2, 3]);
        // sender-side metering, fabric parity
        let snap = a.stats().snapshot();
        assert_eq!(snap.messages(TrafficClass::Migration), 1);
        assert_eq!(snap.bytes(TrafficClass::Migration), f.wire_len());
    }

    #[test]
    fn local_delivery_bypasses_the_socket() {
        let (a, _b) = pair();
        let ain = a.register("a");
        a.send(Frame::new("a", "a", TrafficClass::Message, vec![9u8]))
            .unwrap();
        assert_eq!(&recv(&ain).payload[..], &[9]);
        assert_eq!(a.stats().snapshot().total_messages(), 0, "unmetered");
    }

    #[test]
    fn unknown_destination_errors() {
        let (a, _b) = pair();
        assert!(a
            .send(Frame::new("a", "ghost", TrafficClass::Message, vec![]))
            .is_err());
    }

    #[test]
    fn unreachable_peer_counts_drops_not_panics() {
        let a = TcpTransport::start(TcpConfig::new(
            "127.0.0.1:0".parse().unwrap(),
            BTreeMap::new(),
        ))
        .unwrap();
        // a port nobody listens on
        let dead = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = dead.local_addr().unwrap();
        drop(dead);
        a.add_peer("void", addr).unwrap();
        a.send(Frame::new("a", "void", TrafficClass::Control, vec![1]))
            .unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while a.stats().snapshot().dropped == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(a.stats().snapshot().dropped >= 1);
    }

    #[test]
    fn stalled_peer_write_times_out_and_counts_a_drop() {
        // a listener that never accepts: connections land in the
        // kernel backlog, so connect succeeds but nothing ever drains
        // the socket — without a write deadline the writer thread
        // wedges forever once the buffers fill
        let sink = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = sink.local_addr().unwrap();
        let config = TcpConfig {
            write_timeout_ms: 100,
            ..TcpConfig::new("127.0.0.1:0".parse().unwrap(), BTreeMap::new())
        };
        let a = TcpTransport::start(config).unwrap();
        a.add_peer("stall", addr).unwrap();
        // enough bytes to overrun loopback send+receive buffers
        for _ in 0..64 {
            a.send(Frame::new(
                "a",
                "stall",
                TrafficClass::Message,
                vec![0u8; 256 * 1024],
            ))
            .unwrap();
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        while a.stats().snapshot().dropped == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(
            a.stats().snapshot().dropped >= 1,
            "write deadline must turn a stalled peer into counted drops"
        );
        // the writer armed its reconnect backoff instead of wedging:
        // dropping the transport joins every thread, so reaching the
        // end of this test at all proves the loop came back
        drop(a);
        drop(sink);
    }

    #[test]
    fn oversized_frame_is_dropped_and_connection_cut() {
        let config = TcpConfig {
            max_frame_bytes: 1024,
            ..TcpConfig::new("127.0.0.1:0".parse().unwrap(), BTreeMap::new())
        };
        let b = TcpTransport::start(config).unwrap();
        let bin = b.register("b");
        // raw client writes a malformed (huge) length prefix
        let mut raw = TcpStream::connect(b.local_addr()).unwrap();
        raw.write_all(&u32::MAX.to_be_bytes()).unwrap();
        raw.write_all(&[0u8; 64]).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while b.stats().snapshot().dropped == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(b.stats().snapshot().dropped, 1, "one counted drop");
        assert!(
            bin.recv_timeout(Duration::from_millis(100)).is_err(),
            "nothing delivered"
        );
        // a well-formed connection still works afterwards
        let f = Frame::new("x", "b", TrafficClass::Message, vec![5u8]);
        let mut ok = TcpStream::connect(b.local_addr()).unwrap();
        ok.write_all(&f.encode()).unwrap();
        assert_eq!(recv(&bin), f);
    }

    #[test]
    fn short_read_counts_a_drop() {
        let b = TcpTransport::start(TcpConfig::new(
            "127.0.0.1:0".parse().unwrap(),
            BTreeMap::new(),
        ))
        .unwrap();
        let _bin = b.register("b");
        let f = Frame::new("x", "b", TrafficClass::Message, vec![7u8; 100]);
        let encoded = f.encode();
        let mut raw = TcpStream::connect(b.local_addr()).unwrap();
        // half a frame, then a clean close: the truncated frame is lost
        raw.write_all(&encoded[..encoded.len() / 2]).unwrap();
        drop(raw);
        let deadline = Instant::now() + Duration::from_secs(5);
        while b.stats().snapshot().dropped == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(b.stats().snapshot().dropped, 1);
    }

    #[test]
    fn frame_to_unregistered_local_host_is_dropped() {
        let (a, b) = pair();
        let _ain = a.register("a");
        // "b" endpoint never registered on transport b
        a.send(Frame::new("a", "b", TrafficClass::Message, vec![1]))
            .unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while b.stats().snapshot().dropped == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(b.stats().snapshot().dropped, 1);
    }
}
