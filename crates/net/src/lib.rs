//! # naplet-net
//!
//! The network substrate of Naplet-RS: an in-process fabric of virtual
//! hosts with byte-accurate traffic metering.
//!
//! The paper's evaluation environment is a LAN of workstations; here a
//! [`Fabric`] models the topology (latency, bandwidth, loss, cut links,
//! dead hosts) and meters every transfer by [`TrafficClass`] — the
//! backbone of every experiment in EXPERIMENTS.md. Two drivers exist:
//!
//! * the deterministic discrete-event core ([`sim::EventQueue`]), used
//!   by the `naplet-server` simulation runtime for reproducible
//!   measurements in virtual time;
//! * a live threaded transport ([`threaded::ThreadedNet`]) where every
//!   host owns a channel and a timer thread applies modelled delays —
//!   the "autonomously running servers" deployment shape.

#![warn(missing_docs)]

pub mod fabric;
pub mod frame;
pub mod latency;
pub mod sim;
pub mod stats;
pub mod threaded;

pub use fabric::Fabric;
pub use frame::Frame;
pub use latency::{Bandwidth, LatencyModel};
pub use sim::EventQueue;
pub use stats::{Counter, NetStats, StatsSnapshot, TrafficClass};
pub use threaded::ThreadedNet;
