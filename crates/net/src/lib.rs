//! # naplet-net
//!
//! The network substrate of Naplet-RS: an in-process fabric of virtual
//! hosts with byte-accurate traffic metering.
//!
//! The paper's evaluation environment is a LAN of workstations; here a
//! [`Fabric`] models the topology (latency, bandwidth, loss, cut links,
//! dead hosts) and meters every transfer by [`TrafficClass`] — the
//! backbone of every experiment in EXPERIMENTS.md. Two drivers exist:
//!
//! * the deterministic discrete-event core ([`sim::EventQueue`]), used
//!   by the `naplet-server` simulation runtime for reproducible
//!   measurements in virtual time;
//! * a live threaded transport ([`threaded::ThreadedNet`]) where every
//!   host owns a channel and a timer thread applies modelled delays —
//!   the "autonomously running servers" deployment shape *inside one
//!   process*;
//! * a real-socket transport ([`tcp::TcpTransport`]) shipping the same
//!   length-prefixed [`Frame`] codec over persistent per-peer TCP
//!   connections — the multi-process `napletd` deployment shape.
//!
//! The latter two sit behind the pluggable [`transport::Transport`]
//! trait, so live drivers are written once and run over either.

#![warn(missing_docs)]

pub mod backoff;
pub mod fabric;
pub mod frame;
pub mod latency;
pub mod sim;
pub mod stats;
pub mod tcp;
pub mod threaded;
pub mod transport;

pub use fabric::Fabric;
pub use frame::Frame;
pub use latency::{Bandwidth, LatencyModel};
pub use sim::EventQueue;
pub use stats::{Counter, NetStats, StatsSnapshot, TrafficClass};
pub use tcp::{TcpConfig, TcpTransport};
pub use threaded::ThreadedNet;
pub use transport::Transport;
