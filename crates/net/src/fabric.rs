//! The network fabric: topology, failure injection and transfer cost.
//!
//! A [`Fabric`] knows which virtual hosts exist, which links are cut or
//! hosts down, the latency/bandwidth model and the loss probability.
//! Drivers (the discrete-event runtime in `naplet-server`, or the
//! threaded transport in [`crate::threaded`]) call [`Fabric::transfer`]
//! for every send: it meters the traffic statistics and returns the
//! modelled one-way delay, or `None` when the transfer is lost.
//!
//! The fabric is cheaply cloneable; clones share topology, statistics
//! and the seeded RNG, so concurrent drivers observe one network.

use std::collections::HashSet;
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use naplet_core::error::{NapletError, Result};

use crate::latency::{Bandwidth, LatencyModel};
use crate::stats::{NetStats, TrafficClass};

/// Half-open fault window `[from_ms, until_ms)` on the fabric clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Window {
    from_ms: u64,
    until_ms: u64,
}

impl Window {
    fn contains(&self, t: u64) -> bool {
        t >= self.from_ms && t < self.until_ms
    }
}

#[derive(Debug)]
struct Inner {
    hosts: HashSet<String>,
    down: HashSet<String>,
    cut: HashSet<(String, String)>,
    latency: LatencyModel,
    bandwidth: Bandwidth,
    loss_prob: f64,
    rng: StdRng,
    /// Fabric clock (ms) advanced by the driver; fault schedules below
    /// are evaluated against it.
    now_ms: u64,
    /// Scheduled per-host outages: the host refuses transfers while the
    /// clock is inside any of its windows.
    down_windows: Vec<(String, Window)>,
    /// Scheduled loss bursts: while active, the loss probability is
    /// raised to at least the burst's value.
    loss_bursts: Vec<(Window, f64)>,
}

/// Shared fabric handle.
#[derive(Debug, Clone)]
pub struct Fabric {
    inner: Arc<Mutex<Inner>>,
    stats: NetStats,
}

impl Fabric {
    /// New fabric with the given models and a deterministic RNG seed.
    pub fn new(latency: LatencyModel, bandwidth: Bandwidth, seed: u64) -> Fabric {
        Fabric {
            inner: Arc::new(Mutex::new(Inner {
                hosts: HashSet::new(),
                down: HashSet::new(),
                cut: HashSet::new(),
                latency,
                bandwidth,
                loss_prob: 0.0,
                rng: StdRng::seed_from_u64(seed),
                now_ms: 0,
                down_windows: Vec::new(),
                loss_bursts: Vec::new(),
            })),
            stats: NetStats::new(),
        }
    }

    /// A LAN fabric with default seed — the common test setup.
    pub fn lan() -> Fabric {
        Fabric::new(LatencyModel::lan(), Bandwidth::fast_ethernet(), 0x4e41_504c)
    }

    /// Register a host. Idempotent.
    pub fn add_host(&self, name: &str) {
        self.inner.lock().hosts.insert(name.to_string());
    }

    /// All registered hosts (sorted).
    pub fn hosts(&self) -> Vec<String> {
        let mut v: Vec<String> = self.inner.lock().hosts.iter().cloned().collect();
        v.sort();
        v
    }

    /// Is the host registered and up (including scheduled outages at
    /// the current fabric time)?
    pub fn is_up(&self, name: &str) -> bool {
        let inner = self.inner.lock();
        inner.hosts.contains(name) && !inner.down.contains(name) && !inner.scheduled_down(name)
    }

    /// Advance the fabric clock; drivers call this so scheduled fault
    /// windows line up with their (virtual or wall) time.
    pub fn set_now(&self, ms: u64) {
        self.inner.lock().now_ms = ms;
    }

    /// Current fabric clock in milliseconds.
    pub fn now_ms(&self) -> u64 {
        self.inner.lock().now_ms
    }

    /// Schedule a timed outage: `host` refuses all transfers in and out
    /// while the fabric clock is in `[from_ms, until_ms)`.
    pub fn schedule_down(&self, host: &str, from_ms: u64, until_ms: u64) {
        self.inner
            .lock()
            .down_windows
            .push((host.to_string(), Window { from_ms, until_ms }));
    }

    /// Schedule a process crash for `host`: counts the injection in
    /// the shared stats and opens an outage window for
    /// `[at_ms, until_ms)` — a dead process can neither send nor
    /// receive. Drivers that model real crashes (the discrete-event
    /// runtime) additionally wipe the host's volatile state at `at_ms`
    /// and replay its journal when the window closes.
    pub fn schedule_crash(&self, host: &str, at_ms: u64, until_ms: u64) {
        self.stats.record_crash();
        self.schedule_down(host, at_ms, until_ms);
    }

    /// Schedule a loss burst: while the fabric clock is in
    /// `[from_ms, until_ms)` the loss probability is at least `p`.
    pub fn schedule_loss_burst(&self, from_ms: u64, until_ms: u64, p: f64) {
        self.inner
            .lock()
            .loss_bursts
            .push((Window { from_ms, until_ms }, p.clamp(0.0, 0.999_999)));
    }

    /// Shared traffic statistics.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Set the independent per-transfer loss probability `[0, 1)`.
    pub fn set_loss(&self, p: f64) {
        self.inner.lock().loss_prob = p.clamp(0.0, 0.999_999);
    }

    /// Cut the (bidirectional) link between two hosts.
    pub fn cut_link(&self, a: &str, b: &str) {
        self.inner.lock().cut.insert(ordered(a, b));
    }

    /// Restore a previously cut link.
    pub fn heal_link(&self, a: &str, b: &str) {
        self.inner.lock().cut.remove(&ordered(a, b));
    }

    /// Take a host down (it refuses all transfers in and out).
    pub fn take_down(&self, host: &str) {
        self.inner.lock().down.insert(host.to_string());
    }

    /// Bring a host back up.
    pub fn bring_up(&self, host: &str) {
        self.inner.lock().down.remove(host);
    }

    /// Attempt a transfer of `bytes` payload bytes.
    ///
    /// * `Err` — an endpoint does not exist (a programming error in the
    ///   driver, surfaced loudly);
    /// * `Ok(None)` — the transfer was lost (link cut, host down, or
    ///   random loss); metered in the drop counter;
    /// * `Ok(Some(delay_ms))` — the transfer succeeds after the
    ///   modelled one-way delay; metered per class and link.
    pub fn transfer(
        &self,
        from: &str,
        to: &str,
        class: TrafficClass,
        bytes: u64,
    ) -> Result<Option<u64>> {
        let mut inner = self.inner.lock();
        if !inner.hosts.contains(from) {
            return Err(NapletError::NotFound(format!(
                "unknown source host `{from}`"
            )));
        }
        if !inner.hosts.contains(to) {
            return Err(NapletError::NotFound(format!(
                "unknown destination host `{to}`"
            )));
        }
        let blocked = inner.down.contains(from)
            || inner.down.contains(to)
            || inner.cut.contains(&ordered(from, to))
            || inner.scheduled_down(from)
            || inner.scheduled_down(to);
        let lost = blocked || {
            let p = inner.effective_loss();
            p > 0.0 && inner.rng.gen_bool(p)
        };
        if lost {
            drop(inner);
            self.stats.record_drop();
            return Ok(None);
        }
        if from == to {
            // local delivery is free and unmetered
            return Ok(Some(0));
        }
        let prop = {
            let Inner { latency, rng, .. } = &mut *inner;
            latency.delay_ms(from, to, rng)
        };
        let delay = prop + inner.bandwidth.transfer_ms(bytes);
        drop(inner);
        self.stats.record(from, to, class, bytes, delay);
        Ok(Some(delay))
    }
}

impl Inner {
    fn scheduled_down(&self, host: &str) -> bool {
        self.down_windows
            .iter()
            .any(|(h, w)| h == host && w.contains(self.now_ms))
    }

    fn effective_loss(&self) -> f64 {
        let mut p = self.loss_prob;
        for (w, burst) in &self.loss_bursts {
            if w.contains(self.now_ms) {
                p = p.max(*burst);
            }
        }
        p
    }
}

fn ordered(a: &str, b: &str) -> (String, String) {
    if a <= b {
        (a.to_string(), b.to_string())
    } else {
        (b.to_string(), a.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric() -> Fabric {
        let f = Fabric::new(LatencyModel::Constant(5), Bandwidth(Some(100)), 1);
        for h in ["a", "b", "c"] {
            f.add_host(h);
        }
        f
    }

    #[test]
    fn transfer_meters_and_delays() {
        let f = fabric();
        let d = f
            .transfer("a", "b", TrafficClass::Message, 250)
            .unwrap()
            .unwrap();
        assert_eq!(d, 5 + 3); // 5ms prop + ceil(250/100)
        let snap = f.stats().snapshot();
        assert_eq!(snap.bytes(TrafficClass::Message), 250);
        assert_eq!(snap.messages(TrafficClass::Message), 1);
    }

    #[test]
    fn unknown_hosts_error() {
        let f = fabric();
        assert!(f.transfer("a", "zz", TrafficClass::Message, 1).is_err());
        assert!(f.transfer("zz", "a", TrafficClass::Message, 1).is_err());
    }

    #[test]
    fn local_delivery_free() {
        let f = fabric();
        assert_eq!(
            f.transfer("a", "a", TrafficClass::Message, 999).unwrap(),
            Some(0)
        );
        assert_eq!(f.stats().snapshot().total_bytes(), 0);
    }

    #[test]
    fn cut_links_drop() {
        let f = fabric();
        f.cut_link("a", "b");
        assert_eq!(
            f.transfer("a", "b", TrafficClass::Message, 1).unwrap(),
            None
        );
        assert_eq!(
            f.transfer("b", "a", TrafficClass::Message, 1).unwrap(),
            None
        );
        assert!(f
            .transfer("a", "c", TrafficClass::Message, 1)
            .unwrap()
            .is_some());
        f.heal_link("a", "b");
        assert!(f
            .transfer("a", "b", TrafficClass::Message, 1)
            .unwrap()
            .is_some());
        assert_eq!(f.stats().snapshot().dropped, 2);
    }

    #[test]
    fn down_hosts_drop() {
        let f = fabric();
        f.take_down("b");
        assert!(!f.is_up("b"));
        assert_eq!(
            f.transfer("a", "b", TrafficClass::Control, 1).unwrap(),
            None
        );
        assert_eq!(
            f.transfer("b", "c", TrafficClass::Control, 1).unwrap(),
            None
        );
        f.bring_up("b");
        assert!(f.is_up("b"));
        assert!(f
            .transfer("a", "b", TrafficClass::Control, 1)
            .unwrap()
            .is_some());
    }

    #[test]
    fn loss_probability_drops_roughly_that_fraction() {
        let f = fabric();
        f.set_loss(0.5);
        let mut lost = 0;
        for _ in 0..400 {
            if f.transfer("a", "b", TrafficClass::Message, 1)
                .unwrap()
                .is_none()
            {
                lost += 1;
            }
        }
        assert!((120..=280).contains(&lost), "lost {lost}/400");
    }

    #[test]
    fn scheduled_down_window_drops_only_inside_window() {
        let f = fabric();
        f.schedule_down("b", 100, 200);
        // before the window
        f.set_now(50);
        assert!(f.is_up("b"));
        assert!(f
            .transfer("a", "b", TrafficClass::Control, 1)
            .unwrap()
            .is_some());
        // inside the window: transfers in and out are refused
        f.set_now(150);
        assert!(!f.is_up("b"));
        assert_eq!(
            f.transfer("a", "b", TrafficClass::Control, 1).unwrap(),
            None
        );
        assert_eq!(
            f.transfer("b", "c", TrafficClass::Control, 1).unwrap(),
            None
        );
        // window end is exclusive
        f.set_now(200);
        assert!(f.is_up("b"));
        assert!(f
            .transfer("a", "b", TrafficClass::Control, 1)
            .unwrap()
            .is_some());
    }

    #[test]
    fn loss_burst_raises_loss_inside_window() {
        let f = fabric();
        f.schedule_loss_burst(10, 20, 1.0); // clamped just below 1, drops ~always
        f.set_now(5);
        assert!(f
            .transfer("a", "b", TrafficClass::Message, 1)
            .unwrap()
            .is_some());
        f.set_now(15);
        let mut lost = 0;
        for _ in 0..50 {
            if f.transfer("a", "b", TrafficClass::Message, 1)
                .unwrap()
                .is_none()
            {
                lost += 1;
            }
        }
        assert!(lost >= 49, "burst should drop nearly everything: {lost}/50");
        f.set_now(25);
        assert!(f
            .transfer("a", "b", TrafficClass::Message, 1)
            .unwrap()
            .is_some());
    }

    #[test]
    fn clones_share_everything() {
        let f = fabric();
        let g = f.clone();
        g.take_down("c");
        assert!(!f.is_up("c"));
        g.transfer("a", "b", TrafficClass::Code, 10).unwrap();
        assert_eq!(f.stats().snapshot().bytes(TrafficClass::Code), 10);
    }

    #[test]
    fn hosts_listing_sorted() {
        let f = fabric();
        assert_eq!(f.hosts(), ["a", "b", "c"]);
        f.add_host("a"); // idempotent
        assert_eq!(f.hosts().len(), 3);
    }
}
