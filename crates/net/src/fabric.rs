//! The network fabric: topology, failure injection and transfer cost.
//!
//! A [`Fabric`] knows which virtual hosts exist, which links are cut or
//! hosts down, the latency/bandwidth model and the loss probability.
//! Drivers (the discrete-event runtime in `naplet-server`, or the
//! threaded transport in [`crate::threaded`]) call [`Fabric::transfer`]
//! for every send: it meters the traffic statistics and returns the
//! modelled one-way delay, or `None` when the transfer is lost.
//!
//! The fabric is cheaply cloneable; clones share topology, statistics
//! and the seeded RNG, so concurrent drivers observe one network.

use std::collections::HashSet;
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use naplet_core::error::{NapletError, Result};

use crate::latency::{Bandwidth, LatencyModel};
use crate::stats::{NetStats, TrafficClass};

#[derive(Debug)]
struct Inner {
    hosts: HashSet<String>,
    down: HashSet<String>,
    cut: HashSet<(String, String)>,
    latency: LatencyModel,
    bandwidth: Bandwidth,
    loss_prob: f64,
    rng: StdRng,
}

/// Shared fabric handle.
#[derive(Debug, Clone)]
pub struct Fabric {
    inner: Arc<Mutex<Inner>>,
    stats: NetStats,
}

impl Fabric {
    /// New fabric with the given models and a deterministic RNG seed.
    pub fn new(latency: LatencyModel, bandwidth: Bandwidth, seed: u64) -> Fabric {
        Fabric {
            inner: Arc::new(Mutex::new(Inner {
                hosts: HashSet::new(),
                down: HashSet::new(),
                cut: HashSet::new(),
                latency,
                bandwidth,
                loss_prob: 0.0,
                rng: StdRng::seed_from_u64(seed),
            })),
            stats: NetStats::new(),
        }
    }

    /// A LAN fabric with default seed — the common test setup.
    pub fn lan() -> Fabric {
        Fabric::new(LatencyModel::lan(), Bandwidth::fast_ethernet(), 0x4e41_504c)
    }

    /// Register a host. Idempotent.
    pub fn add_host(&self, name: &str) {
        self.inner.lock().hosts.insert(name.to_string());
    }

    /// All registered hosts (sorted).
    pub fn hosts(&self) -> Vec<String> {
        let mut v: Vec<String> = self.inner.lock().hosts.iter().cloned().collect();
        v.sort();
        v
    }

    /// Is the host registered and up?
    pub fn is_up(&self, name: &str) -> bool {
        let inner = self.inner.lock();
        inner.hosts.contains(name) && !inner.down.contains(name)
    }

    /// Shared traffic statistics.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Set the independent per-transfer loss probability `[0, 1)`.
    pub fn set_loss(&self, p: f64) {
        self.inner.lock().loss_prob = p.clamp(0.0, 0.999_999);
    }

    /// Cut the (bidirectional) link between two hosts.
    pub fn cut_link(&self, a: &str, b: &str) {
        self.inner.lock().cut.insert(ordered(a, b));
    }

    /// Restore a previously cut link.
    pub fn heal_link(&self, a: &str, b: &str) {
        self.inner.lock().cut.remove(&ordered(a, b));
    }

    /// Take a host down (it refuses all transfers in and out).
    pub fn take_down(&self, host: &str) {
        self.inner.lock().down.insert(host.to_string());
    }

    /// Bring a host back up.
    pub fn bring_up(&self, host: &str) {
        self.inner.lock().down.remove(host);
    }

    /// Attempt a transfer of `bytes` payload bytes.
    ///
    /// * `Err` — an endpoint does not exist (a programming error in the
    ///   driver, surfaced loudly);
    /// * `Ok(None)` — the transfer was lost (link cut, host down, or
    ///   random loss); metered in the drop counter;
    /// * `Ok(Some(delay_ms))` — the transfer succeeds after the
    ///   modelled one-way delay; metered per class and link.
    pub fn transfer(
        &self,
        from: &str,
        to: &str,
        class: TrafficClass,
        bytes: u64,
    ) -> Result<Option<u64>> {
        let mut inner = self.inner.lock();
        if !inner.hosts.contains(from) {
            return Err(NapletError::NotFound(format!(
                "unknown source host `{from}`"
            )));
        }
        if !inner.hosts.contains(to) {
            return Err(NapletError::NotFound(format!(
                "unknown destination host `{to}`"
            )));
        }
        let blocked = inner.down.contains(from)
            || inner.down.contains(to)
            || inner.cut.contains(&ordered(from, to));
        let lost = blocked || {
            let p = inner.loss_prob;
            p > 0.0 && inner.rng.gen_bool(p)
        };
        if lost {
            drop(inner);
            self.stats.record_drop();
            return Ok(None);
        }
        if from == to {
            // local delivery is free and unmetered
            return Ok(Some(0));
        }
        let prop = {
            let Inner { latency, rng, .. } = &mut *inner;
            latency.delay_ms(from, to, rng)
        };
        let delay = prop + inner.bandwidth.transfer_ms(bytes);
        drop(inner);
        self.stats.record(from, to, class, bytes, delay);
        Ok(Some(delay))
    }
}

fn ordered(a: &str, b: &str) -> (String, String) {
    if a <= b {
        (a.to_string(), b.to_string())
    } else {
        (b.to_string(), a.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric() -> Fabric {
        let f = Fabric::new(LatencyModel::Constant(5), Bandwidth(Some(100)), 1);
        for h in ["a", "b", "c"] {
            f.add_host(h);
        }
        f
    }

    #[test]
    fn transfer_meters_and_delays() {
        let f = fabric();
        let d = f
            .transfer("a", "b", TrafficClass::Message, 250)
            .unwrap()
            .unwrap();
        assert_eq!(d, 5 + 3); // 5ms prop + ceil(250/100)
        let snap = f.stats().snapshot();
        assert_eq!(snap.bytes(TrafficClass::Message), 250);
        assert_eq!(snap.messages(TrafficClass::Message), 1);
    }

    #[test]
    fn unknown_hosts_error() {
        let f = fabric();
        assert!(f.transfer("a", "zz", TrafficClass::Message, 1).is_err());
        assert!(f.transfer("zz", "a", TrafficClass::Message, 1).is_err());
    }

    #[test]
    fn local_delivery_free() {
        let f = fabric();
        assert_eq!(
            f.transfer("a", "a", TrafficClass::Message, 999).unwrap(),
            Some(0)
        );
        assert_eq!(f.stats().snapshot().total_bytes(), 0);
    }

    #[test]
    fn cut_links_drop() {
        let f = fabric();
        f.cut_link("a", "b");
        assert_eq!(
            f.transfer("a", "b", TrafficClass::Message, 1).unwrap(),
            None
        );
        assert_eq!(
            f.transfer("b", "a", TrafficClass::Message, 1).unwrap(),
            None
        );
        assert!(f
            .transfer("a", "c", TrafficClass::Message, 1)
            .unwrap()
            .is_some());
        f.heal_link("a", "b");
        assert!(f
            .transfer("a", "b", TrafficClass::Message, 1)
            .unwrap()
            .is_some());
        assert_eq!(f.stats().snapshot().dropped, 2);
    }

    #[test]
    fn down_hosts_drop() {
        let f = fabric();
        f.take_down("b");
        assert!(!f.is_up("b"));
        assert_eq!(
            f.transfer("a", "b", TrafficClass::Control, 1).unwrap(),
            None
        );
        assert_eq!(
            f.transfer("b", "c", TrafficClass::Control, 1).unwrap(),
            None
        );
        f.bring_up("b");
        assert!(f.is_up("b"));
        assert!(f
            .transfer("a", "b", TrafficClass::Control, 1)
            .unwrap()
            .is_some());
    }

    #[test]
    fn loss_probability_drops_roughly_that_fraction() {
        let f = fabric();
        f.set_loss(0.5);
        let mut lost = 0;
        for _ in 0..400 {
            if f.transfer("a", "b", TrafficClass::Message, 1)
                .unwrap()
                .is_none()
            {
                lost += 1;
            }
        }
        assert!((120..=280).contains(&lost), "lost {lost}/400");
    }

    #[test]
    fn clones_share_everything() {
        let f = fabric();
        let g = f.clone();
        g.take_down("c");
        assert!(!f.is_up("c"));
        g.transfer("a", "b", TrafficClass::Code, 10).unwrap();
        assert_eq!(f.stats().snapshot().bytes(TrafficClass::Code), 10);
    }

    #[test]
    fn hosts_listing_sorted() {
        let f = fabric();
        assert_eq!(f.hosts(), ["a", "b", "c"]);
        f.add_host("a"); // idempotent
        assert_eq!(f.hosts().len(), 3);
    }
}
