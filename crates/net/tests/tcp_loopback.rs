//! TCP ↔ in-process parity and fault-recovery integration tests.
//!
//! The contract under test: for arbitrary wire messages, the TCP
//! backend delivers [`Frame`]s byte-identical to what the in-process
//! fabric delivers — same payload, same names, same class — and a
//! peer that restarts (new process, same address) is transparently
//! re-reached by the writer's reconnect backoff.

use std::collections::BTreeMap;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use crossbeam::channel::Receiver;
use proptest::collection::vec;
use proptest::prelude::*;

use naplet_net::tcp::{TcpConfig, TcpTransport};
use naplet_net::{Bandwidth, Fabric, Frame, LatencyModel, ThreadedNet, TrafficClass};

fn class_strategy() -> impl Strategy<Value = TrafficClass> {
    prop_oneof![
        Just(TrafficClass::Migration),
        Just(TrafficClass::Code),
        Just(TrafficClass::Message),
        Just(TrafficClass::Control),
        Just(TrafficClass::Snmp),
        Just(TrafficClass::Other),
    ]
}

/// One threaded net and one TCP pair shared by all generated cases —
/// the parity property is per frame, so reusing the sockets keeps 64
/// cases fast.
struct Harness {
    threaded: ThreadedNet,
    threaded_rx: Receiver<Frame>,
    tcp_a: TcpTransport,
    _tcp_b: TcpTransport,
    tcp_rx: Receiver<Frame>,
}

unsafe impl Sync for Harness {}

fn harness() -> &'static Harness {
    static HARNESS: OnceLock<Harness> = OnceLock::new();
    HARNESS.get_or_init(|| {
        let fabric = Fabric::new(LatencyModel::Constant(0), Bandwidth(None), 7);
        let threaded = ThreadedNet::start(fabric, 0);
        let _src = threaded.register("src");
        let threaded_rx = threaded.register("dst");
        let tcp_a = TcpTransport::start(TcpConfig::new(
            "127.0.0.1:0".parse().unwrap(),
            BTreeMap::new(),
        ))
        .unwrap();
        let tcp_b = TcpTransport::start(TcpConfig::new(
            "127.0.0.1:0".parse().unwrap(),
            BTreeMap::new(),
        ))
        .unwrap();
        tcp_a.add_peer("dst", tcp_b.local_addr()).unwrap();
        let tcp_rx = tcp_b.register("dst");
        Harness {
            threaded,
            threaded_rx,
            tcp_a,
            _tcp_b: tcp_b,
            tcp_rx,
        }
    })
}

proptest! {
    #[test]
    fn tcp_delivers_byte_identical_frames_to_the_fabric(
        class in class_strategy(),
        payload in vec(any::<u8>(), 0..2048),
    ) {
        let h = harness();
        let sent = Frame::new("src", "dst", class, payload);

        h.threaded.send(sent.clone()).unwrap();
        let via_fabric = h
            .threaded_rx
            .recv_timeout(Duration::from_secs(5))
            .expect("fabric delivery");

        h.tcp_a.send(sent.clone()).unwrap();
        let via_tcp = h
            .tcp_rx
            .recv_timeout(Duration::from_secs(5))
            .expect("tcp delivery");

        // both backends must hand the receiver the identical frame…
        prop_assert_eq!(&via_tcp, &via_fabric);
        prop_assert_eq!(&via_tcp, &sent);
        // …and agree byte for byte on the wire encoding
        prop_assert_eq!(via_tcp.encode().to_vec(), sent.encode().to_vec());
        prop_assert_eq!(via_tcp.wire_len(), sent.wire_len());
    }
}

/// A peer process that dies and comes back on the same address is
/// re-reached: sends during the outage are counted drops (the
/// reliability layer's retransmissions absorb them), and the first
/// send past the reconnect backoff lands on the restarted listener.
#[test]
fn reconnects_after_peer_restart() {
    let sender = TcpTransport::start(TcpConfig {
        connect_timeout_ms: 200,
        reconnect_base_ms: 50,
        reconnect_max_ms: 400,
        ..TcpConfig::new("127.0.0.1:0".parse().unwrap(), BTreeMap::new())
    })
    .unwrap();

    // incarnation one of the peer
    let peer1 = TcpTransport::start(TcpConfig::new(
        "127.0.0.1:0".parse().unwrap(),
        BTreeMap::new(),
    ))
    .unwrap();
    let addr = peer1.local_addr();
    sender.add_peer("peer", addr).unwrap();
    let rx1 = peer1.register("peer");

    let frame = |n: u8| Frame::new("me", "peer", TrafficClass::Message, vec![n]);
    sender.send(frame(1)).unwrap();
    assert_eq!(
        &rx1.recv_timeout(Duration::from_secs(5)).unwrap().payload[..],
        &[1],
        "pre-restart delivery"
    );

    // the peer process dies
    drop(rx1);
    drop(peer1);
    std::thread::sleep(Duration::from_millis(50));

    // sends during the outage become counted drops, never panics (the
    // first write after a peer death can still land in the socket
    // buffer before the RST arrives, so keep sending as the
    // reliability layer would)
    let drops_before = sender.stats().snapshot().dropped;
    let deadline = Instant::now() + Duration::from_secs(5);
    while sender.stats().snapshot().dropped == drops_before && Instant::now() < deadline {
        sender.send(frame(2)).unwrap();
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        sender.stats().snapshot().dropped > drops_before,
        "outage send must be a counted drop"
    );

    // incarnation two on the very same address
    let peer2 = TcpTransport::start(TcpConfig::new(addr, BTreeMap::new())).unwrap();
    let rx2 = peer2.register("peer");

    // keep retransmitting like the reliability layer would; the writer
    // reconnects once its backoff window has passed
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut delivered = None;
    while Instant::now() < deadline {
        sender.send(frame(3)).unwrap();
        if let Ok(f) = rx2.recv_timeout(Duration::from_millis(100)) {
            delivered = Some(f);
            break;
        }
    }
    let f = delivered.expect("a retransmission reached the restarted peer");
    assert_eq!(&f.payload[..], &[3]);
    assert_eq!(f.from, "me");
}
