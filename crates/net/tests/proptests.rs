//! Property tests for the network substrate.

use bytes::BytesMut;
use proptest::collection::vec;
use proptest::prelude::*;

use naplet_net::{Bandwidth, EventQueue, Fabric, Frame, LatencyModel, TrafficClass};

fn class_strategy() -> impl Strategy<Value = TrafficClass> {
    prop_oneof![
        Just(TrafficClass::Migration),
        Just(TrafficClass::Code),
        Just(TrafficClass::Message),
        Just(TrafficClass::Control),
        Just(TrafficClass::Snmp),
        Just(TrafficClass::Other),
    ]
}

proptest! {
    #[test]
    fn frame_encode_decode_round_trip(
        from in "[a-z0-9.-]{1,24}",
        to in "[a-z0-9.-]{1,24}",
        class in class_strategy(),
        payload in vec(any::<u8>(), 0..512),
    ) {
        let frame = Frame::new(&from, &to, class, payload);
        let encoded = frame.encode();
        prop_assert_eq!(encoded.len() as u64, frame.wire_len());
        let mut buf = BytesMut::from(&encoded[..]);
        let decoded = Frame::decode(&mut buf).unwrap().unwrap();
        prop_assert_eq!(decoded, frame);
        prop_assert!(buf.is_empty());
    }

    #[test]
    fn frame_stream_reassembly(
        frames in vec(
            ("[a-z]{1,8}", "[a-z]{1,8}", vec(any::<u8>(), 0..64)),
            1..8,
        ),
        split_at in any::<u16>(),
    ) {
        // concatenate all frames, then feed in two arbitrary chunks
        let frames: Vec<Frame> = frames
            .into_iter()
            .map(|(f, t, p)| Frame::new(&f, &t, TrafficClass::Message, p))
            .collect();
        let mut stream = BytesMut::new();
        for f in &frames {
            stream.extend_from_slice(&f.encode());
        }
        let split = (split_at as usize) % (stream.len() + 1);
        let mut buf = BytesMut::from(&stream[..split]);
        let mut out = Vec::new();
        while let Some(f) = Frame::decode(&mut buf).unwrap() {
            out.push(f);
        }
        buf.extend_from_slice(&stream[split..]);
        while let Some(f) = Frame::decode(&mut buf).unwrap() {
            out.push(f);
        }
        prop_assert_eq!(out, frames);
        prop_assert!(buf.is_empty());
    }

    #[test]
    fn fabric_meters_exactly_what_it_delivers(
        transfers in vec((0usize..3, 0usize..3, class_strategy(), 1u64..10_000), 1..50),
    ) {
        let fabric = Fabric::new(LatencyModel::Constant(1), Bandwidth(Some(1000)), 9);
        let hosts = ["a", "b", "c"];
        for h in hosts {
            fabric.add_host(h);
        }
        let mut expect_bytes = 0u64;
        let mut expect_msgs = 0u64;
        for (f, t, class, bytes) in transfers {
            let (from, to) = (hosts[f], hosts[t]);
            let delivered = fabric.transfer(from, to, class, bytes).unwrap();
            if from != to {
                prop_assert!(delivered.is_some());
                expect_bytes += bytes;
                expect_msgs += 1;
                // delay = propagation + serialization
                prop_assert_eq!(delivered.unwrap(), 1 + bytes.div_ceil(1000));
            } else {
                prop_assert_eq!(delivered, Some(0));
            }
        }
        let snap = fabric.stats().snapshot();
        prop_assert_eq!(snap.total_bytes(), expect_bytes);
        prop_assert_eq!(snap.total_messages(), expect_msgs);
        prop_assert_eq!(snap.dropped, 0);
    }

    #[test]
    fn event_queue_is_a_stable_priority_queue(
        events in vec((0u64..1000, any::<u32>()), 0..100),
    ) {
        let mut q = EventQueue::new();
        for (i, (t, v)) in events.iter().enumerate() {
            q.push_at(*t, (i, *v));
        }
        let mut last_time = 0u64;
        let mut seen = Vec::new();
        let mut by_time: std::collections::BTreeMap<u64, Vec<usize>> = Default::default();
        while let Some((t, (i, _))) = q.pop() {
            prop_assert!(t >= last_time, "time order");
            last_time = t;
            by_time.entry(t).or_default().push(i);
            seen.push(i);
        }
        prop_assert_eq!(seen.len(), events.len());
        // FIFO among equal times: insertion indexes ascend
        for (_, idxs) in by_time {
            let mut sorted = idxs.clone();
            sorted.sort();
            prop_assert_eq!(idxs, sorted);
        }
    }

    #[test]
    fn loss_rate_statistically_close(p in 0.0f64..0.9) {
        let fabric = Fabric::new(LatencyModel::Constant(0), Bandwidth(None), 123);
        fabric.add_host("a");
        fabric.add_host("b");
        fabric.set_loss(p);
        let n = 2000;
        let mut lost = 0;
        for _ in 0..n {
            if fabric.transfer("a", "b", TrafficClass::Other, 1).unwrap().is_none() {
                lost += 1;
            }
        }
        let observed = lost as f64 / n as f64;
        prop_assert!((observed - p).abs() < 0.06, "observed {observed} vs p {p}");
    }
}
