//! Live ops plane over real sockets: poll a running `napletd` cluster.
//!
//! [`crate::centralized::CentralizedManager::status_poll`] drives the
//! wire-level status protocol inside the deterministic sim; this is
//! the same protocol pointed at real daemons. A
//! [`ClusterStatusPoller`] is a station node from the cluster's
//! bootstrap file (an entry no daemon was started for — conventionally
//! `ctl` or `mon`): it binds the station's listen address, sends
//! privileged `StatusRequest` frames to named peers over TCP, and
//! pumps its in-process station server until every reply has landed or
//! the deadline passes.
//!
//! A daemon that is down, or whose security policy refuses
//! `PrivilegedService("status")`, simply contributes no report — the
//! poller returns what it heard, sorted by host, and the caller
//! compares against the set it asked for.

use std::time::{Duration, Instant};

use naplet_core::clock::Millis;
use naplet_core::credential::{Credential, SigningKey};
use naplet_core::error::Result;
use naplet_core::NapletId;
use naplet_net::tcp::TcpTransport;
use naplet_net::Frame;
use naplet_obs::{FlatSegment, MetricsHistoryPage, TraceSegment};
use naplet_server::bootstrap::BootstrapConfig;
use naplet_server::events::{Input, Wire};
use naplet_server::status::StatusReport;
use naplet_server::{LocationMode, NapletServer, ServerConfig};

/// The same station wearing its distributed-tracing hat:
/// [`ClusterStatusPoller::fetch_traces`] pages every daemon's flight
/// recorder out over the privileged trace protocol, for
/// [`naplet_obs::merge_cluster_trace`] to join into one cluster-wide
/// Chrome trace. One bound station serves both protocols, so the
/// alias exists purely to name the role.
pub type ClusterTracePoller = ClusterStatusPoller;

/// A status station attached to a live cluster.
pub struct ClusterStatusPoller {
    station: String,
    server: NapletServer,
    rx: crossbeam::channel::Receiver<Frame>,
    net: TcpTransport,
    key: SigningKey,
    next_token: u64,
    epoch: Instant,
    scratch: Vec<u8>,
}

impl ClusterStatusPoller {
    /// Bind the `station` node's listen address from `config` and get
    /// ready to poll its peers. The station must be a `[[node]]` entry
    /// no daemon occupies.
    pub fn connect(config: &BootstrapConfig, station: &str) -> Result<ClusterStatusPoller> {
        let net = TcpTransport::start(config.tcp_config(station)?)?;
        let rx = net.register(station);
        let server = NapletServer::new(ServerConfig::open(station, LocationMode::ForwardingTrace));
        Ok(ClusterStatusPoller {
            station: station.to_string(),
            server,
            rx,
            net,
            key: SigningKey::new("ops", b"status-station"),
            next_token: 0,
            epoch: Instant::now(),
            scratch: Vec::new(),
        })
    }

    fn now(&self) -> Millis {
        Millis(self.epoch.elapsed().as_millis() as u64)
    }

    /// Poll `targets` and wait up to `timeout` for their reports.
    /// Returns whatever arrived in time, sorted by host — absent hosts
    /// are the caller's signal that a node is down or refusing.
    pub fn poll(&mut self, targets: &[String], timeout: Duration) -> Result<Vec<StatusReport>> {
        let id = NapletId::new(&self.key.principal, &self.station, Millis(1))?;
        let credential = Credential::issue(&self.key, id, "ops-plane", vec![]);
        let mut waiting = std::collections::BTreeSet::new();
        for target in targets {
            self.next_token += 1;
            waiting.insert(self.next_token);
            let wire = Wire::StatusRequest {
                token: self.next_token,
                reply_to: self.station.clone(),
                credential: credential.clone(),
            };
            if naplet_core::codec::to_bytes_into(&wire, &mut self.scratch).is_ok() {
                let frame = Frame::new(
                    &self.station,
                    target,
                    wire.traffic_class(),
                    self.scratch.clone(),
                );
                let _ = self.net.send(frame);
            }
        }

        let deadline = Instant::now() + timeout;
        while !waiting.is_empty() && Instant::now() < deadline {
            match self.rx.recv_timeout(Duration::from_millis(20)) {
                Ok(frame) => {
                    if let Ok(wire) = naplet_core::codec::from_bytes::<Wire>(&frame.payload) {
                        let now = self.now();
                        let from = frame.from.clone();
                        // a station only collects; replies need no
                        // enactment of their own
                        let _ = self.server.handle(now, Input::Wire { from, wire });
                    }
                    for (token, _) in &self.server.status_replies {
                        waiting.remove(token);
                    }
                }
                Err(_) => continue,
            }
        }

        let mut reports: Vec<StatusReport> = std::mem::take(&mut self.server.status_replies)
            .into_iter()
            .filter_map(|(_, report)| report)
            .collect();
        reports.sort_by(|a, b| a.host.cmp(&b.host));
        Ok(reports)
    }

    /// Fetch every target's flight-recorder segment, paging each ring
    /// out with `TraceSegmentRequest` until a page comes back short.
    /// Returns one [`FlatSegment`] per answering host (sorted by
    /// host), ready for [`naplet_obs::merge_cluster_trace`]. A daemon
    /// that is down, refuses the privileged read, or never enabled its
    /// recorder contributes nothing.
    pub fn fetch_traces(
        &mut self,
        targets: &[String],
        timeout: Duration,
    ) -> Result<Vec<FlatSegment>> {
        const PAGE: u32 = 512;
        let id = NapletId::new(&self.key.principal, &self.station, Millis(1))?;
        let credential = Credential::issue(&self.key, id, "ops-plane", vec![]);
        let deadline = Instant::now() + timeout;
        let mut segments = Vec::new();
        for target in targets {
            // page this target's ring until a short page or deadline;
            // one host at a time keeps token bookkeeping trivial and
            // trace fetches are an offline/ops activity, not a hot path
            let mut merged: Option<TraceSegment> = None;
            let mut from_seq = 0u64;
            loop {
                self.next_token += 1;
                let token = self.next_token;
                let wire = Wire::TraceSegmentRequest {
                    token,
                    reply_to: self.station.clone(),
                    credential: credential.clone(),
                    from_seq,
                    max_events: PAGE,
                };
                if naplet_core::codec::to_bytes_into(&wire, &mut self.scratch).is_ok() {
                    let frame = Frame::new(
                        &self.station,
                        target,
                        wire.traffic_class(),
                        self.scratch.clone(),
                    );
                    let _ = self.net.send(frame);
                }
                let mut page: Option<Option<TraceSegment>> = None;
                while page.is_none() && Instant::now() < deadline {
                    match self.rx.recv_timeout(Duration::from_millis(20)) {
                        Ok(frame) => {
                            if let Ok(wire) = naplet_core::codec::from_bytes::<Wire>(&frame.payload)
                            {
                                let now = self.now();
                                let from = frame.from.clone();
                                let _ = self.server.handle(now, Input::Wire { from, wire });
                            }
                            for (t, seg) in std::mem::take(&mut self.server.trace_replies) {
                                if t == token {
                                    page = Some(seg);
                                }
                            }
                        }
                        Err(_) => continue,
                    }
                }
                let Some(Some(seg)) = page else {
                    // refused, recorder off, or timed out: keep what
                    // we have (possibly nothing) and move on
                    break;
                };
                let got = seg.events.len();
                let next_from = seg.start_seq + got as u64;
                match &mut merged {
                    None => merged = Some(seg),
                    Some(m) => {
                        m.next_seq = seg.next_seq;
                        m.dropped = seg.dropped;
                        m.events.extend(seg.events);
                    }
                }
                if got < PAGE as usize {
                    break;
                }
                from_seq = next_from;
            }
            if let Some(seg) = merged {
                segments.push(FlatSegment::from_segment(&seg));
            }
        }
        segments.sort_by(|a, b| a.host.cmp(&b.host));
        Ok(segments)
    }

    /// Page every target's metrics-history ring out over the
    /// privileged `MetricsHistoryRequest` protocol. Returns one merged
    /// [`MetricsHistoryPage`] per answering host (sorted by host). A
    /// daemon that is down, refuses the privileged read, or never
    /// enabled its history contributes nothing.
    pub fn fetch_metrics_history(
        &mut self,
        targets: &[String],
        timeout: Duration,
    ) -> Result<Vec<MetricsHistoryPage>> {
        const PAGE: u32 = 64;
        let id = NapletId::new(&self.key.principal, &self.station, Millis(1))?;
        let credential = Credential::issue(&self.key, id, "ops-plane", vec![]);
        let deadline = Instant::now() + timeout;
        let mut pages = Vec::new();
        for target in targets {
            // one host at a time, same as fetch_traces: token
            // bookkeeping stays trivial and this is an ops activity
            let mut merged: Option<MetricsHistoryPage> = None;
            let mut from_seq = 0u64;
            loop {
                self.next_token += 1;
                let token = self.next_token;
                let wire = Wire::MetricsHistoryRequest {
                    token,
                    reply_to: self.station.clone(),
                    credential: credential.clone(),
                    from_seq,
                    max_samples: PAGE,
                };
                if naplet_core::codec::to_bytes_into(&wire, &mut self.scratch).is_ok() {
                    let frame = Frame::new(
                        &self.station,
                        target,
                        wire.traffic_class(),
                        self.scratch.clone(),
                    );
                    let _ = self.net.send(frame);
                }
                let mut page: Option<Option<MetricsHistoryPage>> = None;
                while page.is_none() && Instant::now() < deadline {
                    match self.rx.recv_timeout(Duration::from_millis(20)) {
                        Ok(frame) => {
                            if let Ok(wire) = naplet_core::codec::from_bytes::<Wire>(&frame.payload)
                            {
                                let now = self.now();
                                let from = frame.from.clone();
                                let _ = self.server.handle(now, Input::Wire { from, wire });
                            }
                            for (t, p) in std::mem::take(&mut self.server.metrics_history_replies) {
                                if t == token {
                                    page = Some(p);
                                }
                            }
                        }
                        Err(_) => continue,
                    }
                }
                let Some(Some(p)) = page else {
                    // refused, history off, or timed out: keep what we
                    // have (possibly nothing) and move on
                    break;
                };
                let got = p.samples.len();
                let next_from = p.start_seq + got as u64;
                match &mut merged {
                    None => merged = Some(p),
                    Some(m) => {
                        m.next_seq = p.next_seq;
                        m.dropped = p.dropped;
                        m.total = p.total;
                        m.samples.extend(p.samples);
                    }
                }
                if got < PAGE as usize {
                    break;
                }
                from_seq = next_from;
            }
            if let Some(p) = merged {
                pages.push(p);
            }
        }
        pages.sort_by(|a, b| a.host.cmp(&b.host));
        Ok(pages)
    }

    /// Render fetched metrics histories as per-host rate tables: the
    /// last `rows` interval deltas, newest last, one line per sample
    /// with a few load-bearing counters pulled out. Drives
    /// `figures cluster-watch`.
    pub fn render_rate_table(pages: &[MetricsHistoryPage], rows: usize) -> String {
        let mut out = String::new();
        for page in pages {
            out.push_str(&format!(
                "{} ({} samples, {} dropped)\n",
                page.host, page.total, page.dropped
            ));
            out.push_str(
                "  at_ms       wire.sent  wire.drop  handoffs  retrans  probes  ops.reads\n",
            );
            let start = page.samples.len().saturating_sub(rows);
            for sample in &page.samples[start..] {
                let c = |name: &str| sample.delta.counters.get(name).copied().unwrap_or(0);
                out.push_str(&format!(
                    "  {:<10}  {:>9}  {:>9}  {:>8}  {:>7}  {:>6}  {:>9}\n",
                    sample.at,
                    c("wire.sent"),
                    c("wire.dropped"),
                    c("handoff.commits"),
                    c("handoff.retransmits"),
                    c("status.probes"),
                    c("trace.reads") + c("history.reads"),
                ));
            }
        }
        out
    }

    /// Field-level diff between two polls of the same cluster: one
    /// line per host that changed, naming each field as `old -> new`,
    /// plus `lost`/`appeared` lines for hosts present in only one
    /// poll. Drives `figures cluster-status --watch`.
    pub fn diff_reports(prev: &[StatusReport], next: &[StatusReport]) -> Vec<String> {
        let by_host =
            |reports: &[StatusReport]| -> std::collections::BTreeMap<String, StatusReport> {
                reports
                    .iter()
                    .map(|r| (r.host.clone(), r.clone()))
                    .collect()
            };
        let prev = by_host(prev);
        let next = by_host(next);
        let mut lines = Vec::new();
        for (host, old) in &prev {
            let Some(new) = next.get(host) else {
                lines.push(format!("{host}: lost (answered last poll, silent now)"));
                continue;
            };
            let mut changes = Vec::new();
            let mut field = |name: &str, a: u64, b: u64| {
                if a != b {
                    changes.push(format!("{name} {a} -> {b}"));
                }
            };
            field(
                "residents",
                old.residents.len() as u64,
                new.residents.len() as u64,
            );
            field("parked", old.parked, new.parked);
            field(
                "mailbox",
                old.mailbox_depth + old.special_mailbox_depth,
                new.mailbox_depth + new.special_mailbox_depth,
            );
            field("journal_entries", old.journal_entries, new.journal_entries);
            field("journal_bytes", old.journal_bytes, new.journal_bytes);
            field("leases_held", old.leases_held, new.leases_held);
            field("leases_expired", old.leases_expired, new.leases_expired);
            field(
                "leases_redispatched",
                old.leases_redispatched,
                new.leases_redispatched,
            );
            field("leases_lost", old.leases_lost, new.leases_lost);
            field(
                "locator_stale_hits",
                old.locator_stale_hits,
                new.locator_stale_hits,
            );
            field(
                "pending_transfers",
                old.pending_transfers,
                new.pending_transfers,
            );
            field(
                "outstanding_posts",
                old.outstanding_posts,
                new.outstanding_posts,
            );
            match (&old.repl, &new.repl) {
                (Some(a), Some(b)) => {
                    if a.role != b.role {
                        changes.push(format!("dir role {} -> {}", a.role, b.role));
                    }
                    if a.term != b.term {
                        changes.push(format!("dir term {} -> {}", a.term, b.term));
                    }
                    if a.commit != b.commit {
                        changes.push(format!("dir commit {} -> {}", a.commit, b.commit));
                    }
                    if a.last_index != b.last_index {
                        changes.push(format!("dir log {} -> {}", a.last_index, b.last_index));
                    }
                    if a.leader != b.leader {
                        changes.push(format!(
                            "dir leader {} -> {}",
                            a.leader.as_deref().unwrap_or("?"),
                            b.leader.as_deref().unwrap_or("?")
                        ));
                    }
                    if a.entries != b.entries {
                        changes.push(format!("dir entries {} -> {}", a.entries, b.entries));
                    }
                }
                (None, Some(_)) => changes.push("dir replica came up".into()),
                (Some(_), None) => changes.push("dir replica gone".into()),
                (None, None) => {}
            }
            if !changes.is_empty() {
                lines.push(format!("{host}: {}", changes.join(", ")));
            }
        }
        for host in next.keys() {
            if !prev.contains_key(host) {
                lines.push(format!("{host}: appeared (silent last poll)"));
            }
        }
        lines
    }

    /// Render reports as a fixed-width health table, the live
    /// counterpart of the `figures status` sim view.
    pub fn render_table(reports: &[StatusReport]) -> String {
        let mut out = String::new();
        out.push_str(
            "host        residents  parked  mailbox  journal(entries/bytes)  leases(held/exp/redisp/lost)\n",
        );
        for r in reports {
            out.push_str(&format!(
                "{:<11} {:>9}  {:>6}  {:>7}  {:>11}/{:<10}  {}/{}/{}/{}\n",
                r.host,
                r.residents.len(),
                r.parked,
                r.mailbox_depth + r.special_mailbox_depth,
                r.journal_entries,
                r.journal_bytes,
                r.leases_held,
                r.leases_expired,
                r.leases_redispatched,
                r.leases_lost,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use naplet_server::Daemon;
    use std::net::TcpListener;
    use std::sync::atomic::Ordering;

    fn free_addrs(n: usize) -> Vec<String> {
        // reserved until the Vec drops, just before the daemons bind
        let held: Vec<TcpListener> = (0..n)
            .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
            .collect();
        held.iter()
            .map(|l| l.local_addr().unwrap().to_string())
            .collect()
    }

    fn blank_report(host: &str) -> StatusReport {
        StatusReport {
            host: host.into(),
            at: Millis(0),
            residents: Vec::new(),
            parked: 0,
            mailbox_depth: 0,
            special_mailbox_depth: 0,
            journal_entries: 0,
            journal_bytes: 0,
            leases_held: 0,
            leases_expired: 0,
            leases_redispatched: 0,
            leases_lost: 0,
            locator_entries: 0,
            locator_hits: 0,
            locator_misses: 0,
            locator_stale_hits: 0,
            locator_evictions: 0,
            locator_oldest_age_ms: 0,
            pending_transfers: 0,
            outstanding_posts: 0,
            repl: None,
        }
    }

    #[test]
    fn diff_names_changed_fields_and_missing_hosts() {
        use naplet_server::ReplStatus;
        let mut a1 = blank_report("alpha");
        a1.journal_entries = 3;
        a1.repl = Some(ReplStatus {
            role: "follower".into(),
            term: 2,
            commit: 4,
            last_index: 4,
            leader: Some("beta".into()),
            entries: 1,
        });
        let b1 = blank_report("beta");
        let mut a2 = a1.clone();
        a2.journal_entries = 5;
        a2.parked = 1;
        a2.repl = Some(ReplStatus {
            role: "leader".into(),
            term: 3,
            commit: 9,
            last_index: 9,
            leader: Some("alpha".into()),
            entries: 1,
        });
        // beta answered poll 1 but not poll 2; gamma is new
        let g2 = blank_report("gamma");

        let diffs = ClusterStatusPoller::diff_reports(&[a1, b1], &[a2, g2]);
        let text = diffs.join("\n");
        assert!(text.contains("alpha: "), "{text}");
        assert!(text.contains("journal_entries 3 -> 5"), "{text}");
        assert!(text.contains("parked 0 -> 1"), "{text}");
        assert!(text.contains("dir role follower -> leader"), "{text}");
        assert!(text.contains("dir term 2 -> 3"), "{text}");
        assert!(text.contains("dir leader beta -> alpha"), "{text}");
        assert!(text.contains("beta: lost"), "{text}");
        assert!(text.contains("gamma: appeared"), "{text}");
        // unchanged fields stay silent
        assert!(!text.contains("leases_held"), "{text}");
    }

    #[test]
    fn diff_of_identical_polls_is_empty() {
        let a = blank_report("alpha");
        let diffs =
            ClusterStatusPoller::diff_reports(std::slice::from_ref(&a), std::slice::from_ref(&a));
        assert!(diffs.is_empty(), "{diffs:?}");
    }

    #[test]
    fn poller_fetches_flight_recorder_segments_from_live_daemons() {
        let addrs = free_addrs(3);
        let config = BootstrapConfig::parse(&format!(
            "[[node]]\nname = \"alpha\"\nlisten = \"{}\"\n\
             [[node]]\nname = \"beta\"\nlisten = \"{}\"\n\
             [[node]]\nname = \"mon\"\nlisten = \"{}\"\n",
            addrs[0], addrs[1], addrs[2]
        ))
        .unwrap();
        let alpha = Daemon::start(&config, "alpha").unwrap();
        let beta = Daemon::start(&config, "beta").unwrap();

        let mut poller = ClusterTracePoller::connect(&config, "mon").unwrap();
        let targets = vec!["alpha".to_string(), "beta".to_string()];
        // a status poll first, so each daemon's recorder has at least
        // its wire.recv/wire.send pair for the status exchange
        let reports = poller.poll(&targets, Duration::from_secs(10)).unwrap();
        assert_eq!(reports.len(), 2);

        let segments = poller
            .fetch_traces(&targets, Duration::from_secs(10))
            .unwrap();
        let hosts: Vec<&str> = segments.iter().map(|s| s.host.as_str()).collect();
        assert_eq!(hosts, vec!["alpha", "beta"], "both daemons must answer");
        for seg in &segments {
            assert!(
                seg.events.iter().any(|e| e.name == "wire.recv"),
                "{}'s segment must show the status request arriving: {:?}",
                seg.host,
                seg.events.iter().map(|e| &e.name).collect::<Vec<_>>()
            );
            assert!(
                seg.epoch_unix_ms > 0,
                "daemon recorders anchor to UNIX time"
            );
        }

        // the fetched segments merge into one valid Chrome trace with
        // no causality violations (status traffic carries no journey
        // context, so nothing can be flagged)
        let merged = naplet_obs::merge_cluster_trace(&segments, 5_000);
        naplet_obs::validate_chrome_trace(&merged.json).unwrap();
        assert!(merged.violations.is_empty(), "{:?}", merged.violations);
        assert!(merged.event_count > 0);

        for daemon in [alpha, beta] {
            daemon.shutdown_flag().store(true, Ordering::Relaxed);
            daemon.run().unwrap();
        }
    }

    #[test]
    fn poller_fetches_metrics_history_from_live_daemons() {
        let addrs = free_addrs(2);
        let config = BootstrapConfig::parse(&format!(
            "[[node]]\nname = \"alpha\"\nlisten = \"{}\"\n\
             [[node]]\nname = \"mon\"\nlisten = \"{}\"\n",
            addrs[0], addrs[1]
        ))
        .unwrap();
        let alpha = Daemon::start(&config, "alpha").unwrap();

        let mut poller = ClusterStatusPoller::connect(&config, "mon").unwrap();
        let targets = vec!["alpha".to_string()];
        // a status poll first so the daemon has wire traffic to sample,
        // then wait out at least one sweep tick so the history ring
        // holds a sample covering it
        let reports = poller.poll(&targets, Duration::from_secs(10)).unwrap();
        assert_eq!(reports.len(), 1);
        let probes_in = |pages: &[MetricsHistoryPage]| -> u64 {
            pages
                .iter()
                .flat_map(|p| &p.samples)
                .filter_map(|s| s.delta.counters.get("status.probes"))
                .sum()
        };
        let deadline = Instant::now() + Duration::from_secs(15);
        let pages = loop {
            let pages = poller
                .fetch_metrics_history(&targets, Duration::from_secs(10))
                .unwrap();
            if probes_in(&pages) > 0 || Instant::now() > deadline {
                break pages;
            }
            std::thread::sleep(Duration::from_millis(100));
        };
        assert_eq!(pages.len(), 1, "alpha must answer the history read");
        let page = &pages[0];
        assert_eq!(page.host, "alpha");
        assert!(
            page.epoch_unix_ms > 0,
            "daemon histories anchor to UNIX time"
        );
        assert!(!page.samples.is_empty(), "sweep thread must have sampled");
        assert!(
            probes_in(&pages) > 0,
            "the status poll must appear in some delta"
        );

        let table = ClusterStatusPoller::render_rate_table(&pages, 10);
        assert!(table.contains("alpha"), "{table}");
        assert!(table.contains("wire.sent"), "{table}");

        alpha.shutdown_flag().store(true, Ordering::Relaxed);
        alpha.run().unwrap();
    }

    #[test]
    fn poller_collects_reports_from_live_daemons() {
        let addrs = free_addrs(3);
        let config = BootstrapConfig::parse(&format!(
            "[[node]]\nname = \"alpha\"\nlisten = \"{}\"\n\
             [[node]]\nname = \"beta\"\nlisten = \"{}\"\n\
             [[node]]\nname = \"mon\"\nlisten = \"{}\"\n",
            addrs[0], addrs[1], addrs[2]
        ))
        .unwrap();
        let alpha = Daemon::start(&config, "alpha").unwrap();
        let beta = Daemon::start(&config, "beta").unwrap();

        let mut poller = ClusterStatusPoller::connect(&config, "mon").unwrap();
        let targets = vec!["alpha".to_string(), "beta".to_string()];
        let reports = poller.poll(&targets, Duration::from_secs(10)).unwrap();
        let hosts: Vec<&str> = reports.iter().map(|r| r.host.as_str()).collect();
        assert_eq!(hosts, vec!["alpha", "beta"], "both daemons must answer");

        let table = ClusterStatusPoller::render_table(&reports);
        assert!(table.contains("alpha") && table.contains("beta"));

        // an unknown target contributes nothing — the send is a
        // counted drop, not an error, and the poll times out clean
        let none = poller
            .poll(&["ghost".to_string()], Duration::from_millis(200))
            .unwrap();
        assert!(none.is_empty(), "no daemon named ghost can answer");

        for daemon in [alpha, beta] {
            let flag = daemon.shutdown_flag();
            flag.store(true, Ordering::Relaxed);
            daemon.run().unwrap();
        }
    }
}
