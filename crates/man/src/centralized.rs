//! The conventional centralized SNMP baseline (paper §6, first
//! paragraph): "a management station communicates to the SNMP agents
//! via a number of fine-grained get and set operations for MIB
//! parameters. This centralized micro-management approach for large
//! networks tends to generate heavy traffic between the management
//! station and network devices and excessive computational overhead on
//! the management station."
//!
//! The station is a server host whose application traffic (`Snmp`
//! class) rides the same fabric the agents do, so both paradigms are
//! metered identically.

use std::collections::BTreeMap;

use naplet_core::clock::Millis;
use naplet_core::credential::{Credential, SigningKey};
use naplet_core::error::{NapletError, Result};
use naplet_core::id::NapletId;
use naplet_core::value::Value;
use naplet_server::{SimRuntime, StatusReport, Wire};
use naplet_snmp::{Oid, SnmpOp, SnmpRequest, SnmpResponse};

use crate::service::SharedDevice;

/// Dispatch tag for SNMP application traffic.
pub const SNMP_TAG: &str = "snmp";

/// Install the device-side endpoint: the server answers `snmp`-tagged
/// application requests from its local device agent (the SNMP daemon).
pub fn install_snmp_endpoint(server: &mut naplet_server::NapletServer, device: SharedDevice) {
    server.set_app_handler(move |tag, body| {
        if tag != SNMP_TAG {
            return Err(NapletError::Service(format!("unknown app tag `{tag}`")));
        }
        let request: SnmpRequest = naplet_core::codec::from_bytes(body)?;
        let response = device.lock().agent_mut().handle(&request);
        naplet_core::codec::to_bytes(&response)
    });
}

/// Per-device polling results: OID → value bindings in request order.
pub type PollResults = BTreeMap<String, Vec<(Oid, Value)>>;

/// The centralized management station.
pub struct CentralizedManager {
    /// Server host the station runs at.
    pub station: String,
    /// Community string used for queries.
    pub community: String,
    next_token: u64,
    /// Request PDUs issued so far — the "computational overhead on the
    /// management station" proxy (one round of work per PDU).
    pub station_ops: u64,
}

impl CentralizedManager {
    /// Station at `host`.
    pub fn new(host: &str) -> CentralizedManager {
        CentralizedManager {
            station: host.to_string(),
            community: "public".into(),
            next_token: 0,
            station_ops: 0,
        }
    }

    fn send(&mut self, rt: &mut SimRuntime, device: &str, op: SnmpOp) -> Result<u64> {
        self.next_token += 1;
        self.station_ops += 1;
        let token = self.next_token;
        let request = SnmpRequest {
            community: self.community.clone(),
            op,
        };
        rt.station_send(
            &self.station.clone(),
            device,
            Wire::AppRequest {
                token,
                reply_to: self.station.clone(),
                tag: SNMP_TAG.into(),
                body: naplet_core::codec::to_bytes(&request)?,
            },
        )?;
        Ok(token)
    }

    fn drain_replies(&self, rt: &mut SimRuntime) -> Result<BTreeMap<u64, SnmpResponse>> {
        let server = rt
            .server_mut(&self.station)
            .ok_or_else(|| NapletError::NotFound(format!("no server at `{}`", self.station)))?;
        let replies = std::mem::take(&mut server.app_replies);
        let mut out = BTreeMap::new();
        for (token, _tag, body) in replies {
            let decoded: std::result::Result<Vec<u8>, String> =
                naplet_core::codec::from_bytes(&body)?;
            let payload = decoded.map_err(NapletError::Service)?;
            let response: SnmpResponse = naplet_core::codec::from_bytes(&payload)?;
            out.insert(token, response);
        }
        Ok(out)
    }

    /// Poll every device for every OID.
    ///
    /// `fine_grained` reproduces the paper's micro-management: **one
    /// request PDU per variable per device**. When false, the station
    /// batches all OIDs of a device into a single Get (the kindest
    /// possible client/server baseline).
    pub fn poll(
        &mut self,
        rt: &mut SimRuntime,
        devices: &[String],
        oids: &[Oid],
        fine_grained: bool,
    ) -> Result<PollResults> {
        let mut tokens: BTreeMap<u64, String> = BTreeMap::new();
        for device in devices {
            if fine_grained {
                for oid in oids {
                    let t = self.send(rt, device, SnmpOp::Get(vec![oid.instance_or_self()]))?;
                    tokens.insert(t, device.clone());
                }
            } else {
                let all: Vec<Oid> = oids.iter().map(Oid::instance_or_self).collect();
                let t = self.send(rt, device, SnmpOp::Get(all))?;
                tokens.insert(t, device.clone());
            }
        }
        rt.run_to_quiescence(10_000_000);
        let replies = self.drain_replies(rt)?;
        let mut results: PollResults = BTreeMap::new();
        for (token, device) in tokens {
            let Some(resp) = replies.get(&token) else {
                return Err(NapletError::Communication(format!(
                    "no reply for token {token} from {device}"
                )));
            };
            results
                .entry(device)
                .or_default()
                .extend(resp.bindings.iter().cloned());
        }
        Ok(results)
    }

    /// Poll every target server's ops-plane status over the wire-level
    /// status protocol. The privileged `StatusRequest` frames carry a
    /// credential issued under `key`; a server whose security policy
    /// denies `PrivilegedService("status")` answers with no report and
    /// is omitted from the result. Reports come back sorted by host,
    /// so the same world polled twice encodes byte-identically.
    pub fn status_poll(
        &mut self,
        rt: &mut SimRuntime,
        targets: &[String],
        key: &SigningKey,
    ) -> Result<Vec<StatusReport>> {
        let id = NapletId::new(&key.principal, &self.station, Millis(1))?;
        let credential = Credential::issue(key, id, "ops-plane", vec![]);
        for target in targets {
            self.next_token += 1;
            self.station_ops += 1;
            rt.station_send(
                &self.station.clone(),
                target,
                Wire::StatusRequest {
                    token: self.next_token,
                    reply_to: self.station.clone(),
                    credential: credential.clone(),
                },
            )?;
        }
        rt.run_to_quiescence(10_000_000);
        let server = rt
            .server_mut(&self.station)
            .ok_or_else(|| NapletError::NotFound(format!("no server at `{}`", self.station)))?;
        let mut reports: Vec<StatusReport> = std::mem::take(&mut server.status_replies)
            .into_iter()
            .filter_map(|(_, report)| report)
            .collect();
        reports.sort_by(|a, b| a.host.cmp(&b.host));
        Ok(reports)
    }

    /// Walk a subtree on every device with per-variable get-next
    /// round trips (the classic table retrieval cost).
    pub fn walk(
        &mut self,
        rt: &mut SimRuntime,
        devices: &[String],
        root: &Oid,
    ) -> Result<PollResults> {
        let mut results: PollResults = BTreeMap::new();
        for device in devices {
            let mut cursor = root.clone();
            loop {
                let t = self.send(rt, device, SnmpOp::GetNext(cursor.clone()))?;
                rt.run_to_quiescence(10_000_000);
                let replies = self.drain_replies(rt)?;
                let Some(resp) = replies.get(&t) else {
                    return Err(NapletError::Communication("walk reply lost".into()));
                };
                if !resp.is_ok() {
                    break; // end of MIB
                }
                let (oid, value) = resp.bindings[0].clone();
                if !root.is_prefix_of(&oid) {
                    break; // left the subtree
                }
                cursor = oid.clone();
                results
                    .entry(device.clone())
                    .or_default()
                    .push((oid, value));
            }
        }
        Ok(results)
    }
}

/// `oid.instance()` for bare object ids, identity for instances that
/// already end in an index. Heuristic: treat OIDs ending in `0` or
/// deeper than 9 arcs as instances already.
trait InstanceOrSelf {
    fn instance_or_self(&self) -> Oid;
}

impl InstanceOrSelf for Oid {
    fn instance_or_self(&self) -> Oid {
        match self.parts().last() {
            Some(0) => self.clone(),
            _ if self.len() > 9 => self.clone(),
            _ => self.instance(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use naplet_snmp::oids;

    #[test]
    fn instance_heuristic() {
        let bare: Oid = "1.3.6.1.2.1.1.5".parse().unwrap();
        assert_eq!(bare.instance_or_self().to_string(), "1.3.6.1.2.1.1.5.0");
        let inst: Oid = "1.3.6.1.2.1.1.5.0".parse().unwrap();
        assert_eq!(inst.instance_or_self(), inst);
        // table cells are already instances (deep OIDs)
        let cell = oids::if_entry().extend(&[oids::IF_IN_OCTETS, 3]);
        assert_eq!(cell.instance_or_self(), cell);
    }
}
