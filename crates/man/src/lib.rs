//! # naplet-man
//!
//! MAN — Mobile Agents for Network management (paper §6): the
//! application layer built on the Naplet framework, plus the
//! conventional centralized SNMP baseline it is evaluated against.
//!
//! * [`service`] — the `serviceImpl.NetManagement` privileged service
//!   binding a naplet server to its local device's SNMP agent;
//! * [`nm_naplet`](mod@nm_naplet) — the `NMNaplet` behaviour (sequential, broadcast,
//!   threshold-filtering and VM-bytecode variants);
//! * [`centralized`] — the SNMP micro-management baseline running from
//!   a management station over the same metered fabric;
//! * [`live_ops`] — the same status protocol pointed at a real
//!   `napletd` cluster over TCP;
//! * [`workload`] — MIB variable sets for health polls, table walks
//!   and error diagnosis;
//! * [`world`] — the NOC + n-device experiment world with per-round
//!   traffic/latency outcomes.

#![warn(missing_docs)]

pub mod centralized;
pub mod live_ops;
pub mod nm_naplet;
pub mod service;
pub mod workload;
pub mod world;

pub use centralized::{install_snmp_endpoint, CentralizedManager, SNMP_TAG};
pub use live_ops::{ClusterStatusPoller, ClusterTracePoller};
pub use nm_naplet::{
    nm_naplet, nm_vm_naplet, nm_vm_program, register_nm_codebase, with_threshold, NmBehavior,
    NM_CODEBASE, NM_CODE_SIZE,
};
pub use service::{NetManagement, SharedDevice, NET_MANAGEMENT};
pub use workload::{diagnosis_oids, health_oids, params_string};
pub use world::{ManWorld, PollOutcome};
