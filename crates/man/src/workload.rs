//! Management workloads: which MIB variables a task needs.
//!
//! The experiments sweep the number of variables polled per device
//! (`m`), so workloads are generated: a health snapshot draws from the
//! system/ip/snmp scalars first and then interface-table cells, giving
//! arbitrarily large but realistic parameter lists.

use naplet_snmp::{oids, Oid};

/// Scalar + table OIDs for a health snapshot of `m` variables on a
/// device with `interfaces` interfaces.
pub fn health_oids(m: usize, interfaces: u32) -> Vec<Oid> {
    let mut pool: Vec<Oid> = vec![
        oids::sys_descr(),
        oids::sys_uptime(),
        oids::sys_name(),
        oids::sys_location(),
        oids::if_number(),
        oids::ip_in_receives(),
        oids::ip_forw_datagrams(),
        oids::snmp_in_pkts(),
    ];
    let table_cols = [
        oids::IF_OPER_STATUS,
        oids::IF_IN_OCTETS,
        oids::IF_OUT_OCTETS,
        oids::IF_IN_ERRORS,
        oids::IF_OUT_ERRORS,
        oids::IF_SPEED,
        oids::IF_MTU,
        oids::IF_DESCR,
    ];
    let entry = oids::if_entry();
    'outer: for col in table_cols {
        for i in 1..=interfaces.max(1) {
            pool.push(entry.extend(&[col, i]));
            if pool.len() >= m {
                break 'outer;
            }
        }
    }
    // if still short (huge m), repeat uptime probes — distinct requests
    // in the protocol sense even when the OID repeats
    while pool.len() < m {
        pool.push(oids::sys_uptime());
    }
    pool.truncate(m);
    pool
}

/// The error-diagnosis variable set: error counters + status per
/// interface.
pub fn diagnosis_oids(interfaces: u32) -> Vec<Oid> {
    let entry = oids::if_entry();
    let mut v = Vec::new();
    for i in 1..=interfaces {
        v.push(entry.extend(&[oids::IF_OPER_STATUS, i]));
        v.push(entry.extend(&[oids::IF_IN_ERRORS, i]));
        v.push(entry.extend(&[oids::IF_OUT_ERRORS, i]));
    }
    v
}

/// The paper-style `;`-separated parameter string for a naplet.
pub fn params_string(oids: &[Oid]) -> String {
    oids.iter()
        .map(Oid::to_string)
        .collect::<Vec<_>>()
        .join(";")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn health_oids_sized_exactly() {
        for m in [1, 4, 8, 12, 40, 100] {
            assert_eq!(health_oids(m, 4).len(), m, "m={m}");
        }
    }

    #[test]
    fn health_prefers_scalars_first() {
        let v = health_oids(3, 4);
        assert_eq!(v[0], oids::sys_descr());
        assert_eq!(v[1], oids::sys_uptime());
    }

    #[test]
    fn diagnosis_covers_every_interface() {
        let v = diagnosis_oids(5);
        assert_eq!(v.len(), 15);
    }

    #[test]
    fn params_string_round_trips() {
        let oids = health_oids(5, 2);
        let s = params_string(&oids);
        assert_eq!(s.split(';').count(), 5);
        let back: Vec<Oid> = s.split(';').map(|p| p.parse().unwrap()).collect();
        assert_eq!(back, oids);
    }
}
