//! The `NetManagement` privileged service (paper §6.1).
//!
//! "Following is a NetManagement class extended from a naplet
//! PrivilegedService base class. It is instantiated by the naplet
//! ResourceManager and associated with a pair of ServiceReader and
//! ServiceWriter channels … Through the input channel, the
//! NapletServer gets input parameters from naplets and re-organizes
//! them into an AdventNet SNMP format … The information is returned to
//! the naplet through the out channel."
//!
//! Here the AdventNet stack is replaced by the local simulated device's
//! [`naplet_snmp::SnmpAgent`] (DESIGN.md §2). The request protocol mirrors the
//! paper: a `;`-separated list of MIB parameters, answered one result
//! line per parameter; a `walk <oid>` form returns a whole subtree.

use std::sync::Arc;

use parking_lot::Mutex;

use naplet_core::error::Result;
use naplet_core::value::Value;
use naplet_server::service_channel::{bad_request, ChannelIo, PrivilegedService};
use naplet_snmp::{Oid, SimulatedDevice, SnmpOp, SnmpRequest};

/// Registered name of the privileged service — incoming naplets access
/// it exactly as in the paper.
pub const NET_MANAGEMENT: &str = "serviceImpl.NetManagement";

/// Shared handle to the host's simulated device.
pub type SharedDevice = Arc<Mutex<SimulatedDevice>>;

/// The privileged MIB-access service.
pub struct NetManagement {
    device: SharedDevice,
    community: String,
}

impl NetManagement {
    /// Bind the service to the local device, querying with the given
    /// community string.
    pub fn new(device: SharedDevice, community: &str) -> NetManagement {
        NetManagement {
            device,
            community: community.to_string(),
        }
    }

    /// The paper's configuration: community "public".
    pub fn standard(device: SharedDevice) -> NetManagement {
        NetManagement::new(device, "public")
    }

    fn get_one(&self, param: &str) -> Value {
        let Ok(oid) = param.trim().parse::<Oid>() else {
            return Value::map([
                ("oid", Value::from(param.trim())),
                ("error", Value::from("bad oid")),
            ]);
        };
        let mut device = self.device.lock();
        let agent = device.agent_mut();
        // the paper appends ".0" for scalars; accept both full
        // instances and bare object ids
        let mut resp = agent.handle(&SnmpRequest {
            community: self.community.clone(),
            op: SnmpOp::Get(vec![oid.clone()]),
        });
        if !resp.is_ok() {
            resp = agent.handle(&SnmpRequest {
                community: self.community.clone(),
                op: SnmpOp::Get(vec![oid.instance()]),
            });
        }
        match resp.bindings.into_iter().next() {
            Some((bound, value)) if resp.error == naplet_snmp::SnmpError::NoError => {
                Value::map([("oid", Value::from(bound.to_string())), ("value", value)])
            }
            _ => Value::map([
                ("oid", Value::from(oid.to_string())),
                ("error", Value::from(format!("{:?}", resp.error))),
            ]),
        }
    }

    fn walk(&self, root: &str) -> Result<Vec<Value>> {
        let oid: Oid = root
            .trim()
            .parse()
            .map_err(|_| bad_request(format!("bad walk oid `{root}`")))?;
        let mut device = self.device.lock();
        let resp = device.agent_mut().handle(&SnmpRequest {
            community: self.community.clone(),
            op: SnmpOp::Walk(oid),
        });
        Ok(resp
            .bindings
            .into_iter()
            .map(|(o, v)| Value::map([("oid", Value::from(o.to_string())), ("value", v)]))
            .collect())
    }
}

impl PrivilegedService for NetManagement {
    fn serve(&self, io: &mut ChannelIo<'_>) -> Result<()> {
        // `for(;;) { cmd = in.readLine(); … out.writeLine(result); }`
        while let Some(cmd) = io.read_line() {
            let cmd = cmd
                .as_str()
                .map_err(|_| bad_request("command must be a string"))?
                .to_string();
            if let Some(root) = cmd.strip_prefix("walk ") {
                for line in self.walk(root)? {
                    io.write_line(line);
                }
            } else {
                // `;`-separated MIB parameters, one result line each
                for param in cmd.split(';').filter(|p| !p.trim().is_empty()) {
                    io.write_line(self.get_one(param));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use naplet_core::clock::Millis;
    use naplet_core::id::NapletId;
    use naplet_server::service_channel::ServiceChannel;
    use naplet_snmp::DeviceProfile;

    fn device() -> SharedDevice {
        Arc::new(Mutex::new(SimulatedDevice::new(
            "r1",
            DeviceProfile::default(),
            5,
        )))
    }

    fn channel() -> ServiceChannel {
        ServiceChannel::new(NapletId::new("u", "h", Millis(0)).unwrap(), NET_MANAGEMENT)
    }

    #[test]
    fn semicolon_separated_parameters() {
        let svc = NetManagement::standard(device());
        let mut ch = channel();
        // paper-style: object ids without instance suffix
        let reply = ch
            .exchange(&svc, Value::from("1.3.6.1.2.1.1.5;1.3.6.1.2.1.1.3"))
            .unwrap();
        let lines = reply.as_list().unwrap();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].get("value"), Value::from("r1"));
        assert_eq!(lines[0].get("oid"), Value::from("1.3.6.1.2.1.1.5.0"));
        assert_eq!(lines[1].get("value"), Value::Int(0)); // uptime, no ticks
    }

    #[test]
    fn full_instances_also_work() {
        let svc = NetManagement::standard(device());
        let mut ch = channel();
        let reply = ch.exchange(&svc, Value::from("1.3.6.1.2.1.1.5.0")).unwrap();
        assert_eq!(reply.get("value"), Value::from("r1"));
    }

    #[test]
    fn unknown_parameter_reports_error_line() {
        let svc = NetManagement::standard(device());
        let mut ch = channel();
        let reply = ch.exchange(&svc, Value::from("9.9.9")).unwrap();
        assert!(reply.get("error").is_truthy());
    }

    #[test]
    fn walk_returns_subtree() {
        let svc = NetManagement::standard(device());
        let mut ch = channel();
        let reply = ch
            .exchange(&svc, Value::from("walk 1.3.6.1.2.1.1"))
            .unwrap();
        assert_eq!(reply.as_list().unwrap().len(), 5); // system scalars
    }

    #[test]
    fn queries_go_through_the_real_agent() {
        let dev = device();
        let svc = NetManagement::standard(Arc::clone(&dev));
        let mut ch = channel();
        ch.exchange(&svc, Value::from("1.3.6.1.2.1.1.5")).unwrap();
        ch.exchange(&svc, Value::from("1.3.6.1.2.1.1.5")).unwrap();
        assert!(dev.lock().agent().requests_served >= 2);
    }

    #[test]
    fn non_string_command_rejected() {
        let svc = NetManagement::standard(device());
        let mut ch = channel();
        assert!(ch.exchange(&svc, Value::Int(3)).is_err());
    }
}
