//! The MAN experiment world: a NOC plus `n` managed devices, runnable
//! under either management paradigm with identical metering.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use parking_lot::Mutex;

use naplet_core::clock::Millis;
use naplet_core::credential::SigningKey;
use naplet_core::error::{NapletError, Result};
use naplet_core::value::Value;
use naplet_net::{Bandwidth, Fabric, LatencyModel, StatsSnapshot};
use naplet_server::{LocationMode, ServerConfig, SimRuntime};
use naplet_snmp::{DeviceProfile, Oid, SimulatedDevice};

use crate::centralized::{install_snmp_endpoint, CentralizedManager};
use crate::nm_naplet::{nm_naplet, nm_vm_naplet, register_nm_codebase, with_threshold};
use crate::service::{NetManagement, SharedDevice, NET_MANAGEMENT};
use crate::workload::params_string;

/// Outcome of one management round, comparable across paradigms.
#[derive(Debug, Clone)]
pub struct PollOutcome {
    /// Per-device result lines.
    pub per_device: BTreeMap<String, Value>,
    /// Virtual completion time of the round (ms).
    pub completion_ms: u64,
    /// Traffic delta for the round.
    pub stats: StatsSnapshot,
    /// Protocol interactions the management station performed itself
    /// (request PDUs for the baseline; launches + reports for agents)
    /// — the "computational overhead on the management station" proxy.
    pub station_ops: u64,
}

impl PollOutcome {
    /// Total bytes this round put on the wire.
    pub fn total_bytes(&self) -> u64 {
        self.stats.total_bytes()
    }
}

/// The experiment world.
pub struct ManWorld {
    /// The runtime (exposed for custom experiments / fault injection).
    pub rt: SimRuntime,
    /// Device host names (`d0`, `d1`, …).
    pub devices: Vec<String>,
    /// The simulated hardware behind each device host.
    pub shared: HashMap<String, SharedDevice>,
    /// The management/NOC host (agents' home; baseline station).
    pub noc: String,
    key: SigningKey,
    next_ts: u64,
}

impl ManWorld {
    /// Build a world of `n_devices` devices, each with `interfaces`
    /// interfaces, over the given link models. Deterministic under
    /// `seed`.
    pub fn build(
        n_devices: usize,
        interfaces: u32,
        latency: LatencyModel,
        bandwidth: Bandwidth,
        seed: u64,
    ) -> ManWorld {
        let fabric = Fabric::new(latency, bandwidth, seed);
        let mut rt = SimRuntime::new(fabric);
        let noc = "noc".to_string();
        let mode = LocationMode::CentralDirectory(noc.clone());

        let mut codebase = naplet_core::codebase::CodebaseRegistry::new();
        register_nm_codebase(&mut codebase);

        let mut cfg = ServerConfig::open(&noc, mode.clone());
        cfg.codebase = codebase.clone();
        rt.add_server(cfg);

        let mut devices = Vec::with_capacity(n_devices);
        let mut shared = HashMap::new();
        for i in 0..n_devices {
            let host = format!("d{i}");
            let device: SharedDevice = Arc::new(Mutex::new(SimulatedDevice::new(
                &host,
                DeviceProfile {
                    interfaces,
                    ..DeviceProfile::default()
                },
                seed ^ (i as u64).wrapping_mul(0x9E37_79B9),
            )));
            let mut cfg = ServerConfig::open(&host, mode.clone());
            cfg.codebase = codebase.clone();
            let server = rt.add_server(cfg);
            server
                .resources
                .register_privileged(NET_MANAGEMENT, NetManagement::standard(Arc::clone(&device)));
            install_snmp_endpoint(server, Arc::clone(&device));
            shared.insert(host.clone(), device);
            devices.push(host);
        }
        ManWorld {
            rt,
            devices,
            shared,
            noc,
            key: SigningKey::new("czxu", b"noc-secret"),
            next_ts: 0,
        }
    }

    /// Advance every device's synthetic workload by `ms`.
    pub fn tick_devices(&mut self, ms: u64) {
        for device in self.shared.values() {
            device.lock().tick(ms);
        }
    }

    fn fresh_ts(&mut self) -> Millis {
        self.next_ts += 1;
        Millis(self.next_ts)
    }

    fn device_refs(&self) -> Vec<&str> {
        self.devices.iter().map(String::as_str).collect()
    }

    /// Run one mobile-agent management round (paper §6.2):
    /// `broadcast` picks the Par itinerary (one clone per device),
    /// otherwise a single agent visits sequentially; `threshold`
    /// enables on-site filtering.
    pub fn agent_poll(
        &mut self,
        oids: &[Oid],
        broadcast: bool,
        threshold: Option<i64>,
    ) -> Result<PollOutcome> {
        let before = self.rt.fabric().stats().snapshot();
        let t0 = self.rt.now();
        let ts = self.fresh_ts();
        let devices = self.device_refs();
        let mut naplet = nm_naplet(
            &self.key,
            "czxu",
            &self.noc,
            ts,
            &devices,
            &params_string(oids),
            broadcast,
        )?;
        if let Some(t) = threshold {
            naplet = with_threshold(naplet, t);
        }
        self.rt.launch(naplet)?;
        self.rt.run_to_quiescence(50_000_000);
        let reports = self.rt.drain_reports(&self.noc);
        if reports.is_empty() {
            return Err(NapletError::Internal(
                "agent round produced no reports".into(),
            ));
        }
        let mut per_device = BTreeMap::new();
        for (_, report) in &reports {
            if let Value::Map(status) = report.get("DeviceStatus") {
                for (host, lines) in status {
                    per_device.insert(host.clone(), lines.clone());
                }
            }
        }
        Ok(PollOutcome {
            per_device,
            completion_ms: self.rt.now().since(t0),
            stats: self.rt.fabric().stats().snapshot().since(&before),
            station_ops: 1 + reports.len() as u64,
        })
    }

    /// Run one round with the VM-bytecode agent (sequential itinerary,
    /// strong mobility).
    pub fn vm_agent_poll(&mut self, oids: &[Oid]) -> Result<PollOutcome> {
        let before = self.rt.fabric().stats().snapshot();
        let t0 = self.rt.now();
        let ts = self.fresh_ts();
        let devices = self.device_refs();
        let naplet = nm_vm_naplet(
            &self.key,
            "czxu",
            &self.noc,
            ts,
            &devices,
            &params_string(oids),
        )?;
        self.rt.launch(naplet)?;
        self.rt.run_to_quiescence(50_000_000);
        let reports = self.rt.drain_reports(&self.noc);
        if reports.is_empty() {
            return Err(NapletError::Internal("vm round produced no reports".into()));
        }
        let mut per_device = BTreeMap::new();
        for (_, report) in &reports {
            if let Value::List(entries) = report {
                for e in entries {
                    if let Ok(host) = e.get("host").as_str() {
                        per_device.insert(host.to_string(), e.get("data"));
                    }
                }
            }
        }
        Ok(PollOutcome {
            per_device,
            completion_ms: self.rt.now().since(t0),
            stats: self.rt.fabric().stats().snapshot().since(&before),
            station_ops: 1 + reports.len() as u64,
        })
    }

    /// Warm every host's code cache with one throwaway broadcast round
    /// (steady-state periodic management never pays the code transfer;
    /// experiment E7 measures the cold/warm difference itself).
    pub fn warm(&mut self) -> Result<()> {
        let oids = [naplet_snmp::oids::sys_uptime()];
        let _ = self.agent_poll(&oids, true, None)?;
        Ok(())
    }

    /// Mobile-agent table retrieval: broadcast clones each walk the
    /// given subtree locally through the NetManagement channel.
    pub fn agent_walk(&mut self, root: &Oid) -> Result<PollOutcome> {
        let before = self.rt.fabric().stats().snapshot();
        let t0 = self.rt.now();
        let ts = self.fresh_ts();
        let devices = self.device_refs();
        let naplet = nm_naplet(
            &self.key,
            "czxu",
            &self.noc,
            ts,
            &devices,
            &format!("walk {root}"),
            true,
        )?;
        self.rt.launch(naplet)?;
        self.rt.run_to_quiescence(50_000_000);
        let reports = self.rt.drain_reports(&self.noc);
        if reports.is_empty() {
            return Err(NapletError::Internal(
                "agent walk produced no reports".into(),
            ));
        }
        let mut per_device = BTreeMap::new();
        for (_, report) in &reports {
            if let Value::Map(status) = report.get("DeviceStatus") {
                for (host, lines) in status {
                    per_device.insert(host.clone(), lines.clone());
                }
            }
        }
        Ok(PollOutcome {
            per_device,
            completion_ms: self.rt.now().since(t0),
            stats: self.rt.fabric().stats().snapshot().since(&before),
            station_ops: 1 + reports.len() as u64,
        })
    }

    /// Centralized table retrieval: the station walks the subtree on
    /// every device with sequential get-next round trips — the classic
    /// SNMP micro-management cost the paper criticizes.
    pub fn centralized_walk(&mut self, root: &Oid) -> Result<PollOutcome> {
        let before = self.rt.fabric().stats().snapshot();
        let t0 = self.rt.now();
        let mut manager = CentralizedManager::new(&self.noc);
        let devices = self.devices.clone();
        let results = manager.walk(&mut self.rt, &devices, root)?;
        let per_device = results
            .into_iter()
            .map(|(host, bindings)| {
                let lines: Vec<Value> = bindings
                    .into_iter()
                    .map(|(oid, v)| {
                        Value::map([("oid", Value::from(oid.to_string())), ("value", v)])
                    })
                    .collect();
                (host, Value::List(lines))
            })
            .collect();
        Ok(PollOutcome {
            per_device,
            completion_ms: self.rt.now().since(t0),
            stats: self.rt.fabric().stats().snapshot().since(&before),
            station_ops: manager.station_ops,
        })
    }

    /// Poll every device server's ops-plane health over the wire-level
    /// status protocol (the NOC acts as the probing station). Reports
    /// come back sorted by host.
    pub fn cluster_status(&mut self) -> Result<Vec<naplet_server::StatusReport>> {
        let mut manager = CentralizedManager::new(&self.noc);
        let devices = self.devices.clone();
        manager.status_poll(&mut self.rt, &devices, &self.key)
    }

    /// Run one centralized-SNMP round (the §6 baseline).
    pub fn centralized_poll(&mut self, oids: &[Oid], fine_grained: bool) -> Result<PollOutcome> {
        let before = self.rt.fabric().stats().snapshot();
        let t0 = self.rt.now();
        let mut manager = CentralizedManager::new(&self.noc);
        let devices = self.devices.clone();
        let results = manager.poll(&mut self.rt, &devices, oids, fine_grained)?;
        let per_device = results
            .into_iter()
            .map(|(host, bindings)| {
                let lines: Vec<Value> = bindings
                    .into_iter()
                    .map(|(oid, v)| {
                        Value::map([("oid", Value::from(oid.to_string())), ("value", v)])
                    })
                    .collect();
                (host, Value::List(lines))
            })
            .collect();
        Ok(PollOutcome {
            per_device,
            completion_ms: self.rt.now().since(t0),
            stats: self.rt.fabric().stats().snapshot().since(&before),
            station_ops: manager.station_ops,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::health_oids;
    use naplet_net::TrafficClass;

    fn world(n: usize) -> ManWorld {
        let mut w = ManWorld::build(
            n,
            4,
            LatencyModel::Constant(2),
            Bandwidth::fast_ethernet(),
            11,
        );
        w.tick_devices(10_000);
        w
    }

    #[test]
    fn agent_round_covers_every_device() {
        let mut w = world(3);
        let oids = health_oids(6, 4);
        let out = w.agent_poll(&oids, false, None).unwrap();
        assert_eq!(out.per_device.len(), 3);
        for host in &w.devices {
            let lines = out.per_device.get(host).unwrap();
            assert_eq!(lines.as_list().unwrap().len(), 6, "host {host}");
        }
        assert!(out.completion_ms > 0);
        assert!(out.stats.messages(TrafficClass::Migration) >= 3);
    }

    #[test]
    fn broadcast_round_covers_every_device() {
        let mut w = world(4);
        let oids = health_oids(4, 4);
        let out = w.agent_poll(&oids, true, None).unwrap();
        assert_eq!(out.per_device.len(), 4);
        // one report per clone + the launch
        assert_eq!(out.station_ops, 5);
    }

    #[test]
    fn centralized_round_matches_agent_data_shape() {
        let mut w = world(2);
        let oids = health_oids(5, 4);
        let out = w.centralized_poll(&oids, true).unwrap();
        assert_eq!(out.per_device.len(), 2);
        for host in &w.devices {
            assert_eq!(
                out.per_device.get(host).unwrap().as_list().unwrap().len(),
                5
            );
        }
        // micro-management: one PDU per variable per device
        assert_eq!(out.station_ops, 10);
        assert_eq!(out.stats.messages(TrafficClass::Snmp), 20); // req+reply
    }

    #[test]
    fn vm_agent_round_works() {
        let mut w = world(2);
        let oids = health_oids(3, 4);
        let out = w.vm_agent_poll(&oids).unwrap();
        assert_eq!(out.per_device.len(), 2);
        for host in &w.devices {
            assert_eq!(
                out.per_device.get(host).unwrap().as_list().unwrap().len(),
                3,
                "host {host}"
            );
        }
    }

    #[test]
    fn threshold_filtering_shrinks_reports() {
        let mut w = world(2);
        // absurdly high threshold: every numeric line filtered on site
        let oids = crate::workload::diagnosis_oids(4);
        let full = w.agent_poll(&oids, false, None).unwrap();
        let filtered = w.agent_poll(&oids, false, Some(i64::MAX)).unwrap();
        let count = |o: &PollOutcome| -> usize {
            o.per_device
                .values()
                .map(|v| v.as_list().map(|l| l.len()).unwrap_or(0))
                .sum()
        };
        assert!(count(&filtered) < count(&full));
        assert_eq!(count(&filtered), 0);
    }

    #[test]
    fn cluster_status_polls_every_device_deterministically() {
        let mut w = world(3);
        // leave some management traffic behind so the reports are
        // non-trivial (journal entries, locator activity)
        let oids = health_oids(3, 4);
        w.agent_poll(&oids, false, None).unwrap();
        let reports = w.cluster_status().unwrap();
        let hosts: Vec<&str> = reports.iter().map(|r| r.host.as_str()).collect();
        assert_eq!(hosts, ["d0", "d1", "d2"]);

        // identical world, identical history → byte-identical reports
        let mut w2 = world(3);
        w2.agent_poll(&oids, false, None).unwrap();
        let again = w2.cluster_status().unwrap();
        let a = naplet_core::codec::to_bytes(&reports).unwrap();
        let b = naplet_core::codec::to_bytes(&again).unwrap();
        assert_eq!(a, b, "status protocol must aggregate deterministically");
    }

    #[test]
    fn values_agree_between_paradigms() {
        let mut w = world(1);
        // query a stable scalar through both paths
        let oid: Oid = "1.3.6.1.2.1.1.5".parse().unwrap();
        let agent = w
            .agent_poll(std::slice::from_ref(&oid), false, None)
            .unwrap();
        let central = w.centralized_poll(&[oid], false).unwrap();
        let a = agent.per_device.get("d0").unwrap().as_list().unwrap()[0].get("value");
        let c = central.per_device.get("d0").unwrap().as_list().unwrap()[0].get("value");
        assert_eq!(a, c);
        assert_eq!(a, Value::from("d0"));
    }
}
