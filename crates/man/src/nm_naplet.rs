//! The network-management naplet (paper §6.2).
//!
//! `NMNaplet` carries a `;`-separated MIB parameter list, queries each
//! visited device through the `serviceImpl.NetManagement` channel and
//! accumulates per-device status in a protected state entry
//! `DeviceStatus`, reporting home at journey end — the paper's code,
//! behaviour-for-behaviour. Additional variants:
//!
//! * **threshold filtering** (`threshold` state entry): the agent
//!   keeps only bindings whose integer value exceeds the threshold —
//!   on-site analysis that ships anomalies, not raw data (the
//!   "reducing the network load" argument of §1);
//! * a **VM bytecode** NM agent ([`nm_vm_program`]) demonstrating the
//!   same application as truly mobile code.

use naplet_core::behavior::NapletBehavior;
use naplet_core::clock::Millis;
use naplet_core::codebase::CodebaseRegistry;
use naplet_core::context::NapletContext;
use naplet_core::credential::SigningKey;
use naplet_core::error::Result;
use naplet_core::itinerary::{ActionSpec, Itinerary, Pattern};
use naplet_core::naplet::{AgentKind, Naplet};
use naplet_core::value::Value;

use crate::service::NET_MANAGEMENT;

/// Codebase URL the NM behaviour is registered under.
pub const NM_CODEBASE: &str = "naplet://code/netmgmt.jar";
/// Declared size of the NM "JAR" (drives lazy code-loading costs).
pub const NM_CODE_SIZE: u64 = 16 * 1024;

/// The network-management behaviour.
pub struct NmBehavior;

impl NapletBehavior for NmBehavior {
    fn on_start(&mut self, ctx: &mut dyn NapletContext) -> Result<()> {
        let host = ctx.host_name().to_string();
        let params = ctx.state().get("parameters");
        let params = params.as_str().unwrap_or("").to_string();

        // NapletWriter → ServiceReader: pass parameters; then read
        // result lines from the NapletReader side
        let reply = ctx.channel_exchange(NET_MANAGEMENT, Value::Str(params))?;
        let lines: Vec<Value> = match reply {
            Value::List(l) => l,
            Value::Nil => Vec::new(),
            single => vec![single],
        };

        // optional on-site filtering: keep anomalies only
        let threshold = ctx.state().get("threshold");
        let kept: Vec<Value> = match threshold.as_int() {
            Ok(t) => lines
                .into_iter()
                .filter(|line| line.get("value").as_int().map(|v| v > t).unwrap_or(true))
                .collect(),
            Err(_) => lines,
        };

        // status.put(serverName, resultVector)
        ctx.state().update("DeviceStatus", |v| {
            if let Value::Map(m) = v {
                m.insert(host.clone(), Value::List(kept.clone()));
            }
        })?;
        Ok(())
    }
}

/// Register the NM behaviour in a codebase registry.
pub fn register_nm_codebase(registry: &mut CodebaseRegistry) {
    registry.register(NM_CODEBASE, NM_CODE_SIZE, || NmBehavior);
}

/// Construct an `NMNaplet` (paper §6.2): name, servers to visit, MIB
/// parameters, with the protected `DeviceStatus` space and a chosen
/// itinerary shape.
pub fn nm_naplet(
    key: &SigningKey,
    user: &str,
    home: &str,
    created: Millis,
    devices: &[&str],
    parameters: &str,
    broadcast: bool,
) -> Result<Naplet> {
    // "Since NMItinerary defines a broadcast pattern, the naplet will
    // spawn a child naplet for each server. The spawned naplets will
    // report their results individually."
    let itinerary = if broadcast {
        Itinerary::new(Pattern::par_singletons(
            devices,
            Some(ActionSpec::ReportHome),
        ))?
    } else {
        Itinerary::new(Pattern::seq_of_hosts(devices, None))?
            .with_final_action(ActionSpec::ReportHome)
    };
    let mut naplet = Naplet::create(
        key,
        user,
        home,
        created,
        NM_CODEBASE,
        AgentKind::Native,
        itinerary,
        vec![("role".into(), "net-mgmt".into())],
    )?;
    naplet.state.set_public("parameters", parameters);
    // ProtectedNapletState: device status readable by the home server
    naplet.state.set_protected(
        "DeviceStatus",
        Value::map::<[(&str, Value); 0], &str>([]),
        [home],
    );
    Ok(naplet)
}

/// Enable on-site threshold filtering on an NM naplet.
pub fn with_threshold(mut naplet: Naplet, threshold: i64) -> Naplet {
    naplet.state.set_public("threshold", threshold);
    naplet
}

/// The VM-bytecode variant of the NM agent: at every host it exchanges
/// the parameter string with the NetManagement channel and appends
/// `{host, lines}` to its result list; at journey end it reports the
/// accumulated list home. Demonstrates the same application as truly
/// mobile code with strong mobility.
pub fn nm_vm_program(parameters: &str) -> naplet_vm::Program {
    let escaped = parameters.replace('\\', "\\\\").replace('"', "\\\"");
    let src = format!(
        r#"
        .program nm-vm
        .func main locals=2
            mklist 0
            store 0              ; results
        visit:
            const "{NET_MANAGEMENT}"
            const "{escaped}"
            hcall chan_exchange
            store 1              ; device reply
            hcall host_name
            ; build {{host: <name>, data: <reply>}}
            const "host"
            swap
            const "data"
            load 1
            mkmap 2
            store 1
            load 0
            load 1
            lpush
            store 0
            hcall travel_next
            dup
            jmpf done
            pop
            jmp visit
        done:
            pop
            load 0
            hcall report
            pop
            nil
            halt
        .end
        "#
    );
    naplet_vm::assemble(&src).expect("nm vm program assembles")
}

/// Build a VM-agent NM naplet.
pub fn nm_vm_naplet(
    key: &SigningKey,
    user: &str,
    home: &str,
    created: Millis,
    devices: &[&str],
    parameters: &str,
) -> Result<Naplet> {
    let itinerary = Itinerary::new(Pattern::seq_of_hosts(devices, None))?;
    let image = naplet_vm::VmImage::new(nm_vm_program(parameters))?;
    Naplet::create(
        key,
        user,
        home,
        created,
        "vm:nm",
        AgentKind::Vm(image.to_wire()?),
        itinerary,
        vec![("role".into(), "net-mgmt".into())],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use naplet_core::context::LocalContext;
    use naplet_core::id::NapletId;

    fn ctx_with_service() -> LocalContext {
        let id = NapletId::new("czxu", "noc", Millis(0)).unwrap();
        let mut ctx = LocalContext::new("d0", id);
        ctx.state
            .set_public("parameters", "1.3.6.1.2.1.1.5;1.3.6.1.2.1.1.3");
        ctx.state
            .set("DeviceStatus", Value::map::<[(&str, Value); 0], &str>([]));
        ctx.register_channel(NET_MANAGEMENT, |req| {
            let params = req.as_str()?.to_string();
            Ok(Value::List(
                params
                    .split(';')
                    .map(|p| Value::map([("oid", Value::from(p)), ("value", Value::Int(42))]))
                    .collect(),
            ))
        });
        ctx
    }

    #[test]
    fn behavior_stores_device_status() {
        let mut ctx = ctx_with_service();
        NmBehavior.on_start(&mut ctx).unwrap();
        let status = ctx.state.get("DeviceStatus");
        let lines = status.get("d0");
        assert_eq!(lines.as_list().unwrap().len(), 2);
        assert_eq!(lines.as_list().unwrap()[0].get("value"), Value::Int(42));
    }

    #[test]
    fn threshold_filters_normal_values() {
        let mut ctx = ctx_with_service();
        ctx.state.set_public("threshold", 100i64);
        NmBehavior.on_start(&mut ctx).unwrap();
        // all values are 42 <= 100 → filtered out
        let status = ctx.state.get("DeviceStatus");
        assert!(status.get("d0").as_list().unwrap().is_empty());

        let mut ctx = ctx_with_service();
        ctx.state.set_public("threshold", 10i64);
        NmBehavior.on_start(&mut ctx).unwrap();
        let status = ctx.state.get("DeviceStatus");
        assert_eq!(status.get("d0").as_list().unwrap().len(), 2);
    }

    #[test]
    fn nm_naplet_shapes() {
        let key = SigningKey::new("czxu", b"k");
        let seq = nm_naplet(&key, "czxu", "noc", Millis(1), &["d0", "d1"], "1.3", false).unwrap();
        assert_eq!(seq.itinerary().agents_required(), 1);
        assert_eq!(seq.state.get("parameters"), Value::from("1.3"));
        let par = nm_naplet(
            &key,
            "czxu",
            "noc",
            Millis(2),
            &["d0", "d1", "d2"],
            "1.3",
            true,
        )
        .unwrap();
        assert_eq!(par.itinerary().agents_required(), 3);
        // DeviceStatus is protected to the home server
        let mut s = par.state.clone();
        assert!(s.server_view("noc").get("DeviceStatus").is_ok());
        assert!(s.server_view("d0").get("DeviceStatus").is_err());
    }

    #[test]
    fn vm_program_assembles_and_naplet_builds() {
        let p = nm_vm_program("1.3.6.1.2.1.1.5;1.3.6.1.2.1.1.3");
        p.validate().unwrap();
        let key = SigningKey::new("czxu", b"k");
        let n = nm_vm_naplet(&key, "czxu", "noc", Millis(1), &["d0", "d1"], "1.3").unwrap();
        assert!(matches!(n.kind(), AgentKind::Vm(_)));
    }
}
