//! Journey critical-path analysis over merged cluster traces.
//!
//! The tracer and the cluster merger answer "what happened"; this
//! module answers "where did the time go". It partitions every
//! journey's wall-clock into a fixed set of named segments —
//!
//! - `dwell` — the agent executing inside a visit span;
//! - `wire` — frames and state transfers in flight between nodes;
//! - `queue` — waiting for a landing permit at the destination;
//! - `stall` — retransmit/backoff windows and recovery replay;
//! - `directory` — registration and location-forwarding work;
//! - `other` — residue no rule claimed (kept explicit, never hidden);
//!
//! — using a *timeline partition*: overlapping evidence (spans, send →
//! recv pairs, retransmit backoff windows) is lowered to prioritized
//! interval claims, the journey's timeline is cut at every claim
//! boundary and event instant, and each elementary slice is awarded to
//! the highest-priority claim covering it (unclaimed slices are
//! classified by the event that terminates them). By construction the
//! per-segment durations of a journey sum to its wall-clock *exactly*,
//! so blame percentages are lossless and byte-stable across runs.
//!
//! The output [`TraceAnalysis`] carries per-journey breakdowns (ranked
//! slowest first), cluster-wide per-segment p50/p95/p99 tables, a
//! deterministic fixed-field-order JSON export ([`ANALYZE_SCHEMA`]),
//! a regression differ ([`diff_analyses`]), and SLO evaluation
//! ([`SloConfig`], [`check_slo`]) for the bootstrap `[slo]` section.

use std::collections::BTreeMap;

use crate::export::{merge_flat_events, parse_json, FlatEvent, FlatSegment, Json};
use crate::trace::ArgValue;

/// Schema tag stamped on every analysis JSON document.
pub const ANALYZE_SCHEMA: &str = "naplet-analyze/v1";

/// The fixed segment taxonomy, in render and JSON order.
pub const SEGMENT_NAMES: [&str; 6] = ["dwell", "wire", "queue", "stall", "directory", "other"];

const DWELL: usize = 0;
const WIRE: usize = 1;
const QUEUE: usize = 2;
const STALL: usize = 3;
const DIRECTORY: usize = 4;
const OTHER: usize = 5;

/// One journey's wall-clock, partitioned. `segments[i]` is the total
/// milliseconds awarded to `SEGMENT_NAMES[i]`; the six entries sum to
/// `wall_ms` exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JourneyBreakdown {
    /// The journey id (the naplet id string).
    pub journey: String,
    /// Origin host of the journey (from the wire context, falling
    /// back to the host of the earliest event).
    pub origin: String,
    /// Merged-timeline instant the journey started, ms.
    pub start_ms: u64,
    /// End-to-end wall-clock of the journey, ms.
    pub wall_ms: u64,
    /// Migration hops the journey took.
    pub hops: u32,
    /// Milliseconds per segment, indexed like [`SEGMENT_NAMES`].
    pub segments: [u64; 6],
    /// Tenths of a percent of `wall_ms` attributed to a segment other
    /// than `other` (1000 = fully attributed).
    pub attributed_pct_tenths: u64,
    /// The critical-path segment: the largest share of `wall_ms`
    /// (first in taxonomy order on ties; `none` for zero-length
    /// journeys).
    pub critical: String,
}

impl JourneyBreakdown {
    /// Milliseconds awarded to the named segment (0 for unknown
    /// names).
    pub fn segment_ms(&self, name: &str) -> u64 {
        SEGMENT_NAMES
            .iter()
            .position(|n| *n == name)
            .map(|i| self.segments[i])
            .unwrap_or(0)
    }
}

/// Cluster-wide distribution of one segment across journeys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentStats {
    /// Segment name (one of [`SEGMENT_NAMES`]).
    pub name: String,
    /// Sum over journeys, ms.
    pub total_ms: u64,
    /// Median per-journey milliseconds.
    pub p50_ms: u64,
    /// 95th-percentile per-journey milliseconds (nearest rank).
    pub p95_ms: u64,
    /// 99th-percentile per-journey milliseconds (nearest rank).
    pub p99_ms: u64,
    /// Largest per-journey milliseconds.
    pub max_ms: u64,
}

/// The full analysis of one merged trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceAnalysis {
    /// Events the analysis consumed.
    pub event_count: u64,
    /// Per-journey breakdowns, slowest first (ties by journey id).
    pub journeys: Vec<JourneyBreakdown>,
    /// Per-segment distributions, in [`SEGMENT_NAMES`] order.
    pub segments: Vec<SegmentStats>,
    /// Median journey wall-clock, ms.
    pub wall_p50_ms: u64,
    /// 95th-percentile journey wall-clock, ms.
    pub wall_p95_ms: u64,
    /// 99th-percentile journey wall-clock, ms.
    pub wall_p99_ms: u64,
    /// Sum of journey wall-clocks, ms.
    pub total_wall_ms: u64,
    /// Tenths of a percent of total wall-clock spent stalled.
    pub stall_pct_tenths: u64,
    /// The worst journey's attribution, in tenths of a percent (1000
    /// when every journey is fully attributed or there are none).
    pub min_attributed_pct_tenths: u64,
}

/// Nearest-rank percentile of an ascending-sorted slice.
fn percentile(sorted: &[u64], q_num: u64, q_den: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let n = sorted.len() as u64;
    let rank = ((n * q_num).div_ceil(q_den)).max(1);
    sorted[(rank - 1) as usize]
}

fn arg_u64(event: &FlatEvent, key: &str) -> Option<u64> {
    event
        .args
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| {
            if let ArgValue::Int(n) = v {
                Some(*n)
            } else {
                None
            }
        })
}

/// A prioritized interval claim on a journey's timeline. Lower
/// `priority` wins when claims overlap.
struct Claim {
    start: u64,
    end: u64,
    cat: usize,
    priority: u8,
}

/// The fallback taxonomy for timeline slices no claim covers: the
/// slice is classified by the event that terminates it.
fn fallback_category(name: &str) -> usize {
    match name {
        "visit" => DWELL,
        "wire.send" | "wire.recv" | "wire.drop" | "transfer.sent" | "transfer.recv"
        | "handoff.commit" | "handoff.failed" | "handoff.parked" => WIRE,
        "landing.request" | "landing.decision" | "landing.permit" | "journey.done" => QUEUE,
        "handoff.retransmit" | "recovery.replay" | "recovery.done" | "lease.expired" | "crash" => {
            STALL
        }
        name if name.starts_with("alert.") => STALL,
        "register.gated" | "register.acked" | "post.forward" | "post.redeliver" => DIRECTORY,
        // journal writes are resident-side bookkeeping; consensus
        // traffic is the directory plane replicating itself
        name if name.starts_with("journal.") => DWELL,
        name if name.starts_with("repl.") => DIRECTORY,
        _ => OTHER,
    }
}

/// Lower one journey's events (merged order preserved) to interval
/// claims. See the module docs for the rules.
fn journey_claims(events: &[&FlatEvent], jstart: u64, jend: u64) -> Vec<Claim> {
    let mut claims: Vec<Claim> = Vec::new();
    let mut push = |start: u64, end: u64, cat: usize, priority: u8| {
        let start = start.max(jstart);
        let end = end.min(jend);
        if start < end {
            claims.push(Claim {
                start,
                end,
                cat,
                priority,
            });
        }
    };

    // stall: each retransmit blames the backoff window since the
    // previous attempt (or the original send/landing request) on the
    // hop that had to retransmit
    let mut last_attempt: BTreeMap<u64, u64> = BTreeMap::new();
    for event in events {
        let Some(tid) = arg_u64(event, "transfer_id") else {
            continue;
        };
        match event.name.as_str() {
            "landing.request" | "transfer.sent" => {
                last_attempt.insert(tid, event.at);
            }
            "handoff.retransmit" => {
                if let Some(prev) = last_attempt.insert(tid, event.at) {
                    push(prev, event.at, STALL, 0);
                }
            }
            _ => {}
        }
    }

    // wire: transfer.sent -> first matching transfer.recv, and
    // ctx-paired wire.send -> wire.recv (earliest unmatched send wins)
    let mut unmatched_transfers: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    let mut unmatched_frames: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    for event in events {
        match event.name.as_str() {
            "transfer.sent" => {
                if let Some(tid) = arg_u64(event, "transfer_id") {
                    unmatched_transfers.entry(tid).or_default().push(event.at);
                }
            }
            "transfer.recv" => {
                if let Some(tid) = arg_u64(event, "transfer_id") {
                    if let Some(sends) = unmatched_transfers.get_mut(&tid) {
                        if !sends.is_empty() {
                            push(sends.remove(0), event.at, WIRE, 1);
                        }
                    }
                }
            }
            "wire.send" => {
                if let Some(ctx) = &event.ctx {
                    unmatched_frames.entry(ctx.seq).or_default().push(event.at);
                }
            }
            "wire.recv" => {
                if let Some(ctx) = &event.ctx {
                    if let Some(sends) = unmatched_frames.get_mut(&ctx.seq) {
                        if !sends.is_empty() {
                            push(sends.remove(0), event.at, WIRE, 1);
                        }
                    }
                }
            }
            _ => {}
        }
    }

    // spans: landing permits are queue wait, registrations are
    // directory work, visits are dwell, and the whole handoff span is
    // a low-priority wire claim that soaks up whatever the sharper
    // rules above left uncovered
    for event in events {
        let Some(started) = event.started else {
            continue;
        };
        match event.name.as_str() {
            "landing.permit" => push(started, event.at, QUEUE, 2),
            "register.acked" => push(started, event.at, DIRECTORY, 3),
            "visit" => push(started, event.at, DWELL, 4),
            "handoff.commit" => push(started, event.at, WIRE, 5),
            _ => {}
        }
    }
    claims
}

/// Partition one journey's timeline. Returns per-segment totals that
/// sum to `jend - jstart` exactly.
fn partition_journey(events: &[&FlatEvent], jstart: u64, jend: u64) -> [u64; 6] {
    let claims = journey_claims(events, jstart, jend);
    let mut bounds: Vec<u64> = Vec::with_capacity(2 + claims.len() * 2 + events.len());
    bounds.push(jstart);
    bounds.push(jend);
    for claim in &claims {
        bounds.push(claim.start);
        bounds.push(claim.end);
    }
    for event in events {
        bounds.push(event.at.clamp(jstart, jend));
    }
    bounds.sort_unstable();
    bounds.dedup();

    // events sorted by instant for the fallback lookup; merged order
    // breaks ties deterministically because the sort is stable
    let mut by_at: Vec<&FlatEvent> = events.to_vec();
    by_at.sort_by_key(|e| e.at);

    let mut totals = [0u64; 6];
    for pair in bounds.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        let mut winner: Option<(u8, usize)> = None;
        for claim in &claims {
            if claim.start <= a && claim.end >= b {
                let key = (claim.priority, claim.cat);
                if winner.map(|w| key < w).unwrap_or(true) {
                    winner = Some(key);
                }
            }
        }
        let cat = match winner {
            Some((_, cat)) => cat,
            None => {
                // unclaimed: blame the first event at (or after) the
                // slice end — the activity this time was leading up to
                let next = by_at.partition_point(|e| e.at < b);
                by_at
                    .get(next)
                    .map(|e| fallback_category(&e.name))
                    .unwrap_or(OTHER)
            }
        };
        totals[cat] += b - a;
    }
    totals
}

/// Analyze pre-merged flat events (already on the shared timeline).
pub fn analyze_events(events: &[FlatEvent]) -> TraceAnalysis {
    // group by journey, preserving merged order
    let mut journeys: BTreeMap<String, Vec<&FlatEvent>> = BTreeMap::new();
    for event in events {
        let key = event
            .ctx
            .as_ref()
            .map(|c| c.journey.clone())
            .or_else(|| event.naplet.clone());
        if let Some(key) = key {
            journeys.entry(key).or_default().push(event);
        }
    }

    let mut breakdowns: Vec<JourneyBreakdown> = Vec::with_capacity(journeys.len());
    for (journey, evs) in &journeys {
        let jstart = evs
            .iter()
            .map(|e| e.started.unwrap_or(e.at))
            .min()
            .unwrap_or(0);
        let jend = evs.iter().map(|e| e.at).max().unwrap_or(jstart);
        let wall = jend - jstart;
        let segments = partition_journey(evs, jstart, jend);
        debug_assert_eq!(segments.iter().sum::<u64>(), wall);
        let origin = evs
            .iter()
            .find_map(|e| e.ctx.as_ref().map(|c| c.origin.clone()))
            .unwrap_or_else(|| evs[0].host.clone());
        let hops = evs
            .iter()
            .filter_map(|e| e.ctx.as_ref().map(|c| c.hop))
            .max()
            .unwrap_or_else(|| evs.iter().filter(|e| e.name == "visit").count() as u32);
        let attributed = wall - segments[OTHER];
        let attributed_pct_tenths = (attributed * 1000).checked_div(wall).unwrap_or(1000);
        let critical = if wall == 0 {
            "none".to_string()
        } else {
            let best = (0..6).max_by_key(|i| (segments[*i], 5 - i)).unwrap_or(0);
            SEGMENT_NAMES[best].to_string()
        };
        breakdowns.push(JourneyBreakdown {
            journey: journey.clone(),
            origin,
            start_ms: jstart,
            wall_ms: wall,
            hops,
            segments,
            attributed_pct_tenths,
            critical,
        });
    }
    breakdowns.sort_by(|a, b| {
        b.wall_ms
            .cmp(&a.wall_ms)
            .then_with(|| a.journey.cmp(&b.journey))
    });

    let mut walls: Vec<u64> = breakdowns.iter().map(|j| j.wall_ms).collect();
    walls.sort_unstable();
    let total_wall_ms: u64 = walls.iter().sum();

    let mut segments = Vec::with_capacity(6);
    for (i, name) in SEGMENT_NAMES.iter().enumerate() {
        let mut values: Vec<u64> = breakdowns.iter().map(|j| j.segments[i]).collect();
        values.sort_unstable();
        segments.push(SegmentStats {
            name: name.to_string(),
            total_ms: values.iter().sum(),
            p50_ms: percentile(&values, 50, 100),
            p95_ms: percentile(&values, 95, 100),
            p99_ms: percentile(&values, 99, 100),
            max_ms: values.last().copied().unwrap_or(0),
        });
    }

    let stall_total = segments[STALL].total_ms;
    TraceAnalysis {
        event_count: events.len() as u64,
        wall_p50_ms: percentile(&walls, 50, 100),
        wall_p95_ms: percentile(&walls, 95, 100),
        wall_p99_ms: percentile(&walls, 99, 100),
        total_wall_ms,
        stall_pct_tenths: (stall_total * 1000).checked_div(total_wall_ms).unwrap_or(0),
        min_attributed_pct_tenths: breakdowns
            .iter()
            .map(|j| j.attributed_pct_tenths)
            .min()
            .unwrap_or(1000),
        journeys: breakdowns,
        segments,
    }
}

/// Analyze per-node flight segments: merge them onto the shared
/// timeline with the cluster tie-break (same ordering as
/// [`crate::merge_cluster_trace`]) and partition every journey.
pub fn analyze_segments(segments: &[FlatSegment]) -> TraceAnalysis {
    analyze_events(&merge_flat_events(segments))
}

fn pct_tenths(t: u64) -> String {
    format!("{}.{}", t / 10, t % 10)
}

impl TraceAnalysis {
    /// Deterministic fixed-field-order JSON (schema
    /// [`ANALYZE_SCHEMA`]), one line, newline-terminated. Byte-stable
    /// across identically-seeded runs.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"schema\":\"");
        out.push_str(ANALYZE_SCHEMA);
        out.push_str("\",\"event_count\":");
        out.push_str(&self.event_count.to_string());
        out.push_str(",\"journey_count\":");
        out.push_str(&self.journeys.len().to_string());
        out.push_str(",\"total_wall_ms\":");
        out.push_str(&self.total_wall_ms.to_string());
        out.push_str(",\"wall_p50_ms\":");
        out.push_str(&self.wall_p50_ms.to_string());
        out.push_str(",\"wall_p95_ms\":");
        out.push_str(&self.wall_p95_ms.to_string());
        out.push_str(",\"wall_p99_ms\":");
        out.push_str(&self.wall_p99_ms.to_string());
        out.push_str(",\"stall_pct_tenths\":");
        out.push_str(&self.stall_pct_tenths.to_string());
        out.push_str(",\"min_attributed_pct_tenths\":");
        out.push_str(&self.min_attributed_pct_tenths.to_string());
        out.push_str(",\"segments\":[");
        for (i, seg) in self.segments.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":\"");
            out.push_str(&seg.name);
            out.push_str("\",\"total_ms\":");
            out.push_str(&seg.total_ms.to_string());
            out.push_str(",\"p50_ms\":");
            out.push_str(&seg.p50_ms.to_string());
            out.push_str(",\"p95_ms\":");
            out.push_str(&seg.p95_ms.to_string());
            out.push_str(",\"p99_ms\":");
            out.push_str(&seg.p99_ms.to_string());
            out.push_str(",\"max_ms\":");
            out.push_str(&seg.max_ms.to_string());
            out.push('}');
        }
        out.push_str("],\"journeys\":[");
        for (i, j) in self.journeys.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"journey\":\"");
            crate::export::escape_into(&mut out, &j.journey);
            out.push_str("\",\"origin\":\"");
            crate::export::escape_into(&mut out, &j.origin);
            out.push_str("\",\"start_ms\":");
            out.push_str(&j.start_ms.to_string());
            out.push_str(",\"wall_ms\":");
            out.push_str(&j.wall_ms.to_string());
            out.push_str(",\"hops\":");
            out.push_str(&j.hops.to_string());
            out.push_str(",\"attributed_pct_tenths\":");
            out.push_str(&j.attributed_pct_tenths.to_string());
            out.push_str(",\"critical\":\"");
            out.push_str(&j.critical);
            out.push_str("\",\"segments\":{");
            for (k, name) in SEGMENT_NAMES.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                out.push('"');
                out.push_str(name);
                out.push_str("\":");
                out.push_str(&j.segments[k].to_string());
            }
            out.push_str("}}");
        }
        out.push_str("]}\n");
        out
    }

    /// Human tables: the per-segment distribution, then the `top_k`
    /// slowest journeys with critical-path blame.
    pub fn render_text(&self, top_k: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "journeys {} · events {} · wall p50 {} ms · p95 {} ms · p99 {} ms · stalled {}% · min attribution {}%\n",
            self.journeys.len(),
            self.event_count,
            self.wall_p50_ms,
            self.wall_p95_ms,
            self.wall_p99_ms,
            pct_tenths(self.stall_pct_tenths),
            pct_tenths(self.min_attributed_pct_tenths),
        ));
        out.push_str(&format!(
            "{:<10} {:>10} {:>8} {:>8} {:>8} {:>8} {:>7}\n",
            "segment", "total_ms", "p50", "p95", "p99", "max", "share"
        ));
        for seg in &self.segments {
            let share = (seg.total_ms * 1000)
                .checked_div(self.total_wall_ms)
                .unwrap_or(0);
            out.push_str(&format!(
                "{:<10} {:>10} {:>8} {:>8} {:>8} {:>8} {:>6}%\n",
                seg.name,
                seg.total_ms,
                seg.p50_ms,
                seg.p95_ms,
                seg.p99_ms,
                seg.max_ms,
                pct_tenths(share),
            ));
        }
        if top_k > 0 && !self.journeys.is_empty() {
            out.push_str(&format!(
                "top {} slowest journeys:\n",
                top_k.min(self.journeys.len())
            ));
            for j in self.journeys.iter().take(top_k) {
                let blame = (j.segment_ms(&j.critical) * 1000)
                    .checked_div(j.wall_ms)
                    .unwrap_or(0);
                let parts: Vec<String> = SEGMENT_NAMES
                    .iter()
                    .enumerate()
                    .map(|(i, n)| format!("{n} {}", j.segments[i]))
                    .collect();
                out.push_str(&format!(
                    "  {} wall {} ms · hops {} · critical {} ({}%) · {}\n",
                    j.journey,
                    j.wall_ms,
                    j.hops,
                    j.critical,
                    pct_tenths(blame),
                    parts.join(" · "),
                ));
            }
        }
        out
    }
}

fn json_field_u64(doc: &Json, key: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(|v| v.as_num())
        .map(|n| n as u64)
        .ok_or_else(|| format!("analysis JSON missing numeric `{key}`"))
}

fn json_field_str<'a>(doc: &'a Json, key: &str) -> Result<&'a str, String> {
    doc.get(key)
        .and_then(|v| v.as_str())
        .ok_or_else(|| format!("analysis JSON missing string `{key}`"))
}

/// Parse a [`TraceAnalysis::to_json`] document back (for `--diff`).
pub fn parse_analysis(text: &str) -> Result<TraceAnalysis, String> {
    let doc = parse_json(text.trim_end())?;
    let schema = json_field_str(&doc, "schema")?;
    if schema != ANALYZE_SCHEMA {
        return Err(format!(
            "unsupported analysis schema `{schema}` (want `{ANALYZE_SCHEMA}`)"
        ));
    }
    let Some(Json::Arr(seg_docs)) = doc.get("segments") else {
        return Err("analysis JSON missing `segments` array".into());
    };
    let mut segments = Vec::with_capacity(seg_docs.len());
    for seg in seg_docs {
        segments.push(SegmentStats {
            name: json_field_str(seg, "name")?.to_string(),
            total_ms: json_field_u64(seg, "total_ms")?,
            p50_ms: json_field_u64(seg, "p50_ms")?,
            p95_ms: json_field_u64(seg, "p95_ms")?,
            p99_ms: json_field_u64(seg, "p99_ms")?,
            max_ms: json_field_u64(seg, "max_ms")?,
        });
    }
    let Some(Json::Arr(journey_docs)) = doc.get("journeys") else {
        return Err("analysis JSON missing `journeys` array".into());
    };
    let mut journeys = Vec::with_capacity(journey_docs.len());
    for j in journey_docs {
        let seg_obj = j
            .get("segments")
            .ok_or_else(|| "journey missing `segments`".to_string())?;
        let mut segs = [0u64; 6];
        for (i, name) in SEGMENT_NAMES.iter().enumerate() {
            segs[i] = json_field_u64(seg_obj, name)?;
        }
        journeys.push(JourneyBreakdown {
            journey: json_field_str(j, "journey")?.to_string(),
            origin: json_field_str(j, "origin")?.to_string(),
            start_ms: json_field_u64(j, "start_ms")?,
            wall_ms: json_field_u64(j, "wall_ms")?,
            hops: json_field_u64(j, "hops")? as u32,
            segments: segs,
            attributed_pct_tenths: json_field_u64(j, "attributed_pct_tenths")?,
            critical: json_field_str(j, "critical")?.to_string(),
        });
    }
    Ok(TraceAnalysis {
        event_count: json_field_u64(&doc, "event_count")?,
        journeys,
        segments,
        wall_p50_ms: json_field_u64(&doc, "wall_p50_ms")?,
        wall_p95_ms: json_field_u64(&doc, "wall_p95_ms")?,
        wall_p99_ms: json_field_u64(&doc, "wall_p99_ms")?,
        total_wall_ms: json_field_u64(&doc, "total_wall_ms")?,
        stall_pct_tenths: json_field_u64(&doc, "stall_pct_tenths")?,
        min_attributed_pct_tenths: json_field_u64(&doc, "min_attributed_pct_tenths")?,
    })
}

/// One compared metric in a regression report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffRow {
    /// What was compared (`wall` or a segment name).
    pub name: String,
    /// The metric (`p99` for wall, `p95` for segments).
    pub metric: String,
    /// Baseline value, ms.
    pub before_ms: u64,
    /// Candidate value, ms.
    pub after_ms: u64,
    /// True when the candidate regressed past the noise floor
    /// (`after > before + max(before / 10, 1)`).
    pub regressed: bool,
}

/// A per-segment regression report between two analyses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisDiff {
    /// Every compared metric, report order.
    pub rows: Vec<DiffRow>,
}

impl AnalysisDiff {
    /// Did any metric regress?
    pub fn has_regressions(&self) -> bool {
        self.rows.iter().any(|r| r.regressed)
    }

    /// Human regression table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<10} {:<7} {:>10} {:>10} {:>8}\n",
            "metric", "stat", "before_ms", "after_ms", "verdict"
        ));
        for row in &self.rows {
            out.push_str(&format!(
                "{:<10} {:<7} {:>10} {:>10} {:>8}\n",
                row.name,
                row.metric,
                row.before_ms,
                row.after_ms,
                if row.regressed { "REGRESS" } else { "ok" }
            ));
        }
        out
    }
}

fn regressed(before: u64, after: u64) -> bool {
    after > before + (before / 10).max(1)
}

/// Compare a candidate analysis against a baseline: journey wall p99
/// plus every segment's p95, with a 10% (min 1 ms) noise floor.
pub fn diff_analyses(before: &TraceAnalysis, after: &TraceAnalysis) -> AnalysisDiff {
    let mut rows = vec![DiffRow {
        name: "wall".into(),
        metric: "p99".into(),
        before_ms: before.wall_p99_ms,
        after_ms: after.wall_p99_ms,
        regressed: regressed(before.wall_p99_ms, after.wall_p99_ms),
    }];
    for name in SEGMENT_NAMES {
        let b = before
            .segments
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.p95_ms)
            .unwrap_or(0);
        let a = after
            .segments
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.p95_ms)
            .unwrap_or(0);
        rows.push(DiffRow {
            name: name.to_string(),
            metric: "p95".into(),
            before_ms: b,
            after_ms: a,
            regressed: regressed(b, a),
        });
    }
    AnalysisDiff { rows }
}

/// Service-level objectives from the bootstrap `[slo]` section. All
/// budgets are optional; an absent key is simply not checked.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SloConfig {
    /// Journey wall-clock p99 budget, ms.
    pub journey_p99_ms: Option<u64>,
    /// Per-journey dwell p99 budget, ms.
    pub dwell_p99_ms: Option<u64>,
    /// Per-journey wire p99 budget, ms.
    pub wire_p99_ms: Option<u64>,
    /// Per-journey queue-wait p99 budget, ms.
    pub queue_p99_ms: Option<u64>,
    /// Per-journey stall p99 budget, ms.
    pub stall_p99_ms: Option<u64>,
    /// Per-journey directory p99 budget, ms.
    pub directory_p99_ms: Option<u64>,
    /// Ceiling on the cluster-wide stalled share of wall-clock,
    /// integer percent.
    pub max_stall_pct: Option<u64>,
}

/// Evaluate an analysis against its SLOs. Each breach is one
/// human-readable line; empty means every objective held.
pub fn check_slo(analysis: &TraceAnalysis, slo: &SloConfig) -> Vec<String> {
    let mut breaches = Vec::new();
    if let Some(budget) = slo.journey_p99_ms {
        if analysis.wall_p99_ms > budget {
            breaches.push(format!(
                "journey wall p99 {} ms exceeds budget {} ms",
                analysis.wall_p99_ms, budget
            ));
        }
    }
    let budgets = [
        ("dwell", slo.dwell_p99_ms),
        ("wire", slo.wire_p99_ms),
        ("queue", slo.queue_p99_ms),
        ("stall", slo.stall_p99_ms),
        ("directory", slo.directory_p99_ms),
    ];
    for (name, budget) in budgets {
        let Some(budget) = budget else { continue };
        let p99 = analysis
            .segments
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.p99_ms)
            .unwrap_or(0);
        if p99 > budget {
            breaches.push(format!(
                "segment {name} p99 {p99} ms exceeds budget {budget} ms"
            ));
        }
    }
    if let Some(ceiling) = slo.max_stall_pct {
        if analysis.stall_pct_tenths > ceiling * 10 {
            breaches.push(format!(
                "stalled share {}% exceeds ceiling {}%",
                pct_tenths(analysis.stall_pct_tenths),
                ceiling
            ));
        }
    }
    breaches
}

#[cfg(test)]
mod tests {
    use super::*;
    use naplet_core::tracectx::TraceCtx;

    fn ev(at: u64, host: &str, naplet: Option<&str>, name: &str) -> FlatEvent {
        FlatEvent {
            at,
            host: host.into(),
            naplet: naplet.map(String::from),
            name: name.into(),
            started: None,
            args: Vec::new(),
            ctx: None,
        }
    }

    fn span(mut e: FlatEvent, started: u64) -> FlatEvent {
        e.started = Some(started);
        e
    }

    fn with_tid(mut e: FlatEvent, tid: u64) -> FlatEvent {
        e.args.push(("transfer_id".into(), ArgValue::Int(tid)));
        e
    }

    fn with_ctx(mut e: FlatEvent, journey: &str, hop: u32, seq: u64) -> FlatEvent {
        e.ctx = Some(TraceCtx {
            journey: journey.into(),
            origin: "home".into(),
            hop,
            seq,
        });
        e
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50, 100), 50);
        assert_eq!(percentile(&v, 95, 100), 95);
        assert_eq!(percentile(&v, 99, 100), 99);
        assert_eq!(percentile(&[7], 99, 100), 7);
        assert_eq!(percentile(&[], 50, 100), 0);
    }

    #[test]
    fn partition_is_lossless_and_prioritized() {
        let j = "czxu@home:1";
        let events = vec![
            span(ev(10, "home", Some(j), "visit"), 0),
            with_tid(ev(10, "home", Some(j), "transfer.sent"), 1),
            with_tid(ev(40, "s1", Some(j), "transfer.recv"), 1),
            span(with_tid(ev(45, "s1", Some(j), "landing.permit"), 1), 40),
            span(ev(100, "s1", Some(j), "visit"), 45),
            ev(100, "home", Some(j), "journey.done"),
        ];
        let analysis = analyze_events(&events);
        assert_eq!(analysis.journeys.len(), 1);
        let journey = &analysis.journeys[0];
        assert_eq!(journey.wall_ms, 100);
        assert_eq!(journey.segments.iter().sum::<u64>(), 100);
        // 0-10 dwell, 10-40 wire, 40-45 queue, 45-100 dwell
        assert_eq!(journey.segment_ms("dwell"), 65);
        assert_eq!(journey.segment_ms("wire"), 30);
        assert_eq!(journey.segment_ms("queue"), 5);
        assert_eq!(journey.segment_ms("other"), 0);
        assert_eq!(journey.critical, "dwell");
        assert_eq!(journey.attributed_pct_tenths, 1000);
    }

    #[test]
    fn retransmit_backoff_is_blamed_on_stall() {
        let j = "czxu@home:1";
        let events = vec![
            with_tid(ev(0, "home", Some(j), "transfer.sent"), 1),
            with_tid(ev(200, "home", Some(j), "handoff.retransmit"), 1),
            with_tid(ev(210, "s1", Some(j), "transfer.recv"), 1),
            span(with_tid(ev(210, "home", Some(j), "handoff.commit"), 1), 0),
        ];
        let analysis = analyze_events(&events);
        let journey = &analysis.journeys[0];
        // the 0-200 backoff window outranks the wire pair and the
        // handoff span; only the 200-210 tail is wire
        assert_eq!(journey.segment_ms("stall"), 200);
        assert_eq!(journey.segment_ms("wire"), 10);
        assert_eq!(journey.critical, "stall");
        assert!(analysis.stall_pct_tenths > 900);
    }

    #[test]
    fn unclaimed_slices_fall_back_to_the_terminating_event() {
        let j = "czxu@home:1";
        let events = vec![
            ev(0, "home", Some(j), "landing.request"),
            ev(30, "home", Some(j), "landing.decision"),
            span(ev(80, "s1", Some(j), "register.acked"), 50),
        ];
        let analysis = analyze_events(&events);
        let journey = &analysis.journeys[0];
        // 0-30 queue (decision terminates), 30-50 directory (the
        // register span's opening is next at 50 — nothing at 50
        // exactly, the span event sits at 80, so the slice blames the
        // register event), 50-80 directory (span claim)
        assert_eq!(journey.segment_ms("queue"), 30);
        assert_eq!(journey.segment_ms("directory"), 50);
        assert_eq!(journey.segments.iter().sum::<u64>(), 80);
    }

    #[test]
    fn json_round_trips_and_is_stable() {
        let j = "czxu@home:1";
        let events = vec![
            span(ev(10, "home", Some(j), "visit"), 0),
            with_ctx(ev(10, "home", None, "wire.send"), j, 1, 3),
            with_ctx(ev(25, "s1", None, "wire.recv"), j, 1, 3),
            span(ev(60, "s1", Some(j), "visit"), 25),
        ];
        let analysis = analyze_events(&events);
        let json = analysis.to_json();
        assert_eq!(json, analyze_events(&events).to_json());
        let back = parse_analysis(&json).expect("round trip");
        assert_eq!(back, analysis);
    }

    #[test]
    fn diff_flags_regressions_past_the_noise_floor() {
        let j = "czxu@home:1";
        let fast = vec![
            span(ev(50, "home", Some(j), "visit"), 0),
            with_tid(ev(50, "home", Some(j), "transfer.sent"), 1),
            with_tid(ev(60, "s1", Some(j), "transfer.recv"), 1),
        ];
        let slow = vec![
            span(ev(50, "home", Some(j), "visit"), 0),
            with_tid(ev(50, "home", Some(j), "transfer.sent"), 1),
            with_tid(ev(200, "s1", Some(j), "transfer.recv"), 1),
        ];
        let a = analyze_events(&fast);
        let b = analyze_events(&slow);
        assert!(!diff_analyses(&a, &a).has_regressions());
        let diff = diff_analyses(&a, &b);
        assert!(diff.has_regressions());
        assert!(diff
            .rows
            .iter()
            .any(|r| r.name == "wire" && r.regressed && r.after_ms == 150));
        assert!(diff.render_text().contains("REGRESS"));
    }

    #[test]
    fn slo_breaches_name_the_budget() {
        let j = "czxu@home:1";
        let events = vec![
            with_tid(ev(0, "home", Some(j), "transfer.sent"), 1),
            with_tid(ev(400, "home", Some(j), "handoff.retransmit"), 1),
            with_tid(ev(410, "s1", Some(j), "transfer.recv"), 1),
        ];
        let analysis = analyze_events(&events);
        let clean = check_slo(&analysis, &SloConfig::default());
        assert!(clean.is_empty(), "no budgets, no breaches: {clean:?}");
        let slo = SloConfig {
            journey_p99_ms: Some(100),
            stall_p99_ms: Some(50),
            max_stall_pct: Some(10),
            ..SloConfig::default()
        };
        let breaches = check_slo(&analysis, &slo);
        assert_eq!(breaches.len(), 3, "{breaches:?}");
        assert!(breaches[0].contains("journey wall p99"));
        assert!(breaches[1].contains("segment stall"));
        assert!(breaches[2].contains("stalled share"));
    }

    #[test]
    fn render_text_ranks_slowest_journeys() {
        let a = "a@home:1";
        let b = "b@home:1";
        let events = vec![
            span(ev(10, "home", Some(a), "visit"), 0),
            span(ev(500, "home", Some(b), "visit"), 0),
        ];
        let analysis = analyze_events(&events);
        assert_eq!(analysis.journeys[0].journey, b);
        let text = analysis.render_text(1);
        assert!(text.contains("top 1 slowest"), "{text}");
        assert!(text.contains(b), "{text}");
    }
}
