//! Deterministic exporters for the recorded trace.
//!
//! Three formats:
//! - **Chrome trace-event JSON** (`chrome_trace_json`): loadable in
//!   `chrome://tracing` and Perfetto. Hosts become processes, naplets
//!   become threads; span-like kinds render as complete (`"X"`)
//!   events with durations, everything else as thread-scoped
//!   instants.
//! - **Serde snapshot** (`ObsSnapshot`): events + metrics through the
//!   workspace codec, for programmatic consumers.
//! - **Text** (`render_event_log`): a one-line-per-event table for
//!   terminals and EXPERIMENTS.md.
//!
//! Determinism: the JSON is hand-assembled with a fixed field order,
//! pids/tids come from sorted name tables, and no wall-clock or
//! random value is ever consulted — identical event vectors yield
//! byte-identical strings. (Hand-assembled because the workspace
//! vendors no JSON serializer; the flip side is full control over
//! byte layout.)

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

use naplet_core::tracectx::TraceCtx;

use crate::metrics::MetricsSnapshot;
use crate::recorder::TraceSegment;
use crate::trace::{ArgValue, TraceEvent};

/// Everything one run observed, as one serde-codable value.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ObsSnapshot {
    /// Recorded events in processing order.
    pub events: Vec<TraceEvent>,
    /// Frozen metrics.
    pub metrics: MetricsSnapshot,
}

pub(crate) fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn push_args<'a>(out: &mut String, args: impl Iterator<Item = (&'a str, &'a ArgValue)>) {
    out.push('{');
    for (i, (key, value)) in args.enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{key}\":");
        match value {
            ArgValue::Str(s) => {
                out.push('"');
                escape_into(out, s);
                out.push('"');
            }
            ArgValue::Int(n) => {
                let _ = write!(out, "{n}");
            }
            ArgValue::Bool(b) => {
                let _ = write!(out, "{b}");
            }
        }
    }
    out.push('}');
}

/// One trace event lowered to its export form: the kind replaced by
/// its stable name and pre-rendered arguments. This is the shape
/// flight-recorder dumps serialize and the cluster merger consumes —
/// a dump written by one build can be merged by another even if the
/// [`crate::trace::TraceKind`] taxonomy grew in between.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatEvent {
    /// Event instant, ms (for spans: the closing instant).
    pub at: u64,
    /// Host the event happened at.
    pub host: String,
    /// The journey the event concerns, if any.
    pub naplet: Option<String>,
    /// Stable kind name (`wire.send`, `handoff.commit`, …).
    pub name: String,
    /// For span-like events, the opening instant, ms.
    pub started: Option<u64>,
    /// Pre-rendered arguments in kind order.
    pub args: Vec<(String, ArgValue)>,
    /// Wire-propagated causal context, if the event carried one.
    pub ctx: Option<TraceCtx>,
}

impl FlatEvent {
    /// Lower one typed event.
    pub fn from_event(event: &TraceEvent) -> FlatEvent {
        FlatEvent {
            at: event.at.0,
            host: event.host.clone(),
            naplet: event.naplet.clone(),
            name: event.kind.name().to_string(),
            started: event.kind.span_start().map(|m| m.0),
            args: event
                .kind
                .args()
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            ctx: event.ctx.clone(),
        }
    }

    /// The string value of argument `key`, if present.
    pub fn arg_str(&self, key: &str) -> Option<&str> {
        self.args.iter().find(|(k, _)| k == key).and_then(|(_, v)| {
            if let ArgValue::Str(s) = v {
                Some(s.as_str())
            } else {
                None
            }
        })
    }
}

/// Lower a typed event slice for export or merging.
pub fn flatten_events(events: &[TraceEvent]) -> Vec<FlatEvent> {
    events.iter().map(FlatEvent::from_event).collect()
}

/// Render `events` as Chrome trace-event JSON.
///
/// `pid` is the sorted index of the host, `tid` the sorted index of
/// the naplet id within that host's events (tid 0 is the host's own
/// lane for events with no naplet). Timestamps are the simulation's
/// milliseconds expressed in microseconds, as the format requires.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    chrome_trace_json_flat(&flatten_events(events))
}

/// [`chrome_trace_json`] over already-lowered events (the merged
/// cluster trace renders through this). Events carrying a
/// [`TraceCtx`] gain `journey`/`origin`/`hop`/`seq` arguments after
/// the kind's own, so cross-node handoffs are visibly linked.
pub fn chrome_trace_json_flat(events: &[FlatEvent]) -> String {
    let hosts: BTreeSet<&str> = events.iter().map(|e| e.host.as_str()).collect();
    let host_pid = |host: &str| hosts.iter().position(|h| *h == host).unwrap_or(0) + 1;
    let naplets: BTreeSet<&str> = events.iter().filter_map(|e| e.naplet.as_deref()).collect();
    let naplet_tid = |naplet: Option<&str>| match naplet {
        Some(id) => naplets.iter().position(|n| *n == id).unwrap_or(0) + 1,
        None => 0,
    };

    let mut out = String::with_capacity(events.len() * 160 + 1024);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut emit = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push(',');
        }
    };

    for host in &hosts {
        emit(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\"args\":{{\"name\":\"",
            host_pid(host)
        );
        escape_into(&mut out, host);
        out.push_str("\"}}");
    }
    for naplet in &naplets {
        for host in &hosts {
            emit(&mut out);
            let _ = write!(
                out,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{},\"tid\":{},\"args\":{{\"name\":\"",
                host_pid(host),
                naplet_tid(Some(naplet))
            );
            escape_into(&mut out, naplet);
            out.push_str("\"}}");
        }
    }

    for event in events {
        emit(&mut out);
        let pid = host_pid(&event.host);
        let tid = naplet_tid(event.naplet.as_deref());
        let name = &event.name;
        match event.started {
            Some(started) => {
                let ts = started * 1_000;
                let dur = event.at.saturating_sub(started) * 1_000;
                let _ = write!(
                    out,
                    "{{\"name\":\"{name}\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{dur},\"pid\":{pid},\"tid\":{tid},\"args\":"
                );
            }
            None => {
                let ts = event.at * 1_000;
                let _ = write!(
                    out,
                    "{{\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":{pid},\"tid\":{tid},\"args\":"
                );
            }
        }
        // ctx keys are prefixed: several kinds already have their own
        // `seq`/`origin` arguments
        let ctx_args: Vec<(&'static str, ArgValue)> = match &event.ctx {
            Some(ctx) => vec![
                ("ctx_journey", ArgValue::Str(ctx.journey.clone())),
                ("ctx_origin", ArgValue::Str(ctx.origin.clone())),
                ("ctx_hop", ArgValue::Int(u64::from(ctx.hop))),
                ("ctx_seq", ArgValue::Int(ctx.seq)),
            ],
            None => Vec::new(),
        };
        push_args(
            &mut out,
            event
                .args
                .iter()
                .map(|(k, v)| (k.as_str(), v))
                .chain(ctx_args.iter().map(|(k, v)| (*k, v))),
        );
        out.push('}');
    }

    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// One-line-per-event text rendering of the trace.
pub fn render_event_log(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for event in events {
        let _ = write!(out, "{:>8}ms  {:<8}", event.at.0, event.host);
        let _ = write!(out, "  {:<18}", event.kind.name());
        if let Some(naplet) = &event.naplet {
            let _ = write!(out, "  {naplet}");
        }
        for (key, value) in event.kind.args() {
            match value {
                ArgValue::Str(s) => {
                    if !s.is_empty() {
                        let _ = write!(out, "  {key}={s}");
                    }
                }
                ArgValue::Int(n) => {
                    let _ = write!(out, "  {key}={n}");
                }
                ArgValue::Bool(b) => {
                    let _ = write!(out, "  {key}={b}");
                }
            }
        }
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------
// Chrome-format validation: a minimal JSON parser (the workspace
// vendors none) plus the structural checks `chrome://tracing` cares
// about. Used by tests and the CI determinism step.
// ---------------------------------------------------------------------

/// A parsed JSON value, just enough to validate exports.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as f64).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, preserving textual key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Number payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u at byte {}", self.pos))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(&b) => {
                    // Multi-byte UTF-8 sequences pass through intact.
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| format!("bad utf-8 at byte {}", self.pos))?;
                    out.push_str(chunk);
                    self.pos += len;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']' got {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            members.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                other => return Err(format!("expected ',' or '}}' got {other:?}")),
            }
        }
    }
}

/// Parse a JSON document (rejecting trailing garbage).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(value)
}

/// Check that `text` is valid Chrome trace-event JSON: a JSON object
/// whose `traceEvents` member is an array of objects each carrying
/// `name`/`ph`/`pid`/`tid`, with `ts` (and `dur` for `"X"`) on
/// non-metadata events. Returns the event count.
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    let doc = parse_json(text)?;
    let events = match doc.get("traceEvents") {
        Some(Json::Arr(events)) => events,
        _ => return Err("missing traceEvents array".into()),
    };
    for (i, event) in events.iter().enumerate() {
        let ph = event
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        for key in ["name", "pid", "tid"] {
            if event.get(key).is_none() {
                return Err(format!("event {i}: missing {key}"));
            }
        }
        match ph {
            "M" => {}
            "X" => {
                if event.get("ts").and_then(Json::as_num).is_none()
                    || event.get("dur").and_then(Json::as_num).is_none()
                {
                    return Err(format!("event {i}: X without ts/dur"));
                }
            }
            _ => {
                if event.get("ts").and_then(Json::as_num).is_none() {
                    return Err(format!("event {i}: missing ts"));
                }
            }
        }
    }
    Ok(events.len())
}

// ---------------------------------------------------------------------
// Flight-recorder dumps and the merged cluster trace.
// ---------------------------------------------------------------------

/// A flight-recorder segment in export form: the same accounting as
/// [`TraceSegment`], with events lowered to [`FlatEvent`]s. This is
/// what a dump file parses back into and what the cluster merger
/// consumes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FlatSegment {
    /// Node the segment came from.
    pub host: String,
    /// Absolute sequence of `events[0]`.
    pub start_seq: u64,
    /// Absolute sequence one past the last event.
    pub next_seq: u64,
    /// Total events ever recorded at the node.
    pub total: u64,
    /// Events evicted from the node's ring.
    pub dropped: u64,
    /// UNIX ms at the node's event-clock zero (0 for virtual time).
    pub epoch_unix_ms: u64,
    /// The node's metrics totals at dump time, when the dump embedded
    /// them (daemon dumps do; paged live segments don't).
    pub metrics: Option<MetricsSnapshot>,
    /// The events, oldest first.
    pub events: Vec<FlatEvent>,
}

impl FlatSegment {
    /// Lower a typed segment.
    pub fn from_segment(segment: &TraceSegment) -> FlatSegment {
        FlatSegment {
            host: segment.host.clone(),
            start_seq: segment.start_seq,
            next_seq: segment.next_seq,
            total: segment.total,
            dropped: segment.dropped,
            epoch_unix_ms: segment.epoch_unix_ms,
            metrics: None,
            events: flatten_events(&segment.events),
        }
    }
}

fn push_flat_event(out: &mut String, event: &FlatEvent) {
    let _ = write!(out, "{{\"at\":{},\"host\":\"", event.at);
    escape_into(out, &event.host);
    out.push('"');
    if let Some(naplet) = &event.naplet {
        out.push_str(",\"naplet\":\"");
        escape_into(out, naplet);
        out.push('"');
    }
    out.push_str(",\"name\":\"");
    escape_into(out, &event.name);
    out.push('"');
    if let Some(started) = event.started {
        let _ = write!(out, ",\"started\":{started}");
    }
    if let Some(ctx) = &event.ctx {
        out.push_str(",\"ctx\":{\"journey\":\"");
        escape_into(out, &ctx.journey);
        out.push_str("\",\"origin\":\"");
        escape_into(out, &ctx.origin);
        let _ = write!(out, "\",\"hop\":{},\"seq\":{}}}", ctx.hop, ctx.seq);
    }
    out.push_str(",\"args\":");
    push_args(out, event.args.iter().map(|(k, v)| (k.as_str(), v)));
    out.push('}');
}

/// Render a flight-recorder segment as a self-describing JSON dump —
/// human-readable, and parseable back by [`parse_flight_dump`]. Field
/// order is fixed, so identical segments dump byte-identically.
pub fn flight_dump_json(segment: &TraceSegment) -> String {
    flight_dump_json_with(segment, None)
}

/// [`flight_dump_json`] with the node's [`MetricsSnapshot`] at dump
/// time embedded, keeping trace and metrics evidence in one artifact.
pub fn flight_dump_json_with(segment: &TraceSegment, metrics: Option<&MetricsSnapshot>) -> String {
    let flat = FlatSegment::from_segment(segment);
    let mut out = String::with_capacity(flat.events.len() * 160 + 256);
    out.push_str("{\"host\":\"");
    escape_into(&mut out, &flat.host);
    let _ = write!(
        out,
        "\",\"start_seq\":{},\"next_seq\":{},\"total\":{},\"dropped\":{},\"epoch_unix_ms\":{}",
        flat.start_seq, flat.next_seq, flat.total, flat.dropped, flat.epoch_unix_ms
    );
    if let Some(metrics) = metrics {
        out.push_str(",\"metrics\":");
        push_metrics_snapshot(&mut out, metrics);
    }
    out.push_str(",\"events\":[");
    for (i, event) in flat.events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_flat_event(&mut out, event);
    }
    out.push_str("]}\n");
    out
}

fn push_u64_map(out: &mut String, map: &BTreeMap<String, u64>) {
    out.push('{');
    for (i, (key, value)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_into(out, key);
        let _ = write!(out, "\":{value}");
    }
    out.push('}');
}

fn push_u64_array(out: &mut String, values: &[u64]) {
    out.push('[');
    for (i, value) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{value}");
    }
    out.push(']');
}

fn push_metrics_snapshot(out: &mut String, snap: &MetricsSnapshot) {
    out.push_str("{\"counters\":");
    push_u64_map(out, &snap.counters);
    out.push_str(",\"gauges\":");
    push_u64_map(out, &snap.gauges);
    out.push_str(",\"histograms\":{");
    for (i, (name, h)) in snap.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_into(out, name);
        out.push_str("\":{\"bounds\":");
        push_u64_array(out, &h.bounds);
        out.push_str(",\"counts\":");
        push_u64_array(out, &h.counts);
        let _ = write!(
            out,
            ",\"total\":{},\"sum\":{},\"min\":{},\"max\":{}}}",
            h.total, h.sum, h.min, h.max
        );
    }
    out.push_str("}}");
}

fn parse_u64_map(doc: &Json, what: &str) -> Result<BTreeMap<String, u64>, String> {
    let Json::Obj(members) = doc else {
        return Err(format!("{what} is not an object"));
    };
    let mut map = BTreeMap::new();
    for (key, value) in members {
        let n = value
            .as_num()
            .ok_or_else(|| format!("{what} `{key}` is not a number"))?;
        map.insert(key.clone(), n as u64);
    }
    Ok(map)
}

fn parse_u64_array(doc: &Json, what: &str) -> Result<Vec<u64>, String> {
    let Json::Arr(items) = doc else {
        return Err(format!("{what} is not an array"));
    };
    items
        .iter()
        .map(|v| {
            v.as_num()
                .map(|n| n as u64)
                .ok_or_else(|| format!("{what} holds a non-number"))
        })
        .collect()
}

/// Parse an embedded [`MetricsSnapshot`] JSON object back.
fn parse_metrics_snapshot(doc: &Json) -> Result<MetricsSnapshot, String> {
    let counters = parse_u64_map(doc.get("counters").unwrap_or(&Json::Null), "counters")?;
    let gauges = parse_u64_map(doc.get("gauges").unwrap_or(&Json::Null), "gauges")?;
    let mut histograms = BTreeMap::new();
    match doc.get("histograms") {
        Some(Json::Obj(members)) => {
            for (name, h) in members {
                histograms.insert(
                    name.clone(),
                    crate::metrics::HistogramSnapshot {
                        bounds: parse_u64_array(
                            h.get("bounds").unwrap_or(&Json::Null),
                            "histogram bounds",
                        )?,
                        counts: parse_u64_array(
                            h.get("counts").unwrap_or(&Json::Null),
                            "histogram counts",
                        )?,
                        total: json_u64(h, "total")?,
                        sum: json_u64(h, "sum")?,
                        min: json_u64(h, "min")?,
                        max: json_u64(h, "max")?,
                    },
                );
            }
        }
        _ => return Err("histograms is not an object".into()),
    }
    Ok(MetricsSnapshot {
        counters,
        gauges,
        histograms,
    })
}

fn json_u64(doc: &Json, key: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(Json::as_num)
        .map(|n| n as u64)
        .ok_or_else(|| format!("missing numeric `{key}`"))
}

fn parse_flat_event(doc: &Json, index: usize) -> Result<FlatEvent, String> {
    let err = |what: &str| format!("event {index}: {what}");
    let host = doc
        .get("host")
        .and_then(Json::as_str)
        .ok_or_else(|| err("missing host"))?
        .to_string();
    let name = doc
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| err("missing name"))?
        .to_string();
    let at = json_u64(doc, "at").map_err(|e| err(&e))?;
    let naplet = doc
        .get("naplet")
        .and_then(Json::as_str)
        .map(|s| s.to_string());
    let started = doc.get("started").and_then(Json::as_num).map(|n| n as u64);
    let ctx = match doc.get("ctx") {
        Some(ctx) => Some(TraceCtx {
            journey: ctx
                .get("journey")
                .and_then(Json::as_str)
                .ok_or_else(|| err("ctx missing journey"))?
                .to_string(),
            origin: ctx
                .get("origin")
                .and_then(Json::as_str)
                .ok_or_else(|| err("ctx missing origin"))?
                .to_string(),
            hop: json_u64(ctx, "hop").map_err(|e| err(&e))? as u32,
            seq: json_u64(ctx, "seq").map_err(|e| err(&e))?,
        }),
        None => None,
    };
    let args = match doc.get("args") {
        Some(Json::Obj(members)) => members
            .iter()
            .map(|(k, v)| {
                let value = match v {
                    Json::Str(s) => ArgValue::Str(s.clone()),
                    Json::Num(n) => ArgValue::Int(*n as u64),
                    Json::Bool(b) => ArgValue::Bool(*b),
                    other => return Err(err(&format!("bad arg `{k}`: {other:?}"))),
                };
                Ok((k.clone(), value))
            })
            .collect::<Result<Vec<_>, String>>()?,
        _ => return Err(err("missing args object")),
    };
    Ok(FlatEvent {
        at,
        host,
        naplet,
        name,
        started,
        args,
        ctx,
    })
}

/// Parse a [`flight_dump_json`] document back into a [`FlatSegment`].
pub fn parse_flight_dump(text: &str) -> Result<FlatSegment, String> {
    let doc = parse_json(text.trim_end())?;
    let host = doc
        .get("host")
        .and_then(Json::as_str)
        .ok_or("missing host")?
        .to_string();
    let events = match doc.get("events") {
        Some(Json::Arr(events)) => events
            .iter()
            .enumerate()
            .map(|(i, e)| parse_flat_event(e, i))
            .collect::<Result<Vec<_>, String>>()?,
        _ => return Err("missing events array".into()),
    };
    let metrics = match doc.get("metrics") {
        Some(metrics) => Some(parse_metrics_snapshot(metrics)?),
        None => None,
    };
    Ok(FlatSegment {
        host,
        start_seq: json_u64(&doc, "start_seq")?,
        next_seq: json_u64(&doc, "next_seq")?,
        total: json_u64(&doc, "total")?,
        dropped: json_u64(&doc, "dropped")?,
        epoch_unix_ms: json_u64(&doc, "epoch_unix_ms")?,
        metrics,
        events,
    })
}

/// Render a node's paged-out metrics history as a self-describing
/// JSON dump (the `{node}.metrics.json` artifact `napletd` writes next
/// to the flight recorder), parseable back by
/// [`parse_metrics_history`]. Field order is fixed.
pub fn metrics_history_json(page: &crate::history::MetricsHistoryPage) -> String {
    let mut out = String::with_capacity(page.samples.len() * 128 + 256);
    out.push_str("{\"host\":\"");
    escape_into(&mut out, &page.host);
    let _ = write!(
        out,
        "\",\"start_seq\":{},\"next_seq\":{},\"total\":{},\"dropped\":{},\"epoch_unix_ms\":{},\"samples\":[",
        page.start_seq, page.next_seq, page.total, page.dropped, page.epoch_unix_ms
    );
    for (i, sample) in page.samples.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"at\":{},\"delta\":", sample.at);
        push_metrics_snapshot(&mut out, &sample.delta);
        out.push('}');
    }
    out.push_str("]}\n");
    out
}

/// Parse a [`metrics_history_json`] document back.
pub fn parse_metrics_history(text: &str) -> Result<crate::history::MetricsHistoryPage, String> {
    let doc = parse_json(text.trim_end())?;
    let host = doc
        .get("host")
        .and_then(Json::as_str)
        .ok_or("missing host")?
        .to_string();
    let samples = match doc.get("samples") {
        Some(Json::Arr(samples)) => samples
            .iter()
            .enumerate()
            .map(|(i, s)| {
                Ok(crate::history::MetricsSample {
                    at: json_u64(s, "at").map_err(|e| format!("sample {i}: {e}"))?,
                    delta: parse_metrics_snapshot(
                        s.get("delta")
                            .ok_or_else(|| format!("sample {i}: missing delta"))?,
                    )
                    .map_err(|e| format!("sample {i}: {e}"))?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?,
        _ => return Err("missing samples array".into()),
    };
    Ok(crate::history::MetricsHistoryPage {
        host,
        start_seq: json_u64(&doc, "start_seq")?,
        next_seq: json_u64(&doc, "next_seq")?,
        total: json_u64(&doc, "total")?,
        dropped: json_u64(&doc, "dropped")?,
        epoch_unix_ms: json_u64(&doc, "epoch_unix_ms")?,
        samples,
    })
}

/// The stitched cluster-wide trace plus everything the stitching
/// learned about it.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedTrace {
    /// The merged Chrome trace-event JSON (pid = node lane).
    pub json: String,
    /// Causality violations found while merging, sorted and deduped;
    /// empty on a healthy cluster.
    pub violations: Vec<String>,
    /// Events in the merged trace (metadata records excluded).
    pub event_count: usize,
}

/// Stitch per-node flight-recorder segments into one cluster trace.
///
/// Every event is shifted onto the shared timeline (`at +
/// epoch_unix_ms`), then the union is sorted by the fixed tie-break
/// `(at, host, journey, ctx seq, kind name)` — so identically-seeded
/// virtual-time runs merge byte-identically regardless of segment
/// arrival order. While merging, wire-level causality is checked:
///
/// - **recv-before-send**: a `wire.recv` whose matching `wire.send`
///   (same journey, ctx seq, and sending host) is timestamped later
///   than `skew_tolerance_ms` after it. Live nodes stamp real clocks,
///   so a small tolerance absorbs ms-level skew between daemons on
///   one machine; virtual-time merges use 0.
/// - **missing-send**: a `wire.recv` naming a sender whose segment is
///   present and complete (`dropped == 0`) yet holds no matching send.
/// - **missing-hop**: a journey whose observed hop counters have a
///   gap (checked only when every segment is complete — a truncated
///   ring legitimately loses early hops).
pub fn merge_cluster_trace(segments: &[FlatSegment], skew_tolerance_ms: u64) -> MergedTrace {
    let mut truncated = false;
    let mut complete_hosts: BTreeSet<&str> = BTreeSet::new();
    for seg in segments {
        if seg.dropped > 0 {
            truncated = true;
        } else {
            complete_hosts.insert(seg.host.as_str());
        }
    }
    let events = merge_flat_events(segments);
    let violations = check_causality(&events, &complete_hosts, skew_tolerance_ms, truncated);
    MergedTrace {
        json: chrome_trace_json_flat(&events),
        violations,
        event_count: events.len(),
    }
}

/// Merge per-node segments onto the shared timeline without
/// rendering: every event is shifted by its segment's
/// `epoch_unix_ms`, then the union is sorted by the fixed cluster
/// tie-break `(at, host, journey, ctx seq, kind name)`. This is the
/// event stream [`merge_cluster_trace`] renders and
/// [`crate::analyze::analyze_segments`] partitions.
pub fn merge_flat_events(segments: &[FlatSegment]) -> Vec<FlatEvent> {
    let mut ordered: Vec<&FlatSegment> = segments.iter().collect();
    ordered.sort_by(|a, b| a.host.cmp(&b.host));

    let mut events: Vec<FlatEvent> = Vec::new();
    for seg in &ordered {
        for event in &seg.events {
            let mut event = event.clone();
            event.at += seg.epoch_unix_ms;
            if let Some(s) = event.started {
                event.started = Some(s + seg.epoch_unix_ms);
            }
            events.push(event);
        }
    }
    // the fixed tie-break (stable sort over host-sorted segments)
    events.sort_by(|a, b| {
        let ka = (
            a.at,
            a.host.as_str(),
            a.naplet.as_deref().unwrap_or(""),
            a.ctx.as_ref().map(|c| c.seq).unwrap_or(0),
            a.name.as_str(),
        );
        let kb = (
            b.at,
            b.host.as_str(),
            b.naplet.as_deref().unwrap_or(""),
            b.ctx.as_ref().map(|c| c.seq).unwrap_or(0),
            b.name.as_str(),
        );
        ka.cmp(&kb)
    });
    events
}

fn check_causality(
    events: &[FlatEvent],
    complete_hosts: &BTreeSet<&str>,
    skew_tolerance_ms: u64,
    truncated: bool,
) -> Vec<String> {
    // (journey, ctx seq, sending host) -> send instants. A host that
    // crashed and restarted may reuse sequences, hence the Vec.
    let mut sends: BTreeMap<(&str, u64, &str), Vec<u64>> = BTreeMap::new();
    for event in events {
        if event.name != "wire.send" {
            continue;
        }
        let Some(ctx) = &event.ctx else { continue };
        sends
            .entry((ctx.journey.as_str(), ctx.seq, event.host.as_str()))
            .or_default()
            .push(event.at);
    }

    let mut violations: BTreeSet<String> = BTreeSet::new();
    for event in events {
        if event.name != "wire.recv" {
            continue;
        }
        let Some(ctx) = &event.ctx else { continue };
        let Some(from) = event.arg_str("from") else {
            continue;
        };
        match sends.get(&(ctx.journey.as_str(), ctx.seq, from)) {
            Some(times) => {
                if times
                    .iter()
                    .all(|&sent| sent > event.at + skew_tolerance_ms)
                {
                    violations.insert(format!(
                        "recv-before-send journey={} seq={} {}->{} sent_at={}ms received_at={}ms",
                        ctx.journey,
                        ctx.seq,
                        from,
                        event.host,
                        times.iter().min().copied().unwrap_or(0),
                        event.at
                    ));
                }
            }
            None => {
                if complete_hosts.contains(from) {
                    violations.insert(format!(
                        "missing-send journey={} seq={} expected at {} for recv at {}",
                        ctx.journey, ctx.seq, from, event.host
                    ));
                }
            }
        }
    }

    if !truncated {
        let mut hops: BTreeMap<&str, BTreeSet<u32>> = BTreeMap::new();
        for event in events {
            if let Some(ctx) = &event.ctx {
                hops.entry(ctx.journey.as_str())
                    .or_default()
                    .insert(ctx.hop);
            }
        }
        for (journey, seen) in &hops {
            let lo = seen.iter().next().copied().unwrap_or(0);
            let hi = seen.iter().next_back().copied().unwrap_or(0);
            for hop in lo..=hi {
                if !seen.contains(&hop) {
                    violations.insert(format!("missing-hop journey={journey} hop={hop}"));
                }
            }
        }
    }

    violations.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceKind;
    use naplet_core::clock::Millis;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                at: Millis(3),
                host: "home".into(),
                naplet: Some("naplet://czxu@home/1".into()),
                ctx: None,
                kind: TraceKind::LandingRequested {
                    dest: "s0".into(),
                    transfer_id: 1,
                },
            },
            TraceEvent {
                at: Millis(9),
                host: "home".into(),
                naplet: Some("naplet://czxu@home/1".into()),
                ctx: None,
                kind: TraceKind::HandoffCommit {
                    dest: "s0".into(),
                    transfer_id: 1,
                    started: Millis(3),
                    attempts: 1,
                },
            },
            TraceEvent {
                at: Millis(12),
                host: "s0".into(),
                naplet: None,
                ctx: None,
                kind: TraceKind::Crash,
            },
        ]
    }

    #[test]
    fn chrome_export_is_valid_and_deterministic() {
        let events = sample_events();
        let a = chrome_trace_json(&events);
        let b = chrome_trace_json(&events);
        assert_eq!(a, b, "same events must export byte-identically");
        let count = validate_chrome_trace(&a).expect("export must validate");
        // 2 process_name + 2 thread_name + 3 events
        assert_eq!(count, 7);
    }

    #[test]
    fn spans_render_as_complete_events_with_duration() {
        let json = chrome_trace_json(&sample_events());
        let doc = parse_json(&json).unwrap();
        let events = match doc.get("traceEvents") {
            Some(Json::Arr(events)) => events,
            _ => panic!("no traceEvents"),
        };
        let commit = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("handoff.commit"))
            .expect("commit span present");
        assert_eq!(commit.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(commit.get("ts").and_then(Json::as_num), Some(3_000.0));
        assert_eq!(commit.get("dur").and_then(Json::as_num), Some(6_000.0));
    }

    #[test]
    fn string_escaping_survives_validation() {
        let events = vec![TraceEvent {
            at: Millis(1),
            host: "we\"ird\\host\n".into(),
            naplet: None,
            ctx: None,
            kind: TraceKind::JourneyDone {
                status: "tab\there".into(),
            },
        }];
        let json = chrome_trace_json(&events);
        validate_chrome_trace(&json).expect("escaped output must parse");
        let doc = parse_json(&json).unwrap();
        let arr = match doc.get("traceEvents") {
            Some(Json::Arr(a)) => a,
            _ => panic!(),
        };
        let meta = &arr[0];
        assert_eq!(
            meta.get("args")
                .and_then(|a| a.get("name"))
                .and_then(Json::as_str),
            Some("we\"ird\\host\n")
        );
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("{}extra").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":7}").is_err());
        assert!(
            validate_chrome_trace("{\"traceEvents\":[{\"ph\":\"i\"}]}").is_err(),
            "events missing name/pid/tid must fail"
        );
    }

    #[test]
    fn text_rendering_lists_every_event() {
        let text = render_event_log(&sample_events());
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains("landing.request"));
        assert!(text.contains("transfer_id=1"));
        assert!(text.contains("crash"));
    }

    #[test]
    fn obs_snapshot_codec_round_trip() {
        let snap = ObsSnapshot {
            events: sample_events(),
            metrics: MetricsSnapshot::default(),
        };
        let bytes = naplet_core::codec::to_bytes(&snap).unwrap();
        let back: ObsSnapshot = naplet_core::codec::from_bytes(&bytes).unwrap();
        assert_eq!(back, snap);
    }

    fn ctx(journey: &str, hop: u32, seq: u64) -> TraceCtx {
        TraceCtx {
            journey: journey.into(),
            origin: "home".into(),
            hop,
            seq,
        }
    }

    fn wire_event(at: u64, host: &str, send: bool, peer: &str, c: TraceCtx) -> TraceEvent {
        TraceEvent {
            at: Millis(at),
            host: host.into(),
            naplet: Some(c.journey.clone()),
            ctx: Some(c),
            kind: if send {
                TraceKind::WireSend {
                    to: peer.into(),
                    label: "transfer".into(),
                    class: "migration".into(),
                    bytes: 64,
                    attempt: 1,
                }
            } else {
                TraceKind::WireRecv {
                    from: peer.into(),
                    label: "transfer".into(),
                }
            },
        }
    }

    fn segment(host: &str, epoch: u64, events: Vec<TraceEvent>) -> TraceSegment {
        TraceSegment {
            host: host.into(),
            start_seq: 0,
            next_seq: events.len() as u64,
            total: events.len() as u64,
            dropped: 0,
            epoch_unix_ms: epoch,
            events,
        }
    }

    #[test]
    fn flight_dump_round_trips_and_is_deterministic() {
        let j = "naplet://czxu@home/1";
        let mut events = sample_events();
        events.push(wire_event(20, "home", true, "s0", ctx(j, 1, 1)));
        let seg = segment("home", 1_700_000_000_000, events);
        let a = flight_dump_json(&seg);
        let b = flight_dump_json(&seg);
        assert_eq!(a, b, "dumps must be byte-stable");
        let back = parse_flight_dump(&a).expect("dump must parse");
        assert_eq!(back, FlatSegment::from_segment(&seg));
        assert_eq!(back.epoch_unix_ms, 1_700_000_000_000);
        assert_eq!(back.events.len(), 4);
        assert_eq!(back.events[3].ctx.as_ref().unwrap().seq, 1);
        assert_eq!(back.events[3].arg_str("to"), Some("s0"));
    }

    #[test]
    fn flight_dump_embeds_and_round_trips_a_metrics_snapshot() {
        let seg = segment("home", 0, sample_events());
        let registry = crate::metrics::MetricsRegistry::default();
        registry.incr("handoff.commits", 3);
        registry.gauge_max("mailbox.depth", 7);
        registry.observe("handoff_rtt_ms", crate::metrics::LATENCY_BOUNDS_MS, 42);
        let snap = registry.snapshot();
        let a = flight_dump_json_with(&seg, Some(&snap));
        assert_eq!(a, flight_dump_json_with(&seg, Some(&snap)));
        let back = parse_flight_dump(&a).expect("dump with metrics must parse");
        assert_eq!(back.metrics.as_ref(), Some(&snap));
        assert_eq!(back.events, FlatSegment::from_segment(&seg).events);
        // a metrics-less dump parses to None, keeping old dumps valid
        let plain = parse_flight_dump(&flight_dump_json(&seg)).unwrap();
        assert_eq!(plain.metrics, None);
    }

    #[test]
    fn metrics_history_dump_round_trips() {
        let history = crate::history::MetricsHistory::new();
        history.enable(8);
        history.set_epoch_unix_ms(1_700_000_000_000);
        let registry = crate::metrics::MetricsRegistry::default();
        registry.incr("wire.sent", 5);
        history.sample(naplet_core::clock::Millis(100), &registry);
        registry.incr("wire.sent", 2);
        registry.observe("sweep_ms", crate::metrics::LATENCY_BOUNDS_MS, 3);
        history.sample(naplet_core::clock::Millis(200), &registry);
        let page = history.dump("n1");
        let a = metrics_history_json(&page);
        assert_eq!(a, metrics_history_json(&page), "dump must be byte-stable");
        let back = parse_metrics_history(&a).expect("history dump must parse");
        assert_eq!(back, page);
        assert_eq!(back.samples[0].delta.counter("wire.sent"), 5);
        assert_eq!(back.samples[1].delta.counter("wire.sent"), 2);
    }

    #[test]
    fn merged_trace_links_sends_to_recvs_across_nodes() {
        let j = "naplet://czxu@home/1";
        let home = segment(
            "home",
            0,
            vec![wire_event(5, "home", true, "n1", ctx(j, 1, 1))],
        );
        let n1 = segment(
            "n1",
            0,
            vec![wire_event(9, "n1", false, "home", ctx(j, 1, 1))],
        );
        // segment order must not matter
        let fwd = merge_cluster_trace(
            &[
                FlatSegment::from_segment(&home),
                FlatSegment::from_segment(&n1),
            ],
            0,
        );
        let rev = merge_cluster_trace(
            &[
                FlatSegment::from_segment(&n1),
                FlatSegment::from_segment(&home),
            ],
            0,
        );
        assert_eq!(fwd, rev, "merge must be order-insensitive");
        assert!(fwd.violations.is_empty(), "{:?}", fwd.violations);
        assert_eq!(fwd.event_count, 2);
        validate_chrome_trace(&fwd.json).expect("merged trace must validate");
        assert!(fwd.json.contains("\"ctx_seq\":1"));
    }

    #[test]
    fn merge_normalizes_per_node_epochs() {
        let j = "naplet://czxu@home/1";
        // home's clock started 100ms before n1's: a recv at local 2ms
        // on n1 is actually *after* a send at local 90ms on home.
        let home = segment(
            "home",
            1_000,
            vec![wire_event(90, "home", true, "n1", ctx(j, 1, 1))],
        );
        let n1 = segment(
            "n1",
            1_100,
            vec![wire_event(2, "n1", false, "home", ctx(j, 1, 1))],
        );
        let merged = merge_cluster_trace(
            &[
                FlatSegment::from_segment(&home),
                FlatSegment::from_segment(&n1),
            ],
            0,
        );
        assert!(merged.violations.is_empty(), "{:?}", merged.violations);
    }

    #[test]
    fn merge_flags_causality_violations() {
        let j = "naplet://czxu@home/1";
        // recv strictly before its matching send on the shared timeline
        let home = segment(
            "home",
            0,
            vec![wire_event(50, "home", true, "n1", ctx(j, 1, 1))],
        );
        let n1 = segment(
            "n1",
            0,
            vec![wire_event(10, "n1", false, "home", ctx(j, 1, 1))],
        );
        let merged = merge_cluster_trace(
            &[
                FlatSegment::from_segment(&home),
                FlatSegment::from_segment(&n1),
            ],
            0,
        );
        assert_eq!(merged.violations.len(), 1);
        assert!(
            merged.violations[0].starts_with("recv-before-send"),
            "{:?}",
            merged.violations
        );
        // ...but a skew tolerance ≥ the gap absorbs it
        let tolerant = merge_cluster_trace(
            &[
                FlatSegment::from_segment(&home),
                FlatSegment::from_segment(&n1),
            ],
            40,
        );
        assert!(tolerant.violations.is_empty());

        // a recv whose sender's complete segment holds no send
        let lonely = merge_cluster_trace(
            &[
                FlatSegment::from_segment(&segment("home", 0, vec![])),
                FlatSegment::from_segment(&n1),
            ],
            0,
        );
        assert!(lonely
            .violations
            .iter()
            .any(|v| v.starts_with("missing-send")));

        // a hop gap: hops 1 and 3 observed, 2 never recorded anywhere
        let gap = merge_cluster_trace(
            &[FlatSegment::from_segment(&segment(
                "home",
                0,
                vec![
                    wire_event(1, "home", true, "n1", ctx(j, 1, 1)),
                    wire_event(9, "home", true, "n1", ctx(j, 3, 3)),
                ],
            ))],
            0,
        );
        assert!(
            gap.violations.iter().any(|v| v.starts_with("missing-hop")),
            "{:?}",
            gap.violations
        );
    }

    #[test]
    fn truncated_segments_suppress_hop_gap_checks() {
        let j = "naplet://czxu@home/1";
        let mut seg = segment(
            "home",
            0,
            vec![
                wire_event(1, "home", true, "n1", ctx(j, 1, 1)),
                wire_event(9, "home", true, "n1", ctx(j, 3, 3)),
            ],
        );
        seg.dropped = 5; // the ring lost the front of the record
        let merged = merge_cluster_trace(&[FlatSegment::from_segment(&seg)], 0);
        assert!(
            merged.violations.is_empty(),
            "a truncated record cannot prove a hop gap: {:?}",
            merged.violations
        );
    }
}
