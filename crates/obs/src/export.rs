//! Deterministic exporters for the recorded trace.
//!
//! Three formats:
//! - **Chrome trace-event JSON** (`chrome_trace_json`): loadable in
//!   `chrome://tracing` and Perfetto. Hosts become processes, naplets
//!   become threads; span-like kinds render as complete (`"X"`)
//!   events with durations, everything else as thread-scoped
//!   instants.
//! - **Serde snapshot** (`ObsSnapshot`): events + metrics through the
//!   workspace codec, for programmatic consumers.
//! - **Text** (`render_event_log`): a one-line-per-event table for
//!   terminals and EXPERIMENTS.md.
//!
//! Determinism: the JSON is hand-assembled with a fixed field order,
//! pids/tids come from sorted name tables, and no wall-clock or
//! random value is ever consulted — identical event vectors yield
//! byte-identical strings. (Hand-assembled because the workspace
//! vendors no JSON serializer; the flip side is full control over
//! byte layout.)

use std::collections::BTreeSet;
use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

use crate::metrics::MetricsSnapshot;
use crate::trace::{ArgValue, TraceEvent};

/// Everything one run observed, as one serde-codable value.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ObsSnapshot {
    /// Recorded events in processing order.
    pub events: Vec<TraceEvent>,
    /// Frozen metrics.
    pub metrics: MetricsSnapshot,
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn push_args(out: &mut String, args: &[(&'static str, ArgValue)]) {
    out.push('{');
    for (i, (key, value)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{key}\":");
        match value {
            ArgValue::Str(s) => {
                out.push('"');
                escape_into(out, s);
                out.push('"');
            }
            ArgValue::Int(n) => {
                let _ = write!(out, "{n}");
            }
            ArgValue::Bool(b) => {
                let _ = write!(out, "{b}");
            }
        }
    }
    out.push('}');
}

/// Render `events` as Chrome trace-event JSON.
///
/// `pid` is the sorted index of the host, `tid` the sorted index of
/// the naplet id within that host's events (tid 0 is the host's own
/// lane for events with no naplet). Timestamps are the simulation's
/// milliseconds expressed in microseconds, as the format requires.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let hosts: BTreeSet<&str> = events.iter().map(|e| e.host.as_str()).collect();
    let host_pid = |host: &str| hosts.iter().position(|h| *h == host).unwrap_or(0) + 1;
    let naplets: BTreeSet<&str> = events.iter().filter_map(|e| e.naplet.as_deref()).collect();
    let naplet_tid = |naplet: Option<&str>| match naplet {
        Some(id) => naplets.iter().position(|n| *n == id).unwrap_or(0) + 1,
        None => 0,
    };

    let mut out = String::with_capacity(events.len() * 160 + 1024);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut emit = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push(',');
        }
    };

    for host in &hosts {
        emit(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\"args\":{{\"name\":\"",
            host_pid(host)
        );
        escape_into(&mut out, host);
        out.push_str("\"}}");
    }
    for naplet in &naplets {
        for host in &hosts {
            emit(&mut out);
            let _ = write!(
                out,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{},\"tid\":{},\"args\":{{\"name\":\"",
                host_pid(host),
                naplet_tid(Some(naplet))
            );
            escape_into(&mut out, naplet);
            out.push_str("\"}}");
        }
    }

    for event in events {
        emit(&mut out);
        let pid = host_pid(&event.host);
        let tid = naplet_tid(event.naplet.as_deref());
        let name = event.kind.name();
        match event.kind.span_start() {
            Some(started) => {
                let ts = started.0 * 1_000;
                let dur = event.at.0.saturating_sub(started.0) * 1_000;
                let _ = write!(
                    out,
                    "{{\"name\":\"{name}\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{dur},\"pid\":{pid},\"tid\":{tid},\"args\":"
                );
            }
            None => {
                let ts = event.at.0 * 1_000;
                let _ = write!(
                    out,
                    "{{\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":{pid},\"tid\":{tid},\"args\":"
                );
            }
        }
        push_args(&mut out, &event.kind.args());
        out.push('}');
    }

    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// One-line-per-event text rendering of the trace.
pub fn render_event_log(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for event in events {
        let _ = write!(out, "{:>8}ms  {:<8}", event.at.0, event.host);
        let _ = write!(out, "  {:<18}", event.kind.name());
        if let Some(naplet) = &event.naplet {
            let _ = write!(out, "  {naplet}");
        }
        for (key, value) in event.kind.args() {
            match value {
                ArgValue::Str(s) => {
                    if !s.is_empty() {
                        let _ = write!(out, "  {key}={s}");
                    }
                }
                ArgValue::Int(n) => {
                    let _ = write!(out, "  {key}={n}");
                }
                ArgValue::Bool(b) => {
                    let _ = write!(out, "  {key}={b}");
                }
            }
        }
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------
// Chrome-format validation: a minimal JSON parser (the workspace
// vendors none) plus the structural checks `chrome://tracing` cares
// about. Used by tests and the CI determinism step.
// ---------------------------------------------------------------------

/// A parsed JSON value, just enough to validate exports.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as f64).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, preserving textual key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Number payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u at byte {}", self.pos))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(&b) => {
                    // Multi-byte UTF-8 sequences pass through intact.
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| format!("bad utf-8 at byte {}", self.pos))?;
                    out.push_str(chunk);
                    self.pos += len;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']' got {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            members.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                other => return Err(format!("expected ',' or '}}' got {other:?}")),
            }
        }
    }
}

/// Parse a JSON document (rejecting trailing garbage).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(value)
}

/// Check that `text` is valid Chrome trace-event JSON: a JSON object
/// whose `traceEvents` member is an array of objects each carrying
/// `name`/`ph`/`pid`/`tid`, with `ts` (and `dur` for `"X"`) on
/// non-metadata events. Returns the event count.
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    let doc = parse_json(text)?;
    let events = match doc.get("traceEvents") {
        Some(Json::Arr(events)) => events,
        _ => return Err("missing traceEvents array".into()),
    };
    for (i, event) in events.iter().enumerate() {
        let ph = event
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        for key in ["name", "pid", "tid"] {
            if event.get(key).is_none() {
                return Err(format!("event {i}: missing {key}"));
            }
        }
        match ph {
            "M" => {}
            "X" => {
                if event.get("ts").and_then(Json::as_num).is_none()
                    || event.get("dur").and_then(Json::as_num).is_none()
                {
                    return Err(format!("event {i}: X without ts/dur"));
                }
            }
            _ => {
                if event.get("ts").and_then(Json::as_num).is_none() {
                    return Err(format!("event {i}: missing ts"));
                }
            }
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceKind;
    use naplet_core::clock::Millis;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                at: Millis(3),
                host: "home".into(),
                naplet: Some("naplet://czxu@home/1".into()),
                kind: TraceKind::LandingRequested {
                    dest: "s0".into(),
                    transfer_id: 1,
                },
            },
            TraceEvent {
                at: Millis(9),
                host: "home".into(),
                naplet: Some("naplet://czxu@home/1".into()),
                kind: TraceKind::HandoffCommit {
                    dest: "s0".into(),
                    transfer_id: 1,
                    started: Millis(3),
                    attempts: 1,
                },
            },
            TraceEvent {
                at: Millis(12),
                host: "s0".into(),
                naplet: None,
                kind: TraceKind::Crash,
            },
        ]
    }

    #[test]
    fn chrome_export_is_valid_and_deterministic() {
        let events = sample_events();
        let a = chrome_trace_json(&events);
        let b = chrome_trace_json(&events);
        assert_eq!(a, b, "same events must export byte-identically");
        let count = validate_chrome_trace(&a).expect("export must validate");
        // 2 process_name + 2 thread_name + 3 events
        assert_eq!(count, 7);
    }

    #[test]
    fn spans_render_as_complete_events_with_duration() {
        let json = chrome_trace_json(&sample_events());
        let doc = parse_json(&json).unwrap();
        let events = match doc.get("traceEvents") {
            Some(Json::Arr(events)) => events,
            _ => panic!("no traceEvents"),
        };
        let commit = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("handoff.commit"))
            .expect("commit span present");
        assert_eq!(commit.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(commit.get("ts").and_then(Json::as_num), Some(3_000.0));
        assert_eq!(commit.get("dur").and_then(Json::as_num), Some(6_000.0));
    }

    #[test]
    fn string_escaping_survives_validation() {
        let events = vec![TraceEvent {
            at: Millis(1),
            host: "we\"ird\\host\n".into(),
            naplet: None,
            kind: TraceKind::JourneyDone {
                status: "tab\there".into(),
            },
        }];
        let json = chrome_trace_json(&events);
        validate_chrome_trace(&json).expect("escaped output must parse");
        let doc = parse_json(&json).unwrap();
        let arr = match doc.get("traceEvents") {
            Some(Json::Arr(a)) => a,
            _ => panic!(),
        };
        let meta = &arr[0];
        assert_eq!(
            meta.get("args")
                .and_then(|a| a.get("name"))
                .and_then(Json::as_str),
            Some("we\"ird\\host\n")
        );
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("{}extra").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":7}").is_err());
        assert!(
            validate_chrome_trace("{\"traceEvents\":[{\"ph\":\"i\"}]}").is_err(),
            "events missing name/pid/tid must fail"
        );
    }

    #[test]
    fn text_rendering_lists_every_event() {
        let text = render_event_log(&sample_events());
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains("landing.request"));
        assert!(text.contains("transfer_id=1"));
        assert!(text.contains("crash"));
    }

    #[test]
    fn obs_snapshot_codec_round_trip() {
        let snap = ObsSnapshot {
            events: sample_events(),
            metrics: MetricsSnapshot::default(),
        };
        let bytes = naplet_core::codec::to_bytes(&snap).unwrap();
        let back: ObsSnapshot = naplet_core::codec::from_bytes(&bytes).unwrap();
        assert_eq!(back, snap);
    }
}
