//! Per-daemon metrics time-series: a black box of recent metric
//! deltas.
//!
//! The [`crate::MetricsRegistry`] answers "what are the totals right
//! now"; the [`MetricsHistory`] answers "what happened in the last N
//! sweep intervals". The daemon sweep thread calls
//! [`MetricsHistory::sample`] on every tick, which snapshots the
//! registry, diffs it against the previous snapshot, and pushes the
//! timestamped delta into a bounded [`Ring`] — so the retained record
//! is a sequence of interval deltas, cheap to keep permanently and
//! trivially convertible to rates. Remote readers page it out over
//! the privileged `MetricsHistoryRequest/Reply` wire pair (same gating
//! as the status and trace protocols) as [`MetricsHistoryPage`]s, and
//! `napletd` dumps it next to the flight recorder on SIGUSR1, clean
//! shutdown, and panic — "what happened in the 60s before the crash"
//! is always answerable.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use naplet_core::clock::Millis;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::metrics::{MetricsRegistry, MetricsSnapshot};
use crate::ring::Ring;

/// Default ring capacity a daemon enables the metrics history with:
/// at the watchdog's default 1 s sweep tick this retains ~4 minutes.
pub const DEFAULT_HISTORY_CAPACITY: usize = 256;

/// One sampled interval: the metric activity between the previous
/// sweep tick and `at` (event-clock ms).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSample {
    /// Event-clock instant the sample was taken (interval end).
    pub at: u64,
    /// Registry delta since the previous sample (counter increments,
    /// gauge values at sample time, histogram bucket increments).
    pub delta: MetricsSnapshot,
}

/// One paged-out slice of a node's metrics history, self-describing
/// the same way a [`crate::TraceSegment`] is: absolute sample
/// sequences, completeness counters, and the node's UNIX clock anchor.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsHistoryPage {
    /// Node the page came from.
    pub host: String,
    /// Absolute sequence of `samples[0]` (equals `next_seq` when
    /// empty).
    pub start_seq: u64,
    /// Absolute sequence one past the last returned sample; poll again
    /// from here.
    pub next_seq: u64,
    /// Total samples ever recorded at the node.
    pub total: u64,
    /// Samples evicted from the ring (non-zero means the retained
    /// record is truncated at the front).
    pub dropped: u64,
    /// UNIX ms corresponding to the node's event-clock zero.
    pub epoch_unix_ms: u64,
    /// The samples, oldest first.
    pub samples: Vec<MetricsSample>,
}

struct HistoryState {
    ring: Ring<MetricsSample>,
    last: MetricsSnapshot,
}

struct HistoryInner {
    enabled: AtomicBool,
    epoch_unix_ms: AtomicU64,
    state: Mutex<HistoryState>,
}

/// Clone-shared bounded ring of timestamped [`MetricsSnapshot`]
/// deltas. Disabled by default; when off, [`MetricsHistory::sample`]
/// is one atomic load.
#[derive(Clone)]
pub struct MetricsHistory {
    inner: Arc<HistoryInner>,
}

impl Default for MetricsHistory {
    fn default() -> MetricsHistory {
        MetricsHistory {
            inner: Arc::new(HistoryInner {
                enabled: AtomicBool::new(false),
                epoch_unix_ms: AtomicU64::new(0),
                state: Mutex::new(HistoryState {
                    ring: Ring::with_capacity(DEFAULT_HISTORY_CAPACITY),
                    last: MetricsSnapshot::default(),
                }),
            }),
        }
    }
}

impl MetricsHistory {
    /// A fresh, disabled history.
    pub fn new() -> MetricsHistory {
        MetricsHistory::default()
    }

    /// Is sampling on?
    pub fn enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Turn sampling on with a ring of `capacity` samples.
    pub fn enable(&self, capacity: usize) {
        let mut state = self.inner.state.lock();
        state.ring = Ring::with_capacity(capacity);
        state.last = MetricsSnapshot::default();
        self.inner.enabled.store(true, Ordering::Relaxed);
    }

    /// Turn sampling off (retained samples stay readable).
    pub fn disable(&self) {
        self.inner.enabled.store(false, Ordering::Relaxed);
    }

    /// Anchor this history's sample clock to the UNIX timeline:
    /// `unix_ms` is the wall-clock instant at which the node's event
    /// clock read zero. Virtual-time sources leave it at 0.
    pub fn set_epoch_unix_ms(&self, unix_ms: u64) {
        self.inner.epoch_unix_ms.store(unix_ms, Ordering::Relaxed);
    }

    /// The configured clock anchor.
    pub fn epoch_unix_ms(&self) -> u64 {
        self.inner.epoch_unix_ms.load(Ordering::Relaxed)
    }

    /// Take one sample: snapshot `metrics`, store the delta against
    /// the previous sample, remember the snapshot as the new baseline.
    /// No-op while disabled.
    pub fn sample(&self, at: Millis, metrics: &MetricsRegistry) {
        if !self.enabled() {
            return;
        }
        let snap = metrics.snapshot();
        let mut state = self.inner.state.lock();
        let delta = snap.diff(&state.last);
        state.last = snap;
        state.ring.push(MetricsSample { at: at.0, delta });
    }

    /// Retained sample count.
    pub fn len(&self) -> usize {
        self.inner.state.lock().ring.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Samples evicted so far.
    pub fn dropped(&self) -> u64 {
        self.inner.state.lock().ring.dropped()
    }

    /// Page out retained samples with absolute sequence ≥ `from_seq`,
    /// at most `max` of them, stamped with `host`.
    pub fn page(&self, host: &str, from_seq: u64, max: usize) -> MetricsHistoryPage {
        let state = self.inner.state.lock();
        let (start_seq, samples) = state.ring.page(from_seq, max);
        MetricsHistoryPage {
            host: host.to_string(),
            start_seq,
            next_seq: start_seq + samples.len() as u64,
            total: state.ring.pushed(),
            dropped: state.ring.dropped(),
            epoch_unix_ms: self.epoch_unix_ms(),
            samples,
        }
    }

    /// The whole retained record as one page (what a dump writes).
    pub fn dump(&self, host: &str) -> MetricsHistoryPage {
        self.page(host, 0, usize::MAX)
    }
}

impl std::fmt::Debug for MetricsHistory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsHistory")
            .field("enabled", &self.enabled())
            .field("samples", &self.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_history_samples_nothing() {
        let h = MetricsHistory::new();
        let m = MetricsRegistry::default();
        m.incr("x", 1);
        h.sample(Millis(1), &m);
        assert!(h.is_empty());
    }

    #[test]
    fn samples_are_interval_deltas_not_totals() {
        let h = MetricsHistory::new();
        h.enable(8);
        let m = MetricsRegistry::default();
        m.incr("sent", 3);
        h.sample(Millis(10), &m);
        m.incr("sent", 4);
        h.sample(Millis(20), &m);
        // no activity in the third interval
        h.sample(Millis(30), &m);
        let page = h.dump("n1");
        assert_eq!(page.samples.len(), 3);
        assert_eq!(page.samples[0].at, 10);
        assert_eq!(page.samples[0].delta.counter("sent"), 3);
        assert_eq!(page.samples[1].delta.counter("sent"), 4);
        assert_eq!(page.samples[2].delta.counter("sent"), 0);
    }

    #[test]
    fn ring_bounds_and_paging() {
        let h = MetricsHistory::new();
        h.enable(3);
        let m = MetricsRegistry::default();
        for i in 0..5u64 {
            m.incr("tick", 1);
            h.sample(Millis(i), &m);
        }
        assert_eq!(h.len(), 3);
        assert_eq!(h.dropped(), 2);
        let page = h.page("n1", 0, 2);
        assert_eq!(page.start_seq, 2);
        assert_eq!(page.next_seq, 4);
        assert_eq!(page.total, 5);
        assert_eq!(page.dropped, 2);
        let rest = h.page("n1", page.next_seq, 16);
        assert_eq!(rest.samples.len(), 1);
        assert_eq!(rest.next_seq, 5);
    }

    #[test]
    fn page_round_trips_through_the_codec() {
        let h = MetricsHistory::new();
        h.enable(4);
        h.set_epoch_unix_ms(1_700_000_000_000);
        let m = MetricsRegistry::default();
        m.incr("sent", 2);
        m.observe("rtt_ms", crate::metrics::LATENCY_BOUNDS_MS, 7);
        h.sample(Millis(5), &m);
        let page = h.dump("n1");
        let bytes = naplet_core::codec::to_bytes(&page).unwrap();
        let back: MetricsHistoryPage = naplet_core::codec::from_bytes(&bytes).unwrap();
        assert_eq!(back, page);
        assert_eq!(back.epoch_unix_ms, 1_700_000_000_000);
    }
}
