//! # naplet-obs — journey tracing and metrics
//!
//! The paper's NapletServer is built around components that *watch*
//! agents: the NavigationLog records every hop (§2.1) and the
//! NapletMonitor tracks consumed CPU time, memory, and bandwidth
//! (§5.2). This crate turns those observations into structure:
//!
//! - a typed [`TraceEvent`] stream with causal correlation — the
//!   naplet id is the trace id of its journey; visits and handoffs
//!   are spans, wire/journal/recovery activity are instants;
//! - a [`MetricsRegistry`] of counters and fixed-bucket histograms
//!   (handoff RTT, landing latency, visit dwell, retries, journal
//!   size, mailbox depth, per-naplet resource usage);
//! - deterministic exporters: Chrome trace-event JSON for
//!   `chrome://tracing`/Perfetto, a serde snapshot, and text tables.
//!
//! Both halves hang off one cloneable [`ObsSink`] that the drivers
//! thread through every server. Metrics are always on (a handful of
//! map updates per protocol step); tracing is off until
//! [`ObsSink::enable_tracing`] and costs one atomic load when off.

#![warn(missing_docs)]

pub mod analyze;
pub mod export;
pub mod history;
pub mod metrics;
pub mod prometheus;
pub mod recorder;
pub mod ring;
pub mod trace;
pub mod watchdog;

pub use analyze::{
    analyze_events, analyze_segments, check_slo, diff_analyses, parse_analysis, AnalysisDiff,
    DiffRow, JourneyBreakdown, SegmentStats, SloConfig, TraceAnalysis, ANALYZE_SCHEMA,
    SEGMENT_NAMES,
};
pub use export::{
    chrome_trace_json, chrome_trace_json_flat, flatten_events, flight_dump_json,
    flight_dump_json_with, merge_cluster_trace, merge_flat_events, metrics_history_json,
    parse_flight_dump, parse_json, parse_metrics_history, render_event_log, validate_chrome_trace,
    FlatEvent, FlatSegment, Json, MergedTrace, ObsSnapshot,
};
pub use history::{MetricsHistory, MetricsHistoryPage, MetricsSample, DEFAULT_HISTORY_CAPACITY};
pub use metrics::{
    HistogramSnapshot, MetricsRegistry, MetricsSnapshot, COUNT_BOUNDS, HANDLER_BOUNDS_US,
    LATENCY_BOUNDS_MS,
};
pub use prometheus::{prometheus_text, prometheus_text_full, BuildInfo};
pub use recorder::{FlightRecorder, TraceSegment, DEFAULT_RECORDER_CAPACITY};
pub use ring::Ring;
pub use trace::{ArgValue, TraceEvent, TraceKind, Tracer};
pub use watchdog::{StallAlert, Watchdog, WatchdogConfig};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use naplet_core::clock::Millis;
use naplet_core::id::NapletId;
use naplet_core::tracectx::TraceCtx;

/// The shared observation endpoint: one per runtime, cloned into
/// every server it drives.
#[derive(Debug, Clone, Default)]
pub struct ObsSink {
    /// The trace recorder (disabled until [`ObsSink::enable_tracing`]).
    pub tracer: Tracer,
    /// The always-on metrics registry.
    pub metrics: MetricsRegistry,
    /// The journey stall watchdog (disabled until
    /// [`ObsSink::enable_watchdog`]).
    pub watchdog: Watchdog,
    /// The bounded flight recorder (disabled until
    /// [`ObsSink::enable_recorder`]).
    pub recorder: FlightRecorder,
    /// The metrics time-series ring (disabled until
    /// [`ObsSink::enable_metrics_history`]).
    pub history: MetricsHistory,
    /// Wall-clock profiling switch (see [`ObsSink::enable_profiling`]).
    profiling: Arc<AtomicBool>,
}

impl ObsSink {
    /// A fresh sink: metrics on, tracing/watchdog/recorder off.
    pub fn new() -> ObsSink {
        ObsSink::default()
    }

    /// Start recording trace events.
    pub fn enable_tracing(&self) {
        self.tracer.set_enabled(true);
    }

    /// Arm the journey watchdog; every event emitted through this
    /// sink then feeds its progress tracker.
    pub fn enable_watchdog(&self, config: WatchdogConfig) {
        self.watchdog.enable(config);
    }

    /// Start the bounded flight recorder with a ring of `capacity`
    /// recent events.
    pub fn enable_recorder(&self, capacity: usize) {
        self.recorder.enable(capacity);
    }

    /// Start sampling metrics deltas into a ring of `capacity` recent
    /// samples (the daemon sweep thread calls
    /// [`MetricsHistory::sample`] on every tick).
    pub fn enable_metrics_history(&self, capacity: usize) {
        self.history.enable(capacity);
    }

    /// Turn on wall-clock hot-path profiling (handler-latency
    /// histograms). Off by default: wall-clock readings are
    /// nondeterministic, so the simulation's byte-stable exports must
    /// never see them — only live daemons opt in.
    pub fn enable_profiling(&self) {
        self.profiling.store(true, Ordering::Relaxed);
    }

    /// Is wall-clock profiling on?
    pub fn profiling_enabled(&self) -> bool {
        self.profiling.load(Ordering::Relaxed)
    }

    /// Should drivers compute and propagate [`TraceCtx`] on sends?
    /// True while any consumer of wire-level causality (tracer or
    /// flight recorder) is on — when both are off, senders skip the
    /// context table entirely and frames stay byte-identical to the
    /// pre-tracing encoding.
    pub fn ctx_enabled(&self) -> bool {
        self.tracer.enabled() || self.recorder.enabled()
    }

    /// Record one event; the `kind` closure runs only when the tracer,
    /// the watchdog, or the flight recorder wants it, so instrumented
    /// hot paths allocate nothing when all are off (three atomic
    /// loads).
    pub fn emit(
        &self,
        at: Millis,
        host: &str,
        naplet: Option<&NapletId>,
        kind: impl FnOnce() -> TraceKind,
    ) {
        self.emit_ctx(at, host, naplet, None, kind);
    }

    /// [`ObsSink::emit`] with a wire-propagated [`TraceCtx`] attached
    /// to the recorded event — drivers use this for wire send/recv/drop
    /// events so merged cluster traces can pair them across nodes.
    pub fn emit_ctx(
        &self,
        at: Millis,
        host: &str,
        naplet: Option<&NapletId>,
        ctx: Option<&TraceCtx>,
        kind: impl FnOnce() -> TraceKind,
    ) {
        let want_trace = self.tracer.enabled();
        let want_rec = self.recorder.enabled();
        if !want_trace && !want_rec && !self.watchdog.enabled() {
            return;
        }
        let kind = kind();
        if self.watchdog.enabled() {
            let id = naplet.map(|id| id.to_string());
            self.watchdog.observe(at, host, id.as_deref(), &kind);
        }
        if !want_trace && !want_rec {
            return;
        }
        let event = TraceEvent {
            at,
            host: host.to_string(),
            naplet: naplet.map(|id| id.to_string()),
            ctx: ctx.cloned(),
            kind,
        };
        if want_rec {
            if want_trace {
                self.recorder.record(event.clone());
            } else {
                self.recorder.record(event);
                return;
            }
        }
        self.tracer.push(event);
    }

    /// Record an already-built event with every enabled consumer
    /// (tracer and flight recorder) — used for watchdog alerts, which
    /// are constructed by the watchdog itself rather than through
    /// [`ObsSink::emit`].
    pub fn push_event(&self, event: TraceEvent) {
        if self.recorder.enabled() {
            self.recorder.record(event.clone());
        }
        self.tracer.push(event);
    }

    /// Freeze everything observed so far into one exportable value.
    pub fn snapshot(&self) -> ObsSnapshot {
        ObsSnapshot {
            events: self.tracer.events(),
            metrics: self.metrics.snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_emits_only_when_enabled() {
        let sink = ObsSink::new();
        sink.emit(Millis(1), "h", None, || TraceKind::Crash);
        assert!(sink.tracer.is_empty());
        sink.enable_tracing();
        sink.emit(Millis(2), "h", None, || TraceKind::Crash);
        assert_eq!(sink.tracer.len(), 1);
    }

    #[test]
    fn sink_feeds_the_watchdog_even_with_tracing_off() {
        let sink = ObsSink::new();
        let id = NapletId::new("czxu", "home", Millis(1)).unwrap();
        sink.emit(Millis(2), "s1", Some(&id), || TraceKind::VisitEnd {
            started: Millis(1),
            epoch: 1,
            gas: 0,
            msg_bytes: 0,
        });
        assert_eq!(sink.watchdog.tracked(), 0, "disabled watchdog sees nothing");
        sink.enable_watchdog(WatchdogConfig {
            deadline_ms: 100,
            ..WatchdogConfig::default()
        });
        sink.emit(Millis(3), "s1", Some(&id), || TraceKind::VisitEnd {
            started: Millis(2),
            epoch: 1,
            gas: 0,
            msg_bytes: 0,
        });
        assert_eq!(sink.watchdog.tracked(), 1);
        assert!(sink.tracer.is_empty(), "tracing stays off independently");
        assert_eq!(sink.watchdog.check(Millis(500)).len(), 1);
    }

    #[test]
    fn sink_snapshot_carries_events_and_metrics() {
        let sink = ObsSink::new();
        sink.enable_tracing();
        let id = NapletId::new("czxu", "home", Millis(1)).unwrap();
        sink.emit(Millis(2), "home", Some(&id), || TraceKind::JourneyDone {
            status: "completed".into(),
        });
        sink.metrics.incr("done", 1);
        let snap = sink.snapshot();
        assert_eq!(snap.events.len(), 1);
        assert_eq!(
            snap.events[0].naplet.as_deref(),
            Some(id.to_string().as_str())
        );
        assert_eq!(snap.metrics.counter("done"), 1);
    }
}
