//! # naplet-obs — journey tracing and metrics
//!
//! The paper's NapletServer is built around components that *watch*
//! agents: the NavigationLog records every hop (§2.1) and the
//! NapletMonitor tracks consumed CPU time, memory, and bandwidth
//! (§5.2). This crate turns those observations into structure:
//!
//! - a typed [`TraceEvent`] stream with causal correlation — the
//!   naplet id is the trace id of its journey; visits and handoffs
//!   are spans, wire/journal/recovery activity are instants;
//! - a [`MetricsRegistry`] of counters and fixed-bucket histograms
//!   (handoff RTT, landing latency, visit dwell, retries, journal
//!   size, mailbox depth, per-naplet resource usage);
//! - deterministic exporters: Chrome trace-event JSON for
//!   `chrome://tracing`/Perfetto, a serde snapshot, and text tables.
//!
//! Both halves hang off one cloneable [`ObsSink`] that the drivers
//! thread through every server. Metrics are always on (a handful of
//! map updates per protocol step); tracing is off until
//! [`ObsSink::enable_tracing`] and costs one atomic load when off.

#![warn(missing_docs)]

pub mod export;
pub mod metrics;
pub mod prometheus;
pub mod trace;
pub mod watchdog;

pub use export::{
    chrome_trace_json, parse_json, render_event_log, validate_chrome_trace, Json, ObsSnapshot,
};
pub use metrics::{
    HistogramSnapshot, MetricsRegistry, MetricsSnapshot, COUNT_BOUNDS, LATENCY_BOUNDS_MS,
};
pub use prometheus::prometheus_text;
pub use trace::{ArgValue, TraceEvent, TraceKind, Tracer};
pub use watchdog::{StallAlert, Watchdog, WatchdogConfig};

use naplet_core::clock::Millis;
use naplet_core::id::NapletId;

/// The shared observation endpoint: one per runtime, cloned into
/// every server it drives.
#[derive(Debug, Clone, Default)]
pub struct ObsSink {
    /// The trace recorder (disabled until [`ObsSink::enable_tracing`]).
    pub tracer: Tracer,
    /// The always-on metrics registry.
    pub metrics: MetricsRegistry,
    /// The journey stall watchdog (disabled until
    /// [`ObsSink::enable_watchdog`]).
    pub watchdog: Watchdog,
}

impl ObsSink {
    /// A fresh sink: metrics on, tracing and watchdog off.
    pub fn new() -> ObsSink {
        ObsSink::default()
    }

    /// Start recording trace events.
    pub fn enable_tracing(&self) {
        self.tracer.set_enabled(true);
    }

    /// Arm the journey watchdog; every event emitted through this
    /// sink then feeds its progress tracker.
    pub fn enable_watchdog(&self, config: WatchdogConfig) {
        self.watchdog.enable(config);
    }

    /// Record one event; the `kind` closure runs only when the tracer
    /// or the watchdog wants it, so instrumented hot paths allocate
    /// nothing when both are off (two atomic loads).
    pub fn emit(
        &self,
        at: Millis,
        host: &str,
        naplet: Option<&NapletId>,
        kind: impl FnOnce() -> TraceKind,
    ) {
        if !self.tracer.enabled() && !self.watchdog.enabled() {
            return;
        }
        let kind = kind();
        if self.watchdog.enabled() {
            let id = naplet.map(|id| id.to_string());
            self.watchdog.observe(at, host, id.as_deref(), &kind);
        }
        self.tracer.emit(|| TraceEvent {
            at,
            host: host.to_string(),
            naplet: naplet.map(|id| id.to_string()),
            kind,
        });
    }

    /// Freeze everything observed so far into one exportable value.
    pub fn snapshot(&self) -> ObsSnapshot {
        ObsSnapshot {
            events: self.tracer.events(),
            metrics: self.metrics.snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_emits_only_when_enabled() {
        let sink = ObsSink::new();
        sink.emit(Millis(1), "h", None, || TraceKind::Crash);
        assert!(sink.tracer.is_empty());
        sink.enable_tracing();
        sink.emit(Millis(2), "h", None, || TraceKind::Crash);
        assert_eq!(sink.tracer.len(), 1);
    }

    #[test]
    fn sink_feeds_the_watchdog_even_with_tracing_off() {
        let sink = ObsSink::new();
        let id = NapletId::new("czxu", "home", Millis(1)).unwrap();
        sink.emit(Millis(2), "s1", Some(&id), || TraceKind::VisitEnd {
            started: Millis(1),
            epoch: 1,
            gas: 0,
            msg_bytes: 0,
        });
        assert_eq!(sink.watchdog.tracked(), 0, "disabled watchdog sees nothing");
        sink.enable_watchdog(WatchdogConfig {
            deadline_ms: 100,
            ..WatchdogConfig::default()
        });
        sink.emit(Millis(3), "s1", Some(&id), || TraceKind::VisitEnd {
            started: Millis(2),
            epoch: 1,
            gas: 0,
            msg_bytes: 0,
        });
        assert_eq!(sink.watchdog.tracked(), 1);
        assert!(sink.tracer.is_empty(), "tracing stays off independently");
        assert_eq!(sink.watchdog.check(Millis(500)).len(), 1);
    }

    #[test]
    fn sink_snapshot_carries_events_and_metrics() {
        let sink = ObsSink::new();
        sink.enable_tracing();
        let id = NapletId::new("czxu", "home", Millis(1)).unwrap();
        sink.emit(Millis(2), "home", Some(&id), || TraceKind::JourneyDone {
            status: "completed".into(),
        });
        sink.metrics.incr("done", 1);
        let snap = sink.snapshot();
        assert_eq!(snap.events.len(), 1);
        assert_eq!(
            snap.events[0].naplet.as_deref(),
            Some(id.to_string().as_str())
        );
        assert_eq!(snap.metrics.counter("done"), 1);
    }
}
