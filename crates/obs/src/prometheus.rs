//! Prometheus text exposition (version 0.0.4) for a
//! [`MetricsSnapshot`].
//!
//! The renderer is a pure function of the snapshot: metric families
//! come out in `BTreeMap` order (counters, then gauges, then
//! histograms, each alphabetical), every family carries `# HELP` and
//! `# TYPE` lines, and nothing reads a clock — so two snapshots of
//! identical registries render byte-identical pages. CI leans on that
//! (the `status-plane` golden check diffs two seeded runs).
//!
//! Naming follows the Prometheus conventions: registry names are
//! dotted (`handoff.rtt_ms`); exposition names replace every
//! character outside `[a-zA-Z0-9_]` with `_`, prefix the `naplet_`
//! namespace, and counters gain the conventional `_total` suffix
//! (`naplet_handoff_rtt_ms_bucket`, `naplet_journeys_completed_total`).

use std::fmt::Write as _;

use crate::metrics::MetricsSnapshot;

/// Build identity stamped into the `naplet_build_info` family.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildInfo {
    /// Crate version (`CARGO_PKG_VERSION` of the embedding binary).
    pub version: String,
    /// Git commit sha, or `"unknown"` outside a stamped build.
    pub git_sha: String,
}

impl BuildInfo {
    /// The build identity of this compilation: the obs crate's version
    /// plus the `NAPLET_GIT_SHA` compile-time stamp when CI set one.
    pub fn current() -> BuildInfo {
        BuildInfo {
            version: env!("CARGO_PKG_VERSION").to_string(),
            git_sha: option_env!("NAPLET_GIT_SHA")
                .unwrap_or("unknown")
                .to_string(),
        }
    }
}

/// Escape a value for a Prometheus label position.
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Map a dotted registry name onto the Prometheus grammar:
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`, namespaced under `naplet_`.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 7);
    out.push_str("naplet_");
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() || ch == '_' {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

/// Render `snapshot` as a Prometheus text-exposition page.
///
/// Counters export as `counter` (with `_total` appended), high-water
/// gauges as `gauge`, and histograms as the standard cumulative
/// `_bucket{le="..."}` series plus `_sum` and `_count`, closing with
/// the mandatory `le="+Inf"` bucket. Output order and bytes are
/// deterministic for a given snapshot.
pub fn prometheus_text(snapshot: &MetricsSnapshot) -> String {
    render(snapshot, None)
}

/// [`prometheus_text`] plus the process-level families a daemon
/// exposes: `naplet_build_info{version,git_sha} 1`,
/// `naplet_uptime_seconds`, and the per-kind `alerts.*` counters
/// remapped onto one labeled `naplet_watchdog_alerts_total{kind="…"}`
/// family (`alerts.raised`, the cross-kind sum, stays a plain
/// counter). Still a pure function — the caller supplies the uptime,
/// which is virtual in simulation.
pub fn prometheus_text_full(
    snapshot: &MetricsSnapshot,
    build: &BuildInfo,
    uptime_seconds: u64,
) -> String {
    render(snapshot, Some((build, uptime_seconds)))
}

fn render(snapshot: &MetricsSnapshot, full: Option<(&BuildInfo, u64)>) -> String {
    let mut out = String::new();
    if let Some((build, uptime_seconds)) = full {
        let _ = writeln!(
            out,
            "# HELP naplet_build_info Build identity (value is always 1)."
        );
        let _ = writeln!(out, "# TYPE naplet_build_info gauge");
        let _ = writeln!(
            out,
            "naplet_build_info{{version=\"{}\",git_sha=\"{}\"}} 1",
            escape_label(&build.version),
            escape_label(&build.git_sha)
        );
        let _ = writeln!(
            out,
            "# HELP naplet_uptime_seconds Seconds since the exporter started."
        );
        let _ = writeln!(out, "# TYPE naplet_uptime_seconds gauge");
        let _ = writeln!(out, "naplet_uptime_seconds {uptime_seconds}");
        let kinds: Vec<(&str, u64)> = snapshot
            .counters
            .iter()
            .filter_map(|(name, &value)| {
                let kind = name.strip_prefix("alerts.")?;
                (kind != "raised").then_some((kind, value))
            })
            .collect();
        if !kinds.is_empty() {
            let _ = writeln!(
                out,
                "# HELP naplet_watchdog_alerts_total Watchdog alerts by kind."
            );
            let _ = writeln!(out, "# TYPE naplet_watchdog_alerts_total counter");
            for (kind, value) in kinds {
                let _ = writeln!(
                    out,
                    "naplet_watchdog_alerts_total{{kind=\"{}\"}} {value}",
                    escape_label(kind)
                );
            }
        }
    }
    for (name, &value) in &snapshot.counters {
        if full.is_some() && name.strip_prefix("alerts.").is_some_and(|k| k != "raised") {
            continue; // remapped onto naplet_watchdog_alerts_total above
        }
        let prom = sanitize(name);
        let _ = writeln!(out, "# HELP {prom}_total Counter `{name}`.");
        let _ = writeln!(out, "# TYPE {prom}_total counter");
        let _ = writeln!(out, "{prom}_total {value}");
    }
    for (name, &value) in &snapshot.gauges {
        let prom = sanitize(name);
        let _ = writeln!(out, "# HELP {prom} High-water gauge `{name}`.");
        let _ = writeln!(out, "# TYPE {prom} gauge");
        let _ = writeln!(out, "{prom} {value}");
    }
    for (name, h) in &snapshot.histograms {
        let prom = sanitize(name);
        let _ = writeln!(out, "# HELP {prom} Histogram `{name}`.");
        let _ = writeln!(out, "# TYPE {prom} histogram");
        let mut cumulative = 0u64;
        for (idx, &bound) in h.bounds.iter().enumerate() {
            cumulative += h.counts.get(idx).copied().unwrap_or(0);
            let _ = writeln!(out, "{prom}_bucket{{le=\"{bound}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{prom}_bucket{{le=\"+Inf\"}} {}", h.total);
        let _ = writeln!(out, "{prom}_sum {}", h.sum);
        let _ = writeln!(out, "{prom}_count {}", h.total);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{MetricsRegistry, COUNT_BOUNDS};

    #[test]
    fn names_sanitize_into_the_prometheus_grammar() {
        assert_eq!(sanitize("handoff.rtt_ms"), "naplet_handoff_rtt_ms");
        assert_eq!(sanitize("wire.sent"), "naplet_wire_sent");
        assert_eq!(sanitize("a-b c"), "naplet_a_b_c");
    }

    #[test]
    fn exposition_is_deterministic_and_typed() {
        let m = MetricsRegistry::new();
        m.incr("wire.sent", 3);
        m.incr("journeys.completed", 1);
        m.gauge_max("mailbox_depth", 4);
        m.observe("journal_records", COUNT_BOUNDS, 2);
        m.observe("journal_records", COUNT_BOUNDS, 100); // overflow
        let snap = m.snapshot();
        let a = prometheus_text(&snap);
        let b = prometheus_text(&m.snapshot());
        assert_eq!(a, b, "same registry must render byte-identical pages");

        assert!(a.contains("# TYPE naplet_wire_sent_total counter"));
        assert!(a.contains("naplet_wire_sent_total 3"));
        assert!(a.contains("# TYPE naplet_mailbox_depth gauge"));
        assert!(a.contains("naplet_mailbox_depth 4"));
        assert!(a.contains("# TYPE naplet_journal_records histogram"));
        assert!(a.contains("naplet_journal_records_sum 102"));
        assert!(a.contains("naplet_journal_records_count 2"));
        // counters render sorted: journeys.* before wire.*
        let j = a.find("naplet_journeys_completed_total").unwrap();
        let w = a.find("naplet_wire_sent_total").unwrap();
        assert!(j < w, "families must render in sorted order:\n{a}");
    }

    #[test]
    fn full_page_carries_build_info_uptime_and_labeled_alerts() {
        let m = MetricsRegistry::new();
        m.incr("alerts.raised", 3);
        m.incr("alerts.stalled", 2);
        m.incr("alerts.orphan", 1);
        m.incr("wire.sent", 9);
        let build = BuildInfo {
            version: "1.2.3".into(),
            git_sha: "abc\"def".into(),
        };
        let page = prometheus_text_full(&m.snapshot(), &build, 42);
        assert!(page.contains("naplet_build_info{version=\"1.2.3\",git_sha=\"abc\\\"def\"} 1"));
        assert!(page.contains("naplet_uptime_seconds 42"));
        assert!(page.contains("naplet_watchdog_alerts_total{kind=\"stalled\"} 2"));
        assert!(page.contains("naplet_watchdog_alerts_total{kind=\"orphan\"} 1"));
        assert!(
            !page.contains("naplet_alerts_stalled_total"),
            "per-kind counters must be remapped, not duplicated:\n{page}"
        );
        assert!(page.contains("naplet_alerts_raised_total 3"));
        assert!(page.contains("naplet_wire_sent_total 9"));
        let a = prometheus_text_full(&m.snapshot(), &build, 42);
        assert_eq!(a, page, "full page must stay deterministic");
        assert!(
            !prometheus_text(&m.snapshot()).contains("naplet_build_info"),
            "the plain page is unchanged"
        );
        assert!(!BuildInfo::current().version.is_empty());
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_close_with_inf() {
        let m = MetricsRegistry::new();
        m.observe("d", COUNT_BOUNDS, 1);
        m.observe("d", COUNT_BOUNDS, 2);
        m.observe("d", COUNT_BOUNDS, 2);
        let page = prometheus_text(&m.snapshot());
        assert!(page.contains("naplet_d_bucket{le=\"1\"} 1"));
        assert!(page.contains("naplet_d_bucket{le=\"2\"} 3"), "{page}");
        assert!(page.contains("naplet_d_bucket{le=\"64\"} 3"));
        assert!(page.contains("naplet_d_bucket{le=\"+Inf\"} 3"));
    }
}
