//! The typed trace-event stream.
//!
//! Every temporally interesting action in a naplet space — handoff
//! phases, retransmissions, journal writes, crashes, recovery replays
//! — is recorded as one [`TraceEvent`]. Causal correlation comes from
//! the event's `naplet` field (the agent id is the trace id of its
//! journey) and from the protocol keys carried by the kinds
//! (`transfer_id` pairs a `TransferReceived` at the destination with
//! the `HandoffCommit` at the origin).
//!
//! Recording is deterministic by construction: the discrete-event
//! driver processes events in a total order, servers emit synchronously
//! from their handlers, and nothing here reads a wall clock. Two
//! identical `SimRuntime` runs therefore produce identical event
//! vectors — and byte-identical exports.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use naplet_core::clock::Millis;
use naplet_core::tracectx::TraceCtx;

/// What happened (the event taxonomy). Span-like kinds carry the
/// instant the span opened; everything else is instantaneous.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceKind {
    /// Driver put a wire value on a link.
    WireSend {
        /// Destination host.
        to: String,
        /// Wire-variant label.
        label: String,
        /// Traffic-class label.
        class: String,
        /// Frame bytes (payload + framing).
        bytes: u64,
        /// 1-based send attempt.
        attempt: u32,
    },
    /// Driver delivered a wire value to a host.
    WireRecv {
        /// Sending host.
        from: String,
        /// Wire-variant label.
        label: String,
    },
    /// Driver dropped a frame (loss, outage, dead NIC).
    WireDrop {
        /// Intended destination.
        to: String,
        /// Wire-variant label.
        label: String,
    },
    /// Process crash injected at this host (volatile state wiped).
    Crash,
    /// Navigator sent the LandingRequest opening a handoff.
    LandingRequested {
        /// Destination host.
        dest: String,
        /// Origin-scoped transfer id.
        transfer_id: u64,
    },
    /// Destination navigator decided a LANDING request.
    LandingDecision {
        /// Requesting host.
        origin: String,
        /// Permit granted?
        granted: bool,
        /// Denial reason (empty on grant).
        reason: String,
    },
    /// The LandingReply reached the origin. Span: opened by the
    /// LandingRequest that this permit answers.
    PermitReceived {
        /// Destination host.
        dest: String,
        /// Transfer id.
        transfer_id: u64,
        /// Permit granted?
        granted: bool,
        /// When the request was first sent.
        started: Millis,
    },
    /// The agent transfer left the origin.
    TransferSent {
        /// Destination host.
        dest: String,
        /// Transfer id.
        transfer_id: u64,
    },
    /// A Transfer frame reached the destination.
    TransferReceived {
        /// Origin host.
        origin: String,
        /// Transfer id.
        transfer_id: u64,
        /// Already admitted (retransmission re-acked, not re-admitted)?
        duplicate: bool,
    },
    /// The TransferAck committed the handoff at the origin. Span:
    /// covers the whole acknowledged handoff from its LandingRequest.
    HandoffCommit {
        /// Destination host.
        dest: String,
        /// Transfer id.
        transfer_id: u64,
        /// When the handoff opened (LandingRequest sent).
        started: Millis,
        /// Attempts the current phase took.
        attempts: u32,
    },
    /// An acknowledgement timer expired with retries left: the current
    /// phase's frame was re-sent. `attempt` is the new (≥ 2) attempt.
    Retransmit {
        /// Destination host.
        dest: String,
        /// Transfer id.
        transfer_id: u64,
        /// New 1-based attempt number (always ≥ 2).
        attempt: u32,
        /// Which phase retried (`permit` or `transfer`).
        phase: String,
    },
    /// Retry budget exhausted; the itinerary rewinds and re-decides.
    HandoffFailed {
        /// Unreachable destination.
        dest: String,
        /// Transfer id.
        transfer_id: u64,
        /// Attempts performed.
        attempts: u32,
        /// Failure reason.
        reason: String,
    },
    /// No fallback for a failed migration: the agent parked here.
    Parked {
        /// The unreachable destination.
        dest: String,
        /// Attempts performed.
        attempts: u32,
    },
    /// Arrival registered; execution gated until the directory acks.
    RegisterGated {
        /// Directory holder being waited on.
        holder: String,
    },
    /// The registration gate opened (DirAck, or forced after the retry
    /// budget). Span: covers the wait since arrival.
    RegisterAcked {
        /// When the gate closed (arrival admitted).
        started: Millis,
        /// Gate forced open after unacked retries?
        forced: bool,
    },
    /// A visit ended (departure recorded). Span: covers the dwell.
    VisitEnd {
        /// Arrival instant at this host.
        started: Millis,
        /// Navigation-log visit epoch of the finished visit.
        epoch: u64,
        /// CPU gas the visit consumed.
        gas: u64,
        /// Message bytes the visit posted.
        msg_bytes: u64,
    },
    /// The journey ended at this server.
    JourneyDone {
        /// Terminal status label.
        status: String,
    },
    /// The post office forwarded a chasing message one hop.
    ForwardHop {
        /// Next hop.
        to: String,
        /// Message sequence number.
        seq: u64,
        /// Forwarding hops performed so far.
        hops: u32,
    },
    /// A post-office redelivery timer re-routed an unconfirmed message.
    PostRedeliver {
        /// Message sequence number.
        seq: u64,
        /// New 1-based attempt number (always ≥ 2).
        attempt: u32,
    },
    /// A snapshot was appended to the write-ahead journal.
    JournalAppend {
        /// Journal phase label (`in-flight`, `resident`, `parked`).
        phase: String,
        /// Journal records after the append.
        records: u64,
    },
    /// A journal record was retired (handoff committed / journey done).
    JournalRetire {
        /// Journal records after the retire.
        records: u64,
    },
    /// Recovery replayed one journaled naplet.
    RecoveryReplayed {
        /// What the journal showed (`parked`, `resident-applied`,
        /// `resident-rerun`, `in-flight`).
        phase: String,
    },
    /// Recovery replay finished at a restarted server.
    RecoveryDone {
        /// Naplets rehydrated from the journal.
        rehydrated: u64,
        /// Visit replays suppressed by the epoch ratchet.
        suppressed: u64,
        /// In-flight handoffs re-driven.
        resumed: u64,
    },
    /// A home-side lease expired without a sign of life.
    LeaseExpired {
        /// Was the orphan re-dispatched from its creation record?
        redispatched: bool,
    },
    /// Watchdog alert: a journey emitted no progress event within its
    /// deadline. The host field of the event is the journey's
    /// last-known location.
    StalledJourney {
        /// Last host a progress event was observed at.
        last_host: String,
        /// Time since the last progress event, ms.
        idle_ms: u64,
        /// The configured progress deadline, ms.
        deadline_ms: u64,
    },
    /// Watchdog alert: a journey stalled while its last progress event
    /// was departure-side (landing requested / transfer in flight), so
    /// the agent may be orphaned between hosts.
    OrphanSuspected {
        /// Host the agent was last seen departing from.
        last_host: String,
        /// Time since the last progress event, ms.
        idle_ms: u64,
    },
    /// Watchdog alert: a server's mailbox depth crossed the
    /// configured backlog threshold.
    MailboxBacklog {
        /// Observed mailbox depth (ordinary + special).
        depth: u64,
        /// The configured threshold.
        threshold: u64,
    },
    /// Watchdog alert: a server's write-ahead journal held too many
    /// un-retired entries at sweep time.
    JournalLagHigh {
        /// Un-retired journal entries.
        entries: u64,
        /// Bytes held by those entries.
        bytes: u64,
        /// The configured entry threshold.
        threshold: u64,
    },
    /// A directory replica started an election campaign.
    ReplElection {
        /// The campaign term.
        term: u64,
    },
    /// A directory replica learned (or became) the leader of a term.
    ReplLeader {
        /// The term.
        term: u64,
        /// The leader's host name.
        leader: String,
    },
    /// A replicated directory operation committed (majority ack).
    ReplCommit {
        /// The committed log index.
        index: u64,
        /// Short label of the operation (`register`, `remove`, `noop`).
        op: String,
    },
    /// A rejoining replica installed a full state snapshot.
    ReplSnapshot {
        /// Last log index the snapshot covers.
        index: u64,
    },
}

impl TraceKind {
    /// Stable display name (Chrome trace event name).
    pub fn name(&self) -> &'static str {
        match self {
            TraceKind::WireSend { .. } => "wire.send",
            TraceKind::WireRecv { .. } => "wire.recv",
            TraceKind::WireDrop { .. } => "wire.drop",
            TraceKind::Crash => "crash",
            TraceKind::LandingRequested { .. } => "landing.request",
            TraceKind::LandingDecision { .. } => "landing.decision",
            TraceKind::PermitReceived { .. } => "landing.permit",
            TraceKind::TransferSent { .. } => "transfer.sent",
            TraceKind::TransferReceived { .. } => "transfer.recv",
            TraceKind::HandoffCommit { .. } => "handoff.commit",
            TraceKind::Retransmit { .. } => "handoff.retransmit",
            TraceKind::HandoffFailed { .. } => "handoff.failed",
            TraceKind::Parked { .. } => "handoff.parked",
            TraceKind::RegisterGated { .. } => "register.gated",
            TraceKind::RegisterAcked { .. } => "register.acked",
            TraceKind::VisitEnd { .. } => "visit",
            TraceKind::JourneyDone { .. } => "journey.done",
            TraceKind::ForwardHop { .. } => "post.forward",
            TraceKind::PostRedeliver { .. } => "post.redeliver",
            TraceKind::JournalAppend { .. } => "journal.append",
            TraceKind::JournalRetire { .. } => "journal.retire",
            TraceKind::RecoveryReplayed { .. } => "recovery.replay",
            TraceKind::RecoveryDone { .. } => "recovery.done",
            TraceKind::LeaseExpired { .. } => "lease.expired",
            TraceKind::StalledJourney { .. } => "alert.stalled",
            TraceKind::OrphanSuspected { .. } => "alert.orphan",
            TraceKind::MailboxBacklog { .. } => "alert.mailbox",
            TraceKind::JournalLagHigh { .. } => "alert.journal",
            TraceKind::ReplElection { .. } => "repl.election",
            TraceKind::ReplLeader { .. } => "repl.leader",
            TraceKind::ReplCommit { .. } => "repl.commit",
            TraceKind::ReplSnapshot { .. } => "repl.snapshot",
        }
    }

    /// Is this kind a watchdog alert? Alerts are operational signals
    /// (something needs attention *now*), distinct from the journey
    /// narration the rest of the taxonomy records.
    pub fn is_alert(&self) -> bool {
        matches!(
            self,
            TraceKind::StalledJourney { .. }
                | TraceKind::OrphanSuspected { .. }
                | TraceKind::MailboxBacklog { .. }
                | TraceKind::JournalLagHigh { .. }
        )
    }

    /// For span-like kinds, the instant the span opened. Exporters
    /// render these as complete (`"X"`) events with a duration.
    pub fn span_start(&self) -> Option<Millis> {
        match self {
            TraceKind::PermitReceived { started, .. }
            | TraceKind::HandoffCommit { started, .. }
            | TraceKind::RegisterAcked { started, .. }
            | TraceKind::VisitEnd { started, .. } => Some(*started),
            _ => None,
        }
    }

    /// Flat `(key, value)` argument view for exporters; keys are stable
    /// and values pre-rendered so export needs no per-kind logic.
    pub fn args(&self) -> Vec<(&'static str, ArgValue)> {
        use ArgValue::{Bool, Int, Str};
        match self {
            TraceKind::WireSend {
                to,
                label,
                class,
                bytes,
                attempt,
            } => vec![
                ("to", Str(to.clone())),
                ("label", Str(label.clone())),
                ("class", Str(class.clone())),
                ("bytes", Int(*bytes)),
                ("attempt", Int(u64::from(*attempt))),
            ],
            TraceKind::WireRecv { from, label } => {
                vec![("from", Str(from.clone())), ("label", Str(label.clone()))]
            }
            TraceKind::WireDrop { to, label } => {
                vec![("to", Str(to.clone())), ("label", Str(label.clone()))]
            }
            TraceKind::Crash => Vec::new(),
            TraceKind::LandingRequested { dest, transfer_id } => vec![
                ("dest", Str(dest.clone())),
                ("transfer_id", Int(*transfer_id)),
            ],
            TraceKind::LandingDecision {
                origin,
                granted,
                reason,
            } => vec![
                ("origin", Str(origin.clone())),
                ("granted", Bool(*granted)),
                ("reason", Str(reason.clone())),
            ],
            TraceKind::PermitReceived {
                dest,
                transfer_id,
                granted,
                ..
            } => vec![
                ("dest", Str(dest.clone())),
                ("transfer_id", Int(*transfer_id)),
                ("granted", Bool(*granted)),
            ],
            TraceKind::TransferSent { dest, transfer_id } => vec![
                ("dest", Str(dest.clone())),
                ("transfer_id", Int(*transfer_id)),
            ],
            TraceKind::TransferReceived {
                origin,
                transfer_id,
                duplicate,
            } => vec![
                ("origin", Str(origin.clone())),
                ("transfer_id", Int(*transfer_id)),
                ("duplicate", Bool(*duplicate)),
            ],
            TraceKind::HandoffCommit {
                dest,
                transfer_id,
                attempts,
                ..
            } => vec![
                ("dest", Str(dest.clone())),
                ("transfer_id", Int(*transfer_id)),
                ("attempts", Int(u64::from(*attempts))),
            ],
            TraceKind::Retransmit {
                dest,
                transfer_id,
                attempt,
                phase,
            } => vec![
                ("dest", Str(dest.clone())),
                ("transfer_id", Int(*transfer_id)),
                ("attempt", Int(u64::from(*attempt))),
                ("phase", Str(phase.clone())),
            ],
            TraceKind::HandoffFailed {
                dest,
                transfer_id,
                attempts,
                reason,
            } => vec![
                ("dest", Str(dest.clone())),
                ("transfer_id", Int(*transfer_id)),
                ("attempts", Int(u64::from(*attempts))),
                ("reason", Str(reason.clone())),
            ],
            TraceKind::Parked { dest, attempts } => vec![
                ("dest", Str(dest.clone())),
                ("attempts", Int(u64::from(*attempts))),
            ],
            TraceKind::RegisterGated { holder } => vec![("holder", Str(holder.clone()))],
            TraceKind::RegisterAcked { forced, .. } => vec![("forced", Bool(*forced))],
            TraceKind::VisitEnd {
                epoch,
                gas,
                msg_bytes,
                ..
            } => vec![
                ("epoch", Int(*epoch)),
                ("gas", Int(*gas)),
                ("msg_bytes", Int(*msg_bytes)),
            ],
            TraceKind::JourneyDone { status } => vec![("status", Str(status.clone()))],
            TraceKind::ForwardHop { to, seq, hops } => vec![
                ("to", Str(to.clone())),
                ("seq", Int(*seq)),
                ("hops", Int(u64::from(*hops))),
            ],
            TraceKind::PostRedeliver { seq, attempt } => {
                vec![("seq", Int(*seq)), ("attempt", Int(u64::from(*attempt)))]
            }
            TraceKind::JournalAppend { phase, records } => {
                vec![("phase", Str(phase.clone())), ("records", Int(*records))]
            }
            TraceKind::JournalRetire { records } => vec![("records", Int(*records))],
            TraceKind::RecoveryReplayed { phase } => vec![("phase", Str(phase.clone()))],
            TraceKind::RecoveryDone {
                rehydrated,
                suppressed,
                resumed,
            } => vec![
                ("rehydrated", Int(*rehydrated)),
                ("suppressed", Int(*suppressed)),
                ("resumed", Int(*resumed)),
            ],
            TraceKind::LeaseExpired { redispatched } => {
                vec![("redispatched", Bool(*redispatched))]
            }
            TraceKind::StalledJourney {
                last_host,
                idle_ms,
                deadline_ms,
            } => vec![
                ("last_host", Str(last_host.clone())),
                ("idle_ms", Int(*idle_ms)),
                ("deadline_ms", Int(*deadline_ms)),
            ],
            TraceKind::OrphanSuspected { last_host, idle_ms } => vec![
                ("last_host", Str(last_host.clone())),
                ("idle_ms", Int(*idle_ms)),
            ],
            TraceKind::MailboxBacklog { depth, threshold } => {
                vec![("depth", Int(*depth)), ("threshold", Int(*threshold))]
            }
            TraceKind::JournalLagHigh {
                entries,
                bytes,
                threshold,
            } => vec![
                ("entries", Int(*entries)),
                ("bytes", Int(*bytes)),
                ("threshold", Int(*threshold)),
            ],
            TraceKind::ReplElection { term } => vec![("term", Int(*term))],
            TraceKind::ReplLeader { term, leader } => {
                vec![("term", Int(*term)), ("leader", Str(leader.clone()))]
            }
            TraceKind::ReplCommit { index, op } => {
                vec![("index", Int(*index)), ("op", Str(op.clone()))]
            }
            TraceKind::ReplSnapshot { index } => vec![("index", Int(*index))],
        }
    }
}

/// A pre-rendered argument value for exporters.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// String argument.
    Str(String),
    /// Unsigned integer argument.
    Int(u64),
    /// Boolean argument.
    Bool(bool),
}

/// One recorded observation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Virtual time of the event (for spans: the closing instant).
    pub at: Millis,
    /// Host the event happened at.
    pub host: String,
    /// The agent the event concerns (its id string doubles as the
    /// journey's trace id); `None` for host-level events.
    pub naplet: Option<String>,
    /// Wire-propagated causal context, present on wire-level events of
    /// a context-carrying journey. `(journey, seq, sending host)`
    /// pairs a `wire.recv` at one node with the `wire.send` at another
    /// when traces from different daemons are merged.
    pub ctx: Option<TraceCtx>,
    /// What happened.
    pub kind: TraceKind,
}

#[derive(Default)]
struct TracerInner {
    enabled: AtomicBool,
    events: Mutex<Vec<TraceEvent>>,
}

/// Clone-shared recorder of [`TraceEvent`]s. Disabled by default:
/// when off, [`Tracer::emit`] never evaluates the event constructor,
/// so production/bench paths pay one atomic load per call site.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Tracer {
    /// A fresh, disabled tracer.
    pub fn new() -> Tracer {
        Tracer::default()
    }

    /// Is recording on?
    pub fn enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Turn recording on or off.
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::Relaxed);
    }

    /// Record one event; `make` runs only when recording is on.
    pub fn emit(&self, make: impl FnOnce() -> TraceEvent) {
        if self.enabled() {
            self.inner.events.lock().push(make());
        }
    }

    /// Record an already-built event (no-op while disabled). Callers
    /// that share one constructed event between consumers (tracer +
    /// flight recorder) use this instead of [`Tracer::emit`].
    pub fn push(&self, event: TraceEvent) {
        if self.enabled() {
            self.inner.events.lock().push(event);
        }
    }

    /// Copy of every recorded event, in recording order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.events.lock().clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.inner.events.lock().len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every recorded event.
    pub fn clear(&self) {
        self.inner.events.lock().clear();
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled())
            .field("events", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            at: Millis(at),
            host: "h".into(),
            naplet: None,
            ctx: None,
            kind,
        }
    }

    #[test]
    fn disabled_tracer_records_nothing_and_skips_construction() {
        let t = Tracer::new();
        let mut built = false;
        t.emit(|| {
            built = true;
            ev(1, TraceKind::Crash)
        });
        assert!(!built, "constructor must not run while disabled");
        assert!(t.is_empty());
    }

    #[test]
    fn enabled_tracer_records_in_order_and_shares_across_clones() {
        let t = Tracer::new();
        t.set_enabled(true);
        let t2 = t.clone();
        t.emit(|| ev(1, TraceKind::Crash));
        t2.emit(|| {
            ev(
                2,
                TraceKind::JourneyDone {
                    status: "completed".into(),
                },
            )
        });
        let events = t.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].at, Millis(1));
        assert_eq!(events[1].at, Millis(2));
        t.clear();
        assert!(t2.is_empty());
    }

    #[test]
    fn span_kinds_expose_their_start() {
        let k = TraceKind::VisitEnd {
            started: Millis(7),
            epoch: 1,
            gas: 10,
            msg_bytes: 0,
        };
        assert_eq!(k.span_start(), Some(Millis(7)));
        assert_eq!(TraceKind::Crash.span_start(), None);
    }

    #[test]
    fn names_are_unique() {
        let kinds = [
            TraceKind::Crash,
            TraceKind::JourneyDone { status: "x".into() },
            TraceKind::JournalRetire { records: 0 },
            TraceKind::LeaseExpired {
                redispatched: false,
            },
            TraceKind::StalledJourney {
                last_host: "h".into(),
                idle_ms: 1,
                deadline_ms: 1,
            },
            TraceKind::OrphanSuspected {
                last_host: "h".into(),
                idle_ms: 1,
            },
            TraceKind::MailboxBacklog {
                depth: 1,
                threshold: 1,
            },
            TraceKind::JournalLagHigh {
                entries: 1,
                bytes: 1,
                threshold: 1,
            },
        ];
        let mut names: Vec<&str> = kinds.iter().map(|k| k.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), kinds.len());
    }

    #[test]
    fn alert_kinds_are_instant_and_flagged() {
        let alerts = [
            TraceKind::StalledJourney {
                last_host: "s1".into(),
                idle_ms: 250,
                deadline_ms: 200,
            },
            TraceKind::OrphanSuspected {
                last_host: "s1".into(),
                idle_ms: 250,
            },
            TraceKind::MailboxBacklog {
                depth: 40,
                threshold: 32,
            },
            TraceKind::JournalLagHigh {
                entries: 70,
                bytes: 9_000,
                threshold: 64,
            },
        ];
        for kind in alerts {
            assert!(kind.is_alert(), "{} must be an alert", kind.name());
            assert!(kind.span_start().is_none(), "alerts are instants");
            assert!(kind.name().starts_with("alert."));
        }
        assert!(!TraceKind::Crash.is_alert());
    }

    #[test]
    fn event_codec_round_trip() {
        let mut e = ev(
            9,
            TraceKind::HandoffCommit {
                dest: "s1".into(),
                transfer_id: 3,
                started: Millis(2),
                attempts: 2,
            },
        );
        e.ctx = Some(TraceCtx {
            journey: "naplet://u@h/1".into(),
            origin: "h".into(),
            hop: 2,
            seq: 11,
        });
        let bytes = naplet_core::codec::to_bytes(&e).unwrap();
        let back: TraceEvent = naplet_core::codec::from_bytes(&bytes).unwrap();
        assert_eq!(back, e);
    }
}
