//! Counters and fixed-bucket histograms.
//!
//! The registry is string-keyed and deliberately simple: a counter is
//! a `u64`, a histogram is a fixed set of upper bounds plus an
//! overflow bucket. Everything lives behind `BTreeMap`s so snapshots
//! iterate in one deterministic order regardless of insertion order —
//! the text tables and serde snapshot are byte-stable across runs.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Millisecond bounds suitable for latencies in the simulated space:
/// clean handoffs land in the ≤ 10/20 ms buckets, backoff retries in
/// the ≥ 200 ms ones.
pub const LATENCY_BOUNDS_MS: &[u64] = &[
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000,
];

/// Small-count bounds (retry attempts, queue depths, journal sizes).
pub const COUNT_BOUNDS: &[u64] = &[1, 2, 3, 4, 5, 8, 12, 16, 24, 32, 64];

/// Microsecond bounds for wall-clock hot-path profiling (handler and
/// journal latencies): protocol steps are typically single-digit µs,
/// fsync-class work lands in the ms-range tail.
pub const HANDLER_BOUNDS_US: &[u64] = &[
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 50_000, 100_000,
];

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Histogram {
    bounds: Vec<u64>,
    /// One count per bound, plus a trailing overflow bucket.
    counts: Vec<u64>,
    total: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    fn new(bounds: &[u64]) -> Histogram {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn observe(&mut self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    gauges: BTreeMap<String, u64>,
}

/// Clone-shared registry of counters, max-gauges, and histograms.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<RegistryInner>>,
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Add `by` to counter `name` (created at zero on first use).
    pub fn incr(&self, name: &str, by: u64) {
        let mut inner = self.inner.lock();
        *inner.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Record `value` into histogram `name`, creating it with `bounds`
    /// on first use (later calls keep the original bounds).
    pub fn observe(&self, name: &str, bounds: &[u64], value: u64) {
        let mut inner = self.inner.lock();
        inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .observe(value);
    }

    /// Raise max-gauge `name` to `value` if it is higher (high-water
    /// marks for queue depths).
    pub fn gauge_max(&self, name: &str, value: u64) {
        let mut inner = self.inner.lock();
        let g = inner.gauges.entry(name.to_string()).or_insert(0);
        *g = (*g).max(value);
    }

    /// Current value of counter `name` (zero if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock();
        MetricsSnapshot {
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            histograms: inner
                .histograms
                .iter()
                .map(|(name, h)| {
                    (
                        name.clone(),
                        HistogramSnapshot {
                            bounds: h.bounds.clone(),
                            counts: h.counts.clone(),
                            total: h.total,
                            sum: h.sum,
                            min: if h.total == 0 { 0 } else { h.min },
                            max: h.max,
                        },
                    )
                })
                .collect(),
        }
    }

    /// Drop every metric.
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.counters.clear();
        inner.histograms.clear();
        inner.gauges.clear();
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("MetricsRegistry")
            .field("counters", &inner.counters.len())
            .field("histograms", &inner.histograms.len())
            .field("gauges", &inner.gauges.len())
            .finish()
    }
}

/// Frozen copy of one histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds (inclusive); a final overflow bucket
    /// follows the last bound.
    pub bounds: Vec<u64>,
    /// Per-bucket counts, `bounds.len() + 1` long.
    pub counts: Vec<u64>,
    /// Total observations.
    pub total: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean of the observed values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Index of the highest bucket holding at least one observation;
    /// `None` when empty. `bounds.len()` means the overflow bucket.
    pub fn highest_nonzero_bucket(&self) -> Option<usize> {
        self.counts.iter().rposition(|&c| c > 0)
    }

    /// Bucketed quantile estimate: the upper bound of the bucket in
    /// which the `q`-quantile observation falls (`q` in `0.0..=1.0`;
    /// out-of-range values clamp). Bench reporting (p50/p95/p99) reads
    /// latencies through this, so the resolution is the bucket grid —
    /// deterministic and conservative (never under-reports).
    ///
    /// Edge cases, all documented and tested:
    /// - **empty histogram** → `0` for every `q` (there is no
    ///   observation to bound);
    /// - **`q = 0.0`** → the upper bound of the first non-empty bucket
    ///   (the rank clamps to 1, i.e. the smallest observation's
    ///   bucket);
    /// - **mass in the overflow bucket** → the exact recorded `max`,
    ///   not a fabricated bound — an all-overflow histogram answers
    ///   `max` for every `q`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return if idx < self.bounds.len() {
                    self.bounds[idx]
                } else {
                    self.max
                };
            }
        }
        self.max
    }

    /// Upper bound of bucket `idx` rendered for humans.
    pub fn bucket_label(&self, idx: usize) -> String {
        if idx < self.bounds.len() {
            format!("<= {}", self.bounds[idx])
        } else {
            format!("> {}", self.bounds.last().copied().unwrap_or(0))
        }
    }
}

/// Frozen copy of every metric, ready for export.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Monotonic counters, sorted by name.
    pub counters: BTreeMap<String, u64>,
    /// High-water-mark gauges, sorted by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histograms, sorted by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Per-interval view: everything accumulated since `earlier`.
    ///
    /// Counters, gauges, and histogram counts/totals/sums subtract
    /// saturating — a metric absent from `earlier` contributes its
    /// full value; a metric that shrank (registry cleared between
    /// snapshots) contributes zero, never wraps. Histogram `min`/`max`
    /// are not recoverable per-interval from cumulative buckets, so a
    /// delta with surviving observations keeps the later snapshot's
    /// values and an empty delta reports 0/0 — which makes
    /// `snap.diff(&snap)` all-zero everywhere. `figures watch` and the
    /// CI perf job render rates from this instead of cumulative
    /// totals.
    pub fn diff(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let counters = self
            .counters
            .iter()
            .map(|(name, &v)| {
                let before = earlier.counters.get(name).copied().unwrap_or(0);
                (name.clone(), v.saturating_sub(before))
            })
            .collect();
        let gauges = self
            .gauges
            .iter()
            .map(|(name, &v)| {
                let before = earlier.gauges.get(name).copied().unwrap_or(0);
                (name.clone(), v.saturating_sub(before))
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(name, h)| {
                let delta = match earlier.histograms.get(name) {
                    Some(e) if e.bounds == h.bounds => {
                        let counts = h
                            .counts
                            .iter()
                            .zip(&e.counts)
                            .map(|(&a, &b)| a.saturating_sub(b))
                            .collect();
                        let total = h.total.saturating_sub(e.total);
                        HistogramSnapshot {
                            bounds: h.bounds.clone(),
                            counts,
                            total,
                            sum: h.sum.saturating_sub(e.sum),
                            min: if total == 0 { 0 } else { h.min },
                            max: if total == 0 { 0 } else { h.max },
                        }
                    }
                    // unseen (or re-bucketed) histogram: the whole
                    // thing is new this interval
                    _ => h.clone(),
                };
                (name.clone(), delta)
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Counter by name (zero if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Plain-text tables (counters, gauges, then one table per
    /// histogram) for the `figures` binary and EXPERIMENTS.md.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters\n");
            let width = self.counters.keys().map(|k| k.len()).max().unwrap_or(0);
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name:<width$}  {v}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges (high-water)\n");
            let width = self.gauges.keys().map(|k| k.len()).max().unwrap_or(0);
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "  {name:<width$}  {v}");
            }
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "histogram {name}: n={} min={} mean={:.1} max={}",
                h.total,
                h.min,
                h.mean(),
                h.max
            );
            for (idx, &count) in h.counts.iter().enumerate() {
                if count > 0 {
                    let _ = writeln!(out, "  {:>10}  {count}", h.bucket_label(idx));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let m = MetricsRegistry::new();
        assert_eq!(m.counter("x"), 0);
        m.incr("x", 2);
        m.incr("x", 3);
        assert_eq!(m.counter("x"), 5);
    }

    #[test]
    fn histogram_buckets_split_clean_from_retried_latencies() {
        let m = MetricsRegistry::new();
        m.observe("rtt", LATENCY_BOUNDS_MS, 9); // clean handoff
        m.observe("rtt", LATENCY_BOUNDS_MS, 210); // one backoff later
        let snap = m.snapshot();
        let h = snap.histogram("rtt").unwrap();
        assert_eq!(h.total, 2);
        assert_eq!(h.min, 9);
        assert_eq!(h.max, 210);
        // 9 ≤ 10 → bucket 3; 210 ≤ 500 → bucket 8
        assert_eq!(h.counts[3], 1);
        assert_eq!(h.counts[8], 1);
        assert_eq!(h.highest_nonzero_bucket(), Some(8));
    }

    #[test]
    fn histogram_overflow_bucket_catches_everything_above_the_last_bound() {
        let m = MetricsRegistry::new();
        m.observe("d", COUNT_BOUNDS, 1_000);
        let snap = m.snapshot();
        let h = snap.histogram("d").unwrap();
        assert_eq!(h.counts[COUNT_BOUNDS.len()], 1);
        assert_eq!(h.highest_nonzero_bucket(), Some(COUNT_BOUNDS.len()));
        assert!(h.bucket_label(COUNT_BOUNDS.len()).starts_with("> "));
    }

    #[test]
    fn quantiles_walk_the_bucket_grid() {
        let m = MetricsRegistry::new();
        // 90 fast (≤5ms), 9 slow (≤500ms), 1 in overflow (max 20s)
        for _ in 0..90 {
            m.observe("lat", LATENCY_BOUNDS_MS, 4);
        }
        for _ in 0..9 {
            m.observe("lat", LATENCY_BOUNDS_MS, 400);
        }
        m.observe("lat", LATENCY_BOUNDS_MS, 20_000);
        let snap = m.snapshot();
        let h = snap.histogram("lat").unwrap();
        assert_eq!(h.quantile(0.5), 5);
        assert_eq!(h.quantile(0.95), 500);
        // p99 = 99th of 100 observations: still the ≤500 bucket
        assert_eq!(h.quantile(0.99), 500);
        // p100 lands in the overflow bucket → exact max
        assert_eq!(h.quantile(1.0), 20_000);
        let empty = HistogramSnapshot {
            bounds: LATENCY_BOUNDS_MS.to_vec(),
            counts: vec![0; LATENCY_BOUNDS_MS.len() + 1],
            total: 0,
            sum: 0,
            min: 0,
            max: 0,
        };
        assert_eq!(empty.quantile(0.5), 0);
    }

    #[test]
    fn quantile_edge_cases_are_pinned() {
        // empty histogram: 0 for every q, including the extremes
        let empty = HistogramSnapshot {
            bounds: LATENCY_BOUNDS_MS.to_vec(),
            counts: vec![0; LATENCY_BOUNDS_MS.len() + 1],
            total: 0,
            sum: 0,
            min: 0,
            max: 0,
        };
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(empty.quantile(q), 0, "empty histogram at q={q}");
        }

        // q=0.0 clamps to rank 1: the first non-empty bucket's bound
        let m = MetricsRegistry::new();
        m.observe("lat", LATENCY_BOUNDS_MS, 4); // bucket "<= 5"
        m.observe("lat", LATENCY_BOUNDS_MS, 400); // bucket "<= 500"
        let snap = m.snapshot();
        let h = snap.histogram("lat").unwrap();
        assert_eq!(h.quantile(0.0), 5);
        assert_eq!(h.quantile(0.5), 5);
        assert_eq!(h.quantile(1.0), 500);

        // all observations in the overflow bucket: every quantile
        // answers the exact recorded max, not a fabricated bound
        let m = MetricsRegistry::new();
        m.observe("big", COUNT_BOUNDS, 500);
        m.observe("big", COUNT_BOUNDS, 700);
        let snap = m.snapshot();
        let h = snap.histogram("big").unwrap();
        assert_eq!(h.counts[COUNT_BOUNDS.len()], 2, "all mass in overflow");
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.quantile(q), 700, "all-overflow histogram at q={q}");
        }

        // out-of-range q clamps rather than panicking
        assert_eq!(h.quantile(-1.0), h.quantile(0.0));
        assert_eq!(h.quantile(2.0), h.quantile(1.0));
    }

    #[test]
    fn diff_of_a_snapshot_with_itself_is_all_zero() {
        let m = MetricsRegistry::new();
        m.incr("c", 7);
        m.gauge_max("g", 5);
        m.observe("h", COUNT_BOUNDS, 2);
        m.observe("h", COUNT_BOUNDS, 90); // overflow mass too
        let snap = m.snapshot();
        let zero = snap.diff(&snap);
        assert!(zero.counters.values().all(|&v| v == 0), "{zero:?}");
        assert!(zero.gauges.values().all(|&v| v == 0), "{zero:?}");
        for (name, h) in &zero.histograms {
            assert!(h.counts.iter().all(|&c| c == 0), "{name}: {h:?}");
            assert_eq!((h.total, h.sum, h.min, h.max), (0, 0, 0, 0), "{name}");
        }
    }

    #[test]
    fn diff_reports_only_the_interval() {
        let m = MetricsRegistry::new();
        m.incr("c", 3);
        m.observe("h", COUNT_BOUNDS, 2);
        let before = m.snapshot();
        m.incr("c", 4);
        m.incr("new", 1);
        m.observe("h", COUNT_BOUNDS, 10);
        let after = m.snapshot();
        let delta = after.diff(&before);
        assert_eq!(delta.counter("c"), 4);
        assert_eq!(delta.counter("new"), 1, "unseen counter counts in full");
        let h = delta.histogram("h").unwrap();
        assert_eq!(h.total, 1, "one new observation this interval");
        assert_eq!(h.sum, 10);
        // saturating: a cleared registry never wraps
        let wrapped = before.diff(&after);
        assert_eq!(wrapped.counter("c"), 0);
    }

    #[test]
    fn gauge_max_keeps_the_high_water_mark() {
        let m = MetricsRegistry::new();
        m.gauge_max("depth", 3);
        m.gauge_max("depth", 1);
        assert_eq!(m.snapshot().gauges["depth"], 3);
    }

    #[test]
    fn snapshot_renders_deterministic_text() {
        let m = MetricsRegistry::new();
        // insertion order b-then-a must not leak into the rendering
        m.incr("b.second", 1);
        m.incr("a.first", 1);
        m.observe("lat", LATENCY_BOUNDS_MS, 4);
        let a = m.snapshot().render_text();
        let b = m.snapshot().render_text();
        assert_eq!(a, b);
        let first = a.find("a.first").unwrap();
        let second = a.find("b.second").unwrap();
        assert!(first < second, "names must render sorted:\n{a}");
        assert!(a.contains("histogram lat: n=1 min=4 mean=4.0 max=4"));
    }

    #[test]
    fn snapshot_codec_round_trip() {
        let m = MetricsRegistry::new();
        m.incr("c", 7);
        m.observe("h", COUNT_BOUNDS, 2);
        m.gauge_max("g", 5);
        let snap = m.snapshot();
        let bytes = naplet_core::codec::to_bytes(&snap).unwrap();
        let back: MetricsSnapshot = naplet_core::codec::from_bytes(&bytes).unwrap();
        assert_eq!(back, snap);
    }
}
