//! The per-daemon flight recorder: a black box of recent trace
//! events.
//!
//! The [`crate::Tracer`] keeps *everything* and is therefore opt-in
//! and test/bench-oriented; the [`FlightRecorder`] keeps only the last
//! `capacity` events in a [`Ring`] and is cheap enough for a daemon to
//! leave on permanently. `napletd` dumps it to a file on SIGUSR1, on
//! clean shutdown, and from a panic hook — a crash always leaves
//! evidence. Remote readers page it out over the privileged status
//! protocol as [`TraceSegment`]s, which `figures cluster-trace`
//! stitches into one merged timeline.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::ring::Ring;
use crate::trace::TraceEvent;

/// Default ring capacity a daemon enables the recorder with.
pub const DEFAULT_RECORDER_CAPACITY: usize = 4096;

/// One paged-out slice of a node's flight recorder, self-describing
/// enough for a remote merger: `start_seq`/`next_seq` are absolute
/// event sequences (see [`Ring::page`]), `total`/`dropped` tell the
/// reader whether the record is complete, and `epoch_unix_ms` anchors
/// the node's event clock to the shared UNIX timeline (0 for
/// virtual-time sources, whose clocks already agree).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TraceSegment {
    /// Node the segment came from.
    pub host: String,
    /// Absolute sequence of `events[0]` (equals `next_seq` when empty).
    pub start_seq: u64,
    /// Absolute sequence one past the last returned event; poll again
    /// from here.
    pub next_seq: u64,
    /// Total events ever recorded at the node.
    pub total: u64,
    /// Events evicted from the ring (a non-zero value means the
    /// retained record is truncated at the front).
    pub dropped: u64,
    /// UNIX ms corresponding to the node's event-clock zero.
    pub epoch_unix_ms: u64,
    /// The events, oldest first.
    pub events: Vec<TraceEvent>,
}

struct RecorderInner {
    enabled: AtomicBool,
    epoch_unix_ms: AtomicU64,
    ring: Mutex<Ring<TraceEvent>>,
}

/// Clone-shared bounded recorder of recent [`TraceEvent`]s. Disabled
/// by default; when off, [`FlightRecorder::record`] is one atomic
/// load.
#[derive(Clone)]
pub struct FlightRecorder {
    inner: Arc<RecorderInner>,
}

impl Default for FlightRecorder {
    fn default() -> FlightRecorder {
        FlightRecorder {
            inner: Arc::new(RecorderInner {
                enabled: AtomicBool::new(false),
                epoch_unix_ms: AtomicU64::new(0),
                ring: Mutex::new(Ring::with_capacity(DEFAULT_RECORDER_CAPACITY)),
            }),
        }
    }
}

impl FlightRecorder {
    /// A fresh, disabled recorder.
    pub fn new() -> FlightRecorder {
        FlightRecorder::default()
    }

    /// Is recording on?
    pub fn enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Turn recording on with a ring of `capacity` events.
    pub fn enable(&self, capacity: usize) {
        *self.inner.ring.lock() = Ring::with_capacity(capacity);
        self.inner.enabled.store(true, Ordering::Relaxed);
    }

    /// Turn recording off (retained events stay readable).
    pub fn disable(&self) {
        self.inner.enabled.store(false, Ordering::Relaxed);
    }

    /// Anchor this recorder's event clock to the UNIX timeline:
    /// `unix_ms` is the wall-clock instant at which the node's event
    /// clock read zero. Virtual-time sources leave it at 0.
    pub fn set_epoch_unix_ms(&self, unix_ms: u64) {
        self.inner.epoch_unix_ms.store(unix_ms, Ordering::Relaxed);
    }

    /// The configured clock anchor.
    pub fn epoch_unix_ms(&self) -> u64 {
        self.inner.epoch_unix_ms.load(Ordering::Relaxed)
    }

    /// Record one event (no-op while disabled).
    pub fn record(&self, event: TraceEvent) {
        if self.enabled() {
            self.inner.ring.lock().push(event);
        }
    }

    /// Retained event count.
    pub fn len(&self) -> usize {
        self.inner.ring.lock().len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted so far.
    pub fn dropped(&self) -> u64 {
        self.inner.ring.lock().dropped()
    }

    /// Page out retained events with absolute sequence ≥ `from_seq`,
    /// at most `max` of them, stamped with `host`.
    pub fn segment(&self, host: &str, from_seq: u64, max: usize) -> TraceSegment {
        let ring = self.inner.ring.lock();
        let (start_seq, events) = ring.page(from_seq, max);
        TraceSegment {
            host: host.to_string(),
            start_seq,
            next_seq: start_seq + events.len() as u64,
            total: ring.pushed(),
            dropped: ring.dropped(),
            epoch_unix_ms: self.epoch_unix_ms(),
            events,
        }
    }

    /// The whole retained record as one segment (what a dump writes).
    pub fn dump(&self, host: &str) -> TraceSegment {
        self.segment(host, 0, usize::MAX)
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("enabled", &self.enabled())
            .field("events", &self.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceKind;
    use naplet_core::clock::Millis;

    fn ev(at: u64) -> TraceEvent {
        TraceEvent {
            at: Millis(at),
            host: "n1".into(),
            naplet: None,
            ctx: None,
            kind: TraceKind::Crash,
        }
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let r = FlightRecorder::new();
        r.record(ev(1));
        assert!(r.is_empty());
    }

    #[test]
    fn ring_bounds_and_dropped_counter() {
        let r = FlightRecorder::new();
        r.enable(3);
        for i in 0..5 {
            r.record(ev(i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let seg = r.dump("n1");
        assert_eq!(seg.start_seq, 2);
        assert_eq!(seg.next_seq, 5);
        assert_eq!(seg.total, 5);
        assert_eq!(seg.dropped, 2);
        assert_eq!(seg.events.len(), 3);
        assert_eq!(seg.events[0].at, Millis(2));
    }

    #[test]
    fn paging_walks_the_ring_to_completion() {
        let r = FlightRecorder::new();
        r.enable(16);
        for i in 0..7 {
            r.record(ev(i));
        }
        let mut from = 0;
        let mut got = Vec::new();
        loop {
            let seg = r.segment("n1", from, 3);
            if seg.events.is_empty() {
                break;
            }
            from = seg.next_seq;
            got.extend(seg.events);
        }
        assert_eq!(got.len(), 7);
        assert!(got.windows(2).all(|w| w[0].at < w[1].at));
    }

    #[test]
    fn segment_round_trips_through_the_codec() {
        let r = FlightRecorder::new();
        r.enable(4);
        r.set_epoch_unix_ms(1_700_000_000_000);
        r.record(ev(9));
        let seg = r.dump("n1");
        let bytes = naplet_core::codec::to_bytes(&seg).unwrap();
        let back: TraceSegment = naplet_core::codec::from_bytes(&bytes).unwrap();
        assert_eq!(back, seg);
        assert_eq!(back.epoch_unix_ms, 1_700_000_000_000);
    }
}
