//! Journey stall watchdog: the live half of the ops plane.
//!
//! The trace taxonomy narrates journeys *after* the fact; the
//! watchdog watches the same event stream *as it happens* and raises
//! typed alerts while a stranded agent can still be recovered. It is
//! fed by [`crate::ObsSink::emit`] — every progress-class event
//! (landing request, permit, transfer, registration, visit end)
//! refreshes the journey's `last_progress` mark; a configurable
//! deadline without progress raises exactly one
//! [`TraceKind::StalledJourney`] (or [`TraceKind::OrphanSuspected`]
//! when the last event was departure-side, i.e. the agent may be lost
//! between hosts). New progress re-arms the journey for another
//! alert.
//!
//! Retransmissions and handoff failures deliberately do **not** count
//! as progress: they are symptoms of non-progress, and counting them
//! would let a host stuck behind a dead link reset its own deadline
//! forever.
//!
//! The watchdog keeps its own ordered alert list, independent of the
//! tracer, so alerts are queryable even when tracing is off. Alert
//! order is deterministic under the sim driver: checks run at
//! scheduled virtual times and journeys iterate in id order.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use naplet_core::clock::Millis;

use crate::trace::{TraceEvent, TraceKind};

/// Watchdog tuning. All thresholds are in the driving runtime's time
/// base: virtual ms under `SimRuntime`, wall-clock ms under
/// `LiveRuntime`.
#[derive(Debug, Clone, PartialEq)]
pub struct WatchdogConfig {
    /// A journey with no progress event for this long is stalled.
    pub deadline_ms: u64,
    /// How often the driver should run [`Watchdog::check`].
    pub tick_ms: u64,
    /// Mailbox depth (ordinary + special) at which a server sweep
    /// raises [`TraceKind::MailboxBacklog`].
    pub mailbox_threshold: u64,
    /// Un-retired journal entries at which a server sweep raises
    /// [`TraceKind::JournalLagHigh`].
    pub journal_threshold: u64,
    /// Ask the driver to fire the home server's lease check early
    /// when a journey stalls, instead of waiting out the full lease.
    pub early_redispatch: bool,
}

impl Default for WatchdogConfig {
    fn default() -> WatchdogConfig {
        WatchdogConfig {
            deadline_ms: 60_000,
            tick_ms: 50,
            mailbox_threshold: 64,
            journal_threshold: 64,
            early_redispatch: false,
        }
    }
}

/// One newly stalled journey, as [`Watchdog::check`] reports it to
/// the driving runtime (which may trigger recovery and forwards the
/// embedded event to the tracer).
#[derive(Debug, Clone, PartialEq)]
pub struct StallAlert {
    /// The stalled journey's naplet id (rendered).
    pub naplet: String,
    /// The journey's home host (first host it was observed at).
    pub home: String,
    /// Last host a progress event was observed at.
    pub last_host: String,
    /// Was the last progress event departure-side (agent possibly
    /// lost between hosts)?
    pub orphan: bool,
    /// The alert as a trace event, ready for the tracer/exporters.
    pub event: TraceEvent,
}

#[derive(Debug, Clone)]
struct JourneyProgress {
    home: String,
    last_host: String,
    last_at: Millis,
    /// Last progress event was departure-side (landing request sent,
    /// permit received, transfer in flight).
    departing: bool,
    /// Alerted for the current stall; progress re-arms.
    alerted: bool,
}

#[derive(Default)]
struct WatchdogState {
    config: WatchdogConfig,
    journeys: BTreeMap<String, JourneyProgress>,
    /// Every alert raised, in raise order (deterministic under sim).
    alerts: Vec<TraceEvent>,
    /// Server-level alerts already raised, deduped per (host, kind
    /// name) so recurring sweeps alert once per condition.
    server_alerted: BTreeMap<(String, &'static str), ()>,
}

/// Clone-shared journey watchdog. Disabled by default: when off,
/// [`crate::ObsSink::emit`] never consults it and instrumented paths
/// pay one atomic load.
#[derive(Clone, Default)]
pub struct Watchdog {
    enabled: Arc<AtomicBool>,
    state: Arc<Mutex<WatchdogState>>,
}

impl Watchdog {
    /// A fresh, disabled watchdog.
    pub fn new() -> Watchdog {
        Watchdog::default()
    }

    /// Is the watchdog observing?
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Arm the watchdog with `config` (idempotent; replaces tuning).
    pub fn enable(&self, config: WatchdogConfig) {
        self.state.lock().config = config;
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Current tuning.
    pub fn config(&self) -> WatchdogConfig {
        self.state.lock().config.clone()
    }

    /// Feed one observed event through the progress tracker. Called
    /// by [`crate::ObsSink::emit`] when enabled; host-level events
    /// (no naplet id) and non-progress kinds are ignored.
    pub fn observe(&self, at: Millis, host: &str, naplet: Option<&str>, kind: &TraceKind) {
        let Some(id) = naplet else { return };
        let (progress, departing) = match kind {
            TraceKind::LandingRequested { .. }
            | TraceKind::PermitReceived { .. }
            | TraceKind::TransferSent { .. } => (true, true),
            TraceKind::LandingDecision { .. }
            | TraceKind::TransferReceived { .. }
            | TraceKind::HandoffCommit { .. }
            | TraceKind::RegisterGated { .. }
            | TraceKind::RegisterAcked { .. }
            | TraceKind::VisitEnd { .. }
            | TraceKind::RecoveryReplayed { .. } => (true, false),
            TraceKind::JourneyDone { .. } | TraceKind::Parked { .. } => {
                self.state.lock().journeys.remove(id);
                return;
            }
            TraceKind::LeaseExpired { redispatched } => {
                if *redispatched {
                    (true, false)
                } else {
                    // declared lost: nothing left to watch
                    self.state.lock().journeys.remove(id);
                    return;
                }
            }
            // retransmits / failures are symptoms of non-progress
            _ => return,
        };
        debug_assert!(progress);
        let mut state = self.state.lock();
        let entry = state
            .journeys
            .entry(id.to_string())
            .or_insert_with(|| JourneyProgress {
                home: host.to_string(),
                last_host: host.to_string(),
                last_at: at,
                departing,
                alerted: false,
            });
        entry.last_host = host.to_string();
        entry.last_at = at;
        entry.departing = departing;
        entry.alerted = false; // progress re-arms the alert
    }

    /// Deadline sweep: raise one alert per newly stalled journey and
    /// return them for the driver to act on (early re-dispatch,
    /// tracer forwarding). Journeys iterate in id order, so the alert
    /// list is deterministic under a deterministic driver.
    pub fn check(&self, now: Millis) -> Vec<StallAlert> {
        let mut state = self.state.lock();
        let deadline = state.config.deadline_ms;
        let mut raised = Vec::new();
        for (id, j) in state.journeys.iter_mut() {
            let idle = now.since(j.last_at);
            if j.alerted || idle <= deadline {
                continue;
            }
            j.alerted = true;
            let kind = if j.departing {
                TraceKind::OrphanSuspected {
                    last_host: j.last_host.clone(),
                    idle_ms: idle,
                }
            } else {
                TraceKind::StalledJourney {
                    last_host: j.last_host.clone(),
                    idle_ms: idle,
                    deadline_ms: deadline,
                }
            };
            raised.push(StallAlert {
                naplet: id.clone(),
                home: j.home.clone(),
                last_host: j.last_host.clone(),
                orphan: j.departing,
                event: TraceEvent {
                    at: now,
                    host: j.last_host.clone(),
                    naplet: Some(id.clone()),
                    ctx: None,
                    kind,
                },
            });
        }
        state.alerts.extend(raised.iter().map(|a| a.event.clone()));
        raised
    }

    /// Raise a server-level alert (mailbox backlog, journal lag) from
    /// a status sweep. Dedupes per (host, kind): a condition alerts
    /// once, however many sweeps re-observe it. Returns the recorded
    /// event when newly raised.
    pub fn raise_server_alert(
        &self,
        at: Millis,
        host: &str,
        kind: TraceKind,
    ) -> Option<TraceEvent> {
        debug_assert!(kind.is_alert());
        let mut state = self.state.lock();
        let key = (host.to_string(), kind.name());
        if state.server_alerted.contains_key(&key) {
            return None;
        }
        state.server_alerted.insert(key, ());
        let event = TraceEvent {
            at,
            host: host.to_string(),
            naplet: None,
            ctx: None,
            kind,
        };
        state.alerts.push(event.clone());
        Some(event)
    }

    /// Does any tracked journey still await its first alert? Drivers
    /// keep the deadline tick scheduled exactly while this holds, so
    /// a quiescence-driven sim still drains.
    pub fn wants_tick(&self) -> bool {
        self.state.lock().journeys.values().any(|j| !j.alerted)
    }

    /// Number of journeys currently tracked.
    pub fn tracked(&self) -> usize {
        self.state.lock().journeys.len()
    }

    /// Every alert raised so far, in raise order.
    pub fn alerts(&self) -> Vec<TraceEvent> {
        self.state.lock().alerts.clone()
    }

    /// Drop all tracked state and alerts (tuning survives).
    pub fn clear(&self) {
        let mut state = self.state.lock();
        state.journeys.clear();
        state.alerts.clear();
        state.server_alerted.clear();
    }
}

impl std::fmt::Debug for Watchdog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock();
        f.debug_struct("Watchdog")
            .field("enabled", &self.enabled())
            .field("journeys", &state.journeys.len())
            .field("alerts", &state.alerts.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wd(deadline_ms: u64) -> Watchdog {
        let w = Watchdog::new();
        w.enable(WatchdogConfig {
            deadline_ms,
            ..WatchdogConfig::default()
        });
        w
    }

    fn visit_end(at: u64) -> TraceKind {
        TraceKind::VisitEnd {
            started: Millis(at),
            epoch: 1,
            gas: 0,
            msg_bytes: 0,
        }
    }

    #[test]
    fn progress_within_the_deadline_never_alerts() {
        let w = wd(100);
        for t in (0..500).step_by(50) {
            w.observe(Millis(t), "s1", Some("n1"), &visit_end(t));
            assert!(w.check(Millis(t + 60)).is_empty());
        }
        assert!(w.alerts().is_empty());
    }

    #[test]
    fn a_silent_journey_alerts_exactly_once_until_rearmed() {
        let w = wd(100);
        w.observe(Millis(10), "s1", Some("n1"), &visit_end(10));
        let first = w.check(Millis(200));
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].last_host, "s1");
        assert!(!first[0].orphan);
        assert!(matches!(
            first[0].event.kind,
            TraceKind::StalledJourney { .. }
        ));
        // no re-alert while still stalled
        assert!(w.check(Millis(400)).is_empty());
        // progress re-arms; a second stall alerts again
        w.observe(Millis(500), "s2", Some("n1"), &visit_end(500));
        assert!(w.check(Millis(550)).is_empty());
        let second = w.check(Millis(700));
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].last_host, "s2");
        assert_eq!(w.alerts().len(), 2);
    }

    #[test]
    fn departure_side_stalls_suspect_an_orphan() {
        let w = wd(100);
        w.observe(
            Millis(5),
            "s0",
            Some("n1"),
            &TraceKind::TransferSent {
                dest: "s1".into(),
                transfer_id: 1,
            },
        );
        let alerts = w.check(Millis(200));
        assert_eq!(alerts.len(), 1);
        assert!(alerts[0].orphan);
        assert!(matches!(
            alerts[0].event.kind,
            TraceKind::OrphanSuspected { .. }
        ));
    }

    #[test]
    fn retransmits_do_not_reset_the_deadline() {
        let w = wd(100);
        w.observe(
            Millis(5),
            "s0",
            Some("n1"),
            &TraceKind::LandingRequested {
                dest: "s1".into(),
                transfer_id: 1,
            },
        );
        // the origin keeps retrying a dead link: symptoms, not progress
        for t in [60u64, 120, 180] {
            w.observe(
                Millis(t),
                "s0",
                Some("n1"),
                &TraceKind::Retransmit {
                    dest: "s1".into(),
                    transfer_id: 1,
                    attempt: 2,
                    phase: "permit".into(),
                },
            );
        }
        assert_eq!(w.check(Millis(200)).len(), 1, "stall must still surface");
    }

    #[test]
    fn done_and_parked_journeys_leave_the_tracker() {
        let w = wd(100);
        w.observe(Millis(1), "s1", Some("n1"), &visit_end(1));
        w.observe(Millis(2), "s1", Some("n2"), &visit_end(2));
        w.observe(
            Millis(3),
            "s1",
            Some("n1"),
            &TraceKind::JourneyDone {
                status: "completed".into(),
            },
        );
        w.observe(
            Millis(4),
            "s1",
            Some("n2"),
            &TraceKind::Parked {
                dest: "s2".into(),
                attempts: 3,
            },
        );
        assert_eq!(w.tracked(), 0);
        assert!(w.check(Millis(1_000)).is_empty());
        assert!(!w.wants_tick());
    }

    #[test]
    fn home_is_the_first_observed_host() {
        let w = wd(100);
        w.observe(
            Millis(1),
            "home",
            Some("n1"),
            &TraceKind::LandingRequested {
                dest: "s1".into(),
                transfer_id: 1,
            },
        );
        w.observe(Millis(5), "s1", Some("n1"), &visit_end(5));
        let alerts = w.check(Millis(200));
        assert_eq!(alerts[0].home, "home");
        assert_eq!(alerts[0].last_host, "s1");
    }

    #[test]
    fn server_alerts_dedupe_per_host_and_kind() {
        let w = wd(100);
        let kind = TraceKind::MailboxBacklog {
            depth: 40,
            threshold: 32,
        };
        assert!(w
            .raise_server_alert(Millis(1), "s1", kind.clone())
            .is_some());
        assert!(w
            .raise_server_alert(Millis(2), "s1", kind.clone())
            .is_none());
        assert!(w.raise_server_alert(Millis(3), "s2", kind).is_some());
        assert_eq!(w.alerts().len(), 2);
    }

    #[test]
    fn wants_tick_tracks_unalerted_journeys_only() {
        let w = wd(100);
        assert!(!w.wants_tick());
        w.observe(Millis(1), "s1", Some("n1"), &visit_end(1));
        assert!(w.wants_tick());
        let _ = w.check(Millis(500));
        assert!(!w.wants_tick(), "alerted journeys stop demanding ticks");
        w.observe(Millis(600), "s2", Some("n1"), &visit_end(600));
        assert!(w.wants_tick(), "progress re-arms the tick demand");
    }
}
