//! One bounded-ring implementation for every "keep the last N"
//! consumer.
//!
//! The flight recorder (recent [`crate::trace::TraceEvent`]s) and the
//! server-side event log (recent log lines) share the same retention
//! semantics: a fixed capacity, oldest-first eviction, and an exact
//! count of what was evicted — so a reader can always tell a complete
//! record from a truncated one. Entries also carry an *absolute*
//! sequence number (total pushes since birth), which is what lets a
//! remote reader page a ring out incrementally without re-fetching
//! what it already has.

use std::collections::VecDeque;

/// A bounded ring with eviction accounting and absolute sequencing.
#[derive(Debug, Clone)]
pub struct Ring<T> {
    entries: VecDeque<T>,
    capacity: usize,
    dropped: u64,
    pushed: u64,
}

// manual impl: `T` need not be Default for an empty ring to exist
impl<T> Default for Ring<T> {
    fn default() -> Ring<T> {
        Ring::with_capacity(0)
    }
}

impl<T> Ring<T> {
    /// A ring holding at most `capacity` entries (0 disables retention
    /// entirely — every push is counted dropped).
    pub fn with_capacity(capacity: usize) -> Ring<T> {
        Ring {
            entries: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            dropped: 0,
            pushed: 0,
        }
    }

    /// Append an entry, evicting the oldest if the ring is full.
    pub fn push(&mut self, entry: T) {
        self.pushed += 1;
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        while self.entries.len() >= self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(entry);
    }

    /// Retained entries, oldest first.
    pub fn iter(&self) -> std::collections::vec_deque::Iter<'_, T> {
        self.entries.iter()
    }

    /// Retained entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries evicted (or refused at capacity 0) so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total entries ever pushed; also the absolute sequence number the
    /// *next* push will get.
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Absolute sequence number of the oldest retained entry (equals
    /// [`Ring::pushed`] when the ring is empty).
    pub fn first_seq(&self) -> u64 {
        self.pushed - self.entries.len() as u64
    }

    /// Retained entries with absolute sequence at or after `from_seq`,
    /// capped at `max` entries; returns the absolute sequence of the
    /// first returned entry (callers page with `from_seq = start +
    /// returned.len()`).
    pub fn page(&self, from_seq: u64, max: usize) -> (u64, Vec<T>)
    where
        T: Clone,
    {
        let first = self.first_seq();
        let start = from_seq.max(first);
        let skip = (start - first) as usize;
        let out: Vec<T> = self.entries.iter().skip(skip).take(max).cloned().collect();
        (start, out)
    }

    /// Drop every retained entry (eviction/push accounting is kept).
    pub fn clear(&mut self) {
        let n = self.entries.len() as u64;
        self.entries.clear();
        self.dropped += n;
    }
}

impl<'a, T> IntoIterator for &'a Ring<T> {
    type Item = &'a T;
    type IntoIter = std::collections::vec_deque::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_oldest_and_counts_drops() {
        let mut r = Ring::with_capacity(3);
        for i in 0..5u64 {
            r.push(i);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.pushed(), 5);
        assert_eq!(r.first_seq(), 2);
        let kept: Vec<u64> = r.iter().copied().collect();
        assert_eq!(kept, [2, 3, 4]);
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let mut r = Ring::with_capacity(0);
        r.push(1u8);
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 1);
        assert_eq!(r.pushed(), 1);
        assert_eq!(r.first_seq(), 1);
    }

    #[test]
    fn paging_respects_absolute_sequences() {
        let mut r = Ring::with_capacity(4);
        for i in 0..10u64 {
            r.push(i);
        }
        // retained: seqs 6..10 hold values 6..10
        let (start, page) = r.page(0, 2);
        assert_eq!(start, 6, "evicted seqs are skipped");
        assert_eq!(page, [6, 7]);
        let (start, page) = r.page(start + page.len() as u64, 100);
        assert_eq!(start, 8);
        assert_eq!(page, [8, 9]);
        let (start, page) = r.page(10, 100);
        assert_eq!(start, 10);
        assert!(page.is_empty());
    }

    #[test]
    fn clear_counts_as_drops() {
        let mut r = Ring::with_capacity(8);
        r.push(1u8);
        r.push(2u8);
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.first_seq(), 2);
    }
}
