//! Property test of crash-consistency: for a random itinerary, crash
//! the server the simulation is about to touch — before *every* event
//! index in turn — and recovery replay must converge to exactly the
//! crash-free outcome: same report, same navigation log, no lost or
//! duplicated visit effects.

use proptest::collection::vec;
use proptest::prelude::*;

use naplet_core::behavior::NapletBehavior;
use naplet_core::clock::Millis;
use naplet_core::codebase::CodebaseRegistry;
use naplet_core::context::NapletContext;
use naplet_core::credential::SigningKey;
use naplet_core::error::Result;
use naplet_core::itinerary::{ActionSpec, Itinerary, Pattern};
use naplet_core::naplet::{AgentKind, Naplet};
use naplet_core::value::Value;
use naplet_net::{Bandwidth, Fabric, LatencyModel};
use naplet_server::{LocationMode, MonitorPolicy, ServerConfig, SimRuntime};

const CODEBASE: &str = "naplet://code/collector.jar";
const WORKERS: [&str; 3] = ["s0", "s1", "s2"];

struct Collector;

impl NapletBehavior for Collector {
    fn on_start(&mut self, ctx: &mut dyn NapletContext) -> Result<()> {
        let host = ctx.host_name().to_string();
        let mut visits = match ctx.state().get("visits") {
            Value::List(l) => l,
            _ => Vec::new(),
        };
        visits.push(Value::Str(host));
        ctx.state().set("visits", Value::List(visits));
        Ok(())
    }
}

fn build_world(seed: u64) -> SimRuntime {
    let mut reg = CodebaseRegistry::new();
    reg.register(CODEBASE, 4096, || Collector);
    let fabric = Fabric::new(LatencyModel::Constant(2), Bandwidth::fast_ethernet(), seed);
    let mut rt = SimRuntime::new(fabric);
    for host in std::iter::once("home").chain(WORKERS) {
        let mut cfg = ServerConfig::open(host, LocationMode::HomeManagers);
        cfg.codebase = reg.clone();
        cfg.monitor_policy = MonitorPolicy {
            native_dwell_ms: 5,
            ..MonitorPolicy::default()
        };
        rt.add_server(cfg);
    }
    rt
}

fn probe(route: &[&str]) -> Naplet {
    let it = Itinerary::new(Pattern::seq_of_hosts(route, None))
        .unwrap()
        .with_final_action(ActionSpec::ReportHome);
    Naplet::create(
        &SigningKey::new("czxu", b"campus-secret"),
        "czxu",
        "home",
        Millis(1),
        CODEBASE,
        AgentKind::Native,
        it,
        vec![],
    )
    .unwrap()
}

/// What a run leaves behind: the probe's reported visit list and the
/// navigation log's host sequence from the completed journey (times
/// are excluded — retries legitimately shift them).
#[derive(Debug, PartialEq, Eq)]
struct RunOutcome {
    visits: Vec<String>,
    nav_route: Vec<String>,
}

/// Run the journey, crashing the server the `crash_at`-th event
/// targets just before that event is processed (restart 40 ms later).
/// `None` runs crash-free. Returns `None` when the chosen event
/// targets `home` (crashing the observer invalidates the comparison).
fn run(route: &[&str], seed: u64, crash_at: Option<u64>) -> Option<(RunOutcome, u64)> {
    let mut rt = build_world(seed);
    rt.launch(probe(route)).unwrap();
    let mut steps = 0u64;
    if let Some(k) = crash_at {
        while steps < k {
            if rt.step().is_none() {
                break;
            }
            steps += 1;
        }
        match rt.peek_target() {
            Some(host) if host != "home" => rt.crash_server(&host, Some(40)),
            _ => return None,
        }
    }
    while rt.step().is_some() {
        steps += 1;
    }
    let reports = rt.drain_reports("home");
    let mut visits = Vec::new();
    for (_, report) in &reports {
        if let Value::List(l) = report.get("visits") {
            for v in &l {
                if let Value::Str(s) = v {
                    visits.push(s.clone());
                }
            }
        }
    }
    let home = rt.server("home").unwrap();
    let nav_route = home
        .completed
        .iter()
        .flat_map(|(_, log)| log.route().into_iter().map(str::to_string))
        .collect();
    Some((RunOutcome { visits, nav_route }, steps))
}

proptest! {
    // each case replays the whole journey once per event index, so a
    // single case is itself a few hundred simulations; PROPTEST_CASES
    // scales the count
    #[test]
    fn crash_at_any_instant_recovers_to_crash_free_outcome(
        hops in vec(0..WORKERS.len(), 1..4),
        seed in any::<u64>(),
    ) {
        // map indices to hosts, dropping consecutive repeats (a hop to
        // the host the agent is already on is not a migration), and
        // land the final hop at home so the report never races a crash
        let mut route: Vec<&str> = Vec::new();
        for i in hops {
            if route.last() != Some(&WORKERS[i]) {
                route.push(WORKERS[i]);
            }
        }
        route.push("home");

        let (baseline, events) = run(&route, seed, None).unwrap();
        prop_assert!(!baseline.visits.is_empty(), "crash-free journey must report");
        for k in 0..events {
            let Some((outcome, _)) = run(&route, seed, Some(k)) else {
                continue; // next event targeted home: skip this index
            };
            prop_assert_eq!(
                &outcome,
                &baseline,
                "crash before event {} diverged (route {:?}, seed {})",
                k,
                &route,
                seed
            );
        }
    }
}
