//! Replicated-directory scenarios: a three-node directory replica set
//! elects a leader, commits registrations through the consensus log,
//! survives leader crashes without losing committed movement, and
//! quiesces (the leader suspends its heartbeat once the log is fully
//! replicated, so `run_to_quiescence` terminates).

use naplet_core::behavior::NapletBehavior;
use naplet_core::clock::Millis;
use naplet_core::codebase::CodebaseRegistry;
use naplet_core::context::NapletContext;
use naplet_core::credential::SigningKey;
use naplet_core::error::Result;
use naplet_core::itinerary::{ActionSpec, Itinerary, Pattern};
use naplet_core::naplet::{AgentKind, Naplet};
use naplet_core::value::Value;
use naplet_net::{Bandwidth, Fabric, LatencyModel};
use naplet_server::repl::Role;
use naplet_server::{
    LeasePolicy, LocationMode, MonitorPolicy, NapletStatus, ServerConfig, SimRuntime,
};

const CODEBASE: &str = "naplet://code/collector.jar";
const REPLICAS: [&str; 3] = ["d0", "d1", "d2"];
const WORKERS: [&str; 2] = ["s0", "s1"];

struct Collector;

impl NapletBehavior for Collector {
    fn on_start(&mut self, ctx: &mut dyn NapletContext) -> Result<()> {
        let host = ctx.host_name().to_string();
        let mut visits = match ctx.state().get("visits") {
            Value::List(l) => l,
            _ => Vec::new(),
        };
        visits.push(Value::Str(host));
        ctx.state().set("visits", Value::List(visits));
        Ok(())
    }
}

fn world(seed: u64, lease: Option<LeasePolicy>) -> SimRuntime {
    let mut reg = CodebaseRegistry::new();
    reg.register(CODEBASE, 4096, || Collector);
    let fabric = Fabric::new(LatencyModel::Constant(2), Bandwidth::fast_ethernet(), seed);
    let mut rt = SimRuntime::new(fabric);
    let replicas: Vec<String> = REPLICAS.iter().map(|r| r.to_string()).collect();
    let mode = LocationMode::ReplicatedDirectory(replicas);
    for host in std::iter::once("home").chain(WORKERS).chain(REPLICAS) {
        let mut cfg = ServerConfig::open(host, mode.clone());
        cfg.codebase = reg.clone();
        cfg.monitor_policy = MonitorPolicy {
            native_dwell_ms: 5,
            ..MonitorPolicy::default()
        };
        cfg.lease = lease.clone();
        rt.add_server(cfg);
    }
    rt
}

fn probe(route: &[&str], ts: u64) -> Naplet {
    let it = Itinerary::new(Pattern::seq_of_hosts(route, None))
        .unwrap()
        .with_final_action(ActionSpec::ReportHome);
    Naplet::create(
        &SigningKey::new("czxu", b"campus-secret"),
        "czxu",
        "home",
        Millis(ts),
        CODEBASE,
        AgentKind::Native,
        it,
        vec![],
    )
    .unwrap()
}

fn leaders(rt: &SimRuntime) -> Vec<String> {
    REPLICAS
        .iter()
        .filter(|r| {
            rt.server(r)
                .and_then(|s| s.repl_core())
                .is_some_and(|c| c.role() == Role::Leader)
        })
        .map(|r| r.to_string())
        .collect()
}

#[test]
fn replica_set_elects_one_leader_and_quiesces() {
    let mut rt = world(11, None);
    let processed = rt.run_to_quiescence(60_000);
    assert!(processed < 60_000, "idle replica set must quiesce");
    assert_eq!(leaders(&rt).len(), 1, "exactly one leader after election");
    for r in REPLICAS {
        let core = rt.server(r).unwrap().repl_core().unwrap();
        assert!(core.is_suspended(), "{r} must suspend when idle");
        assert!(core.commit_index() >= 1, "{r} must commit the leader noop");
    }
}

#[test]
fn registrations_commit_on_every_replica_and_journeys_complete() {
    let mut rt = world(12, None);
    rt.launch(probe(&["s0", "s1", "home"], 1)).unwrap();
    rt.launch(probe(&["s1", "s0", "home"], 2)).unwrap();
    let processed = rt.run_to_quiescence(120_000);
    assert!(processed < 120_000, "replicated run must quiesce");
    assert_eq!(rt.drain_reports("home").len(), 2);
    // both journeys ended: the committed directory forgot both agents,
    // and all replicas applied the identical log
    let commits: Vec<u64> = REPLICAS
        .iter()
        .map(|r| rt.server(r).unwrap().repl_core().unwrap().commit_index())
        .collect();
    assert!(
        commits[0] >= 6,
        "expected arrival/departure commits, got {commits:?}"
    );
    assert_eq!(commits[0], commits[1]);
    assert_eq!(commits[1], commits[2]);
    for r in REPLICAS {
        let core = rt.server(r).unwrap().repl_core().unwrap();
        assert_eq!(core.state.len(), 0, "{r} still tracks a finished agent");
    }
}

#[test]
fn leader_crash_mid_churn_loses_no_committed_registration() {
    let mut rt = world(13, None);
    // let the election settle first so there is a leader to kill
    rt.run_to_quiescence(30_000);
    let before = leaders(&rt);
    assert_eq!(before.len(), 1);
    let victim = before[0].clone();

    rt.launch(probe(&["s0", "s1", "s0", "home"], 1)).unwrap();
    // run a little churn, then kill the leader mid-journey
    for _ in 0..40 {
        rt.step();
    }
    rt.crash_server(&victim, Some(2_000));
    let processed = rt.run_to_quiescence(300_000);
    assert!(processed < 300_000, "failover run must quiesce");
    assert_eq!(
        rt.drain_reports("home").len(),
        1,
        "journey must survive directory failover"
    );
    // the rejoined replica caught back up to the same committed state
    let commits: Vec<u64> = REPLICAS
        .iter()
        .map(|r| rt.server(r).unwrap().repl_core().unwrap().commit_index())
        .collect();
    assert_eq!(commits[0], commits[1], "commit divergence: {commits:?}");
    assert_eq!(commits[1], commits[2], "commit divergence: {commits:?}");
    assert_eq!(leaders(&rt).len(), 1, "a new leader must have emerged");
}

#[test]
fn follower_crash_is_invisible_to_clients() {
    let mut rt = world(14, None);
    rt.run_to_quiescence(30_000);
    let leader = &leaders(&rt)[0];
    let follower = REPLICAS.iter().find(|r| *r != leader).unwrap().to_string();
    rt.launch(probe(&["s0", "s1", "home"], 1)).unwrap();
    for _ in 0..20 {
        rt.step();
    }
    rt.crash_server(&follower, Some(1_500));
    let processed = rt.run_to_quiescence(300_000);
    assert!(processed < 300_000);
    assert_eq!(rt.drain_reports("home").len(), 1);
}

#[test]
fn home_redispatch_after_failover_never_duplicates_an_agent() {
    // satellite: exactly-once across leader changes — the home's lease
    // machinery probes the replica set before re-dispatching, so an
    // agent that is alive (its movement committed under a new leader)
    // is not forked into a second live copy
    let lease = LeasePolicy {
        duration_ms: 4_000,
        redispatch: true,
        max_redispatches: 3,
    };
    let mut rt = world(15, Some(lease));
    rt.run_to_quiescence(30_000);
    let victim = leaders(&rt)[0].clone();
    rt.launch(probe(&["s0", "s1", "s0", "s1", "home"], 1))
        .unwrap();
    for _ in 0..60 {
        rt.step();
    }
    rt.crash_server(&victim, Some(3_000));
    let processed = rt.run_to_quiescence(600_000);
    assert!(processed < 600_000, "failover + lease run must quiesce");
    let reports = rt.drain_reports("home");
    assert_eq!(
        reports.len(),
        1,
        "exactly one report: a re-dispatch would have produced a second"
    );
    // the visit list shows a single pass over the route (no forked
    // second copy re-walking it)
    let mut visits = Vec::new();
    for (_, report) in &reports {
        if let Value::List(l) = report.get("visits") {
            for v in &l {
                if let Value::Str(s) = v {
                    visits.push(s.clone());
                }
            }
        }
    }
    assert_eq!(visits, vec!["s0", "s1", "s0", "s1", "home"]);
    let home = rt.server("home").unwrap();
    assert_eq!(home.leases.lost, 0, "agent must not be declared lost");
    let lost = home
        .manager
        .launched()
        .iter()
        .filter(|e| e.status == NapletStatus::Lost)
        .count();
    assert_eq!(lost, 0);
}
