//! Crash-recovery tests at the protocol-boundary level: a server is
//! crashed (volatile state wiped, journal kept) at each commit-point
//! window of the acknowledged handoff, restarted, and must replay to
//! exactly the pre-crash outcome — no lost agents, no duplicated
//! visit effects.

use naplet_core::behavior::NapletBehavior;
use naplet_core::clock::Millis;
use naplet_core::codebase::CodebaseRegistry;
use naplet_core::context::NapletContext;
use naplet_core::credential::SigningKey;
use naplet_core::error::Result;
use naplet_core::itinerary::{ActionSpec, Itinerary, Pattern};
use naplet_core::naplet::{AgentKind, Naplet};
use naplet_core::value::Value;
use naplet_net::{Bandwidth, Fabric, LatencyModel};
use naplet_server::{
    Input, LeasePolicy, LocalEvent, LocationMode, MonitorPolicy, ServerConfig, SimRuntime,
};

const CODEBASE: &str = "naplet://code/collector.jar";

/// Records visits into state.
struct Collector;

impl NapletBehavior for Collector {
    fn on_start(&mut self, ctx: &mut dyn NapletContext) -> Result<()> {
        let host = ctx.host_name().to_string();
        let mut visits = match ctx.state().get("visits") {
            Value::List(l) => l,
            _ => Vec::new(),
        };
        visits.push(Value::Str(host));
        ctx.state().set("visits", Value::List(visits));
        Ok(())
    }
}

fn registry() -> CodebaseRegistry {
    let mut r = CodebaseRegistry::new();
    r.register(CODEBASE, 4096, || Collector);
    r
}

fn key() -> SigningKey {
    SigningKey::new("czxu", b"campus-secret")
}

fn world(n: usize, lease: Option<LeasePolicy>, seed: u64) -> SimRuntime {
    let fabric = Fabric::new(LatencyModel::Constant(2), Bandwidth::fast_ethernet(), seed);
    let mut rt = SimRuntime::new(fabric);
    for host in std::iter::once("home".to_string()).chain((0..n).map(|i| format!("s{i}"))) {
        let mut cfg = ServerConfig::open(&host, LocationMode::HomeManagers);
        cfg.codebase = registry();
        cfg.monitor_policy = MonitorPolicy {
            native_dwell_ms: 5,
            ..MonitorPolicy::default()
        };
        cfg.lease = lease.clone();
        rt.add_server(cfg);
    }
    rt
}

fn agent(route: &[&str], ts: u64) -> Naplet {
    let it = Itinerary::new(Pattern::seq_of_hosts(route, None))
        .unwrap()
        .with_final_action(ActionSpec::ReportHome);
    Naplet::create(
        &key(),
        "czxu",
        "home",
        Millis(ts),
        CODEBASE,
        AgentKind::Native,
        it,
        vec![],
    )
    .unwrap()
}

fn visits(report: &Value) -> Vec<String> {
    match report.get("visits") {
        Value::List(l) => l
            .iter()
            .filter_map(|v| match v {
                Value::Str(s) => Some(s.clone()),
                _ => None,
            })
            .collect(),
        _ => Vec::new(),
    }
}

/// Destination crash after it granted the landing but before the
/// Transfer arrived: the grant evaporates with the process, the origin
/// retries into the cold server, and the visit still runs exactly once.
#[test]
fn dest_crash_between_landing_reply_and_transfer() {
    let mut rt = world(1, None, 3);
    rt.launch(agent(&["s0", "home"], 1)).unwrap();
    // s0 grants the landing at t=3; the Transfer lands at t≈7
    rt.run_until(Millis(4));
    rt.crash_server("s0", Some(40));
    rt.run_to_quiescence(1_000_000);

    let reports = rt.drain_reports("home");
    assert_eq!(reports.len(), 1, "journey must complete");
    assert_eq!(visits(&reports[0].1), ["s0", "home"]);
    // the pre-crash journal held nothing: the retry re-admits cold
    let s0 = rt.server("s0").unwrap();
    assert_eq!(s0.recovery_stats().rehydrated, 0);
    assert!(
        rt.fabric().stats().snapshot().retransmits >= 1,
        "origin must retransmit into the restarted server"
    );
}

/// Origin crash after sending Transfer but before the TransferAck
/// arrived: recovery re-drives the in-flight handoff from the journal
/// and the destination re-acks the duplicate without re-admitting.
#[test]
fn origin_crash_between_transfer_and_ack() {
    let mut rt = world(2, None, 3);
    rt.launch(agent(&["s0", "s1", "home"], 1)).unwrap();
    // s0 sends the Transfer to s1 at t≈28 and commits on the ack at
    // t=35: crash s0 inside that window
    rt.run_until(Millis(30));
    rt.crash_server("s0", Some(40));
    rt.run_to_quiescence(1_000_000);

    let reports = rt.drain_reports("home");
    assert_eq!(reports.len(), 1, "journey must complete");
    assert_eq!(visits(&reports[0].1), ["s0", "s1", "home"]);
    let s0 = rt.server("s0").unwrap();
    let stats = s0.recovery_stats();
    assert_eq!(stats.rehydrated, 1, "the in-flight naplet must rehydrate");
    assert_eq!(
        stats.handoffs_resumed, 1,
        "the un-acked transfer must be re-driven"
    );
    // the destination saw the re-driven Transfer as a duplicate
    let s1 = rt.server("s1").unwrap();
    assert!(
        s1.log.iter().any(|e| e.line.contains("duplicate TRANSFER")),
        "s1 must dedup, not re-admit: {:?}",
        s1.log
    );
    // and s0 retired the transfer after the duplicate ack
    assert!(
        s0.journal().naplet_records().is_empty(),
        "retired transfers leave the journal"
    );
}

/// Destination crash mid-visit, after the visit effect applied: the
/// journal rehydrates the naplet at its post-visit snapshot and the
/// replay is suppressed — the collector's state shows one visit.
#[test]
fn dest_crash_mid_visit_suppresses_replay() {
    let mut rt = world(1, None, 3);
    rt.launch(agent(&["s0", "home"], 1)).unwrap();
    // s0 admits at t=9, applies the visit at VisitDone (t≈18) and only
    // starts the next handoff a couple of events later: crash in the
    // window where the journal shows the visit applied
    rt.run_until(Millis(19));
    rt.crash_server("s0", Some(40));
    rt.run_to_quiescence(1_000_000);

    let reports = rt.drain_reports("home");
    assert_eq!(reports.len(), 1, "journey must complete");
    assert_eq!(
        visits(&reports[0].1),
        ["s0", "home"],
        "the s0 visit must appear exactly once"
    );
    let stats = rt.server("s0").unwrap().recovery_stats();
    assert_eq!(stats.rehydrated, 1);
    assert_eq!(
        stats.replays_suppressed, 1,
        "the applied visit must not re-execute"
    );
}

/// The retention sweep bounds the receiver-side dedup table: entries
/// older than the retention window are evicted and counted.
#[test]
fn retention_sweep_bounds_dedup_table() {
    let mut rt = world(1, None, 3);
    rt.launch(agent(&["s0", "home"], 1)).unwrap();
    rt.run_to_quiescence(1_000_000);
    let s0 = rt.server_mut("s0").unwrap();
    assert_eq!(s0.seen_evicted, 0, "fresh entries must survive");
    // drive any event far past the 600 s retention window; the sweep
    // runs at the top of the handler
    let ghost = naplet_core::id::NapletId::new("czxu", "home", Millis(999)).unwrap();
    s0.handle(
        Millis(10_000_000),
        Input::Local(LocalEvent::LeaseCheck { id: ghost }),
    );
    assert!(
        s0.seen_evicted >= 1,
        "stale dedup entries must be evicted and counted"
    );
}

/// Home crash while its agent is away: recovery rebuilds the lease
/// table from journaled creation records, and the journey still
/// completes with the lease released normally.
#[test]
fn home_crash_rebuilds_lease_table() {
    let mut rt = world(1, Some(LeasePolicy::default()), 3);
    rt.launch(agent(&["s0", "home"], 1)).unwrap();
    // the agent is resident at s0 (admitted t=9); crash home under it
    rt.run_until(Millis(10));
    rt.crash_server("home", Some(20));
    rt.run_to_quiescence(1_000_000);

    let reports = rt.drain_reports("home");
    assert_eq!(reports.len(), 1, "journey must complete");
    assert_eq!(visits(&reports[0].1), ["s0", "home"]);
    let home = rt.server("home").unwrap();
    let stats = home.recovery_stats();
    assert_eq!(stats.leases_expired, 0, "a live agent must keep its lease");
    assert_eq!(stats.agents_lost, 0);
    assert_eq!(
        home.leases.held(),
        0,
        "completion must release the rebuilt lease"
    );
}
