//! Scheduling-policy tests (the paper's §5.2 "various scheduling
//! policies will be tested in future releases").

use naplet_core::behavior::NapletBehavior;
use naplet_core::clock::Millis;
use naplet_core::codebase::CodebaseRegistry;
use naplet_core::context::NapletContext;
use naplet_core::credential::SigningKey;
use naplet_core::error::Result;
use naplet_core::itinerary::{ActionSpec, Itinerary, Pattern};
use naplet_core::naplet::{AgentKind, Naplet};
use naplet_core::value::Value;
use naplet_net::{Bandwidth, Fabric, LatencyModel};
use naplet_server::{
    LocationMode, MonitorPolicy, NapletStatus, Priority, SchedulingPolicy, ServerConfig, SimRuntime,
};

struct Worker;
impl NapletBehavior for Worker {
    fn on_start(&mut self, ctx: &mut dyn NapletContext) -> Result<()> {
        ctx.report_home(Value::from(ctx.host_name().to_string()))
    }
}

fn world(scheduling: SchedulingPolicy, dwell: u64) -> SimRuntime {
    let mut reg = CodebaseRegistry::new();
    reg.register("worker", 0, || Worker);
    let fabric = Fabric::new(LatencyModel::Constant(1), Bandwidth(None), 5);
    let mut rt = SimRuntime::new(fabric);
    for host in ["home", "busy"] {
        let mut cfg = ServerConfig::open(host, LocationMode::ForwardingTrace);
        cfg.codebase = reg.clone();
        cfg.monitor_policy = MonitorPolicy {
            native_dwell_ms: dwell,
            scheduling,
            ..MonitorPolicy::default()
        };
        rt.add_server(cfg);
    }
    rt
}

fn agent(priority: Option<&str>, ts: u64) -> Naplet {
    let key = SigningKey::new("czxu", b"k");
    let it = Itinerary::new(Pattern::seq_of_hosts(&["busy"], None))
        .unwrap()
        .with_final_action(ActionSpec::ReportHome);
    let attrs = priority
        .map(|p| vec![("priority".to_string(), p.to_string())])
        .unwrap_or_default();
    Naplet::create(
        &key,
        "czxu",
        "home",
        Millis(ts),
        "worker",
        AgentKind::Native,
        it,
        attrs,
    )
    .unwrap()
}

/// Journey time of a single agent of the given priority, launched with
/// `coresidents` long-dwelling normal agents already on the server.
fn journey_ms(scheduling: SchedulingPolicy, priority: Option<&str>, coresidents: usize) -> u64 {
    let mut rt = world(scheduling, 50);
    // park co-residents (their 50ms dwell keeps them on `busy`)
    for k in 0..coresidents {
        rt.launch(agent(None, 100 + k as u64)).unwrap();
    }
    rt.run_until(Millis(10)); // co-residents arrive and start dwelling
    let probe = agent(priority, 1);
    let id = probe.id().clone();
    rt.launch(probe).unwrap();
    rt.run_to_quiescence(1_000_000);
    let entry = rt.server("home").unwrap().manager.table_entry(&id).unwrap();
    assert_eq!(entry.status, NapletStatus::Completed);
    entry.updated.0
}

#[test]
fn priority_tiers_derive_from_credentials() {
    let key = SigningKey::new("u", b"k");
    let id = naplet_core::NapletId::new("u", "h", Millis(0)).unwrap();
    let mk = |attrs: Vec<(String, String)>| {
        naplet_core::credential::Credential::issue(&key, id.clone(), "cb", attrs)
    };
    assert_eq!(Priority::of(&mk(vec![])), Priority::Normal);
    assert_eq!(
        Priority::of(&mk(vec![("priority".into(), "high".into())])),
        Priority::High
    );
    assert_eq!(
        Priority::of(&mk(vec![("priority".into(), "low".into())])),
        Priority::Low
    );
    assert_eq!(
        Priority::of(&mk(vec![("priority".into(), "urgent".into())])),
        Priority::Normal
    );
}

#[test]
fn tiered_budgets_scale_with_policy() {
    let sharing = MonitorPolicy {
        max_gas_per_visit: 1_000,
        scheduling: SchedulingPolicy::PrioritySharing,
        ..MonitorPolicy::default()
    };
    assert_eq!(sharing.gas_budget_for(Priority::High), 2_000);
    assert_eq!(sharing.gas_budget_for(Priority::Normal), 1_000);
    assert_eq!(sharing.gas_budget_for(Priority::Low), 500);
    let fcfs = MonitorPolicy {
        max_gas_per_visit: 1_000,
        ..MonitorPolicy::default()
    };
    assert_eq!(fcfs.gas_budget_for(Priority::Low), 1_000);

    assert_eq!(
        sharing.dwell_for(Priority::Low, 4),
        sharing.native_dwell_ms * 4
    );
    assert_eq!(
        sharing.dwell_for(Priority::High, 4),
        sharing.native_dwell_ms
    );
    assert_eq!(fcfs.dwell_for(Priority::Low, 4), fcfs.native_dwell_ms);
}

#[test]
fn low_priority_agents_stretch_under_load() {
    // empty server: tiers behave alike
    let lone_normal = journey_ms(SchedulingPolicy::PrioritySharing, None, 0);
    let lone_low = journey_ms(SchedulingPolicy::PrioritySharing, Some("low"), 0);
    assert!(lone_low <= lone_normal + 50);

    // busy server: the low-priority agent's dwell stretches
    let busy_normal = journey_ms(SchedulingPolicy::PrioritySharing, None, 3);
    let busy_low = journey_ms(SchedulingPolicy::PrioritySharing, Some("low"), 3);
    assert!(
        busy_low >= busy_normal + 100,
        "low should stretch: low {busy_low} vs normal {busy_normal}"
    );

    // under FCFS nothing stretches
    let fcfs_low = journey_ms(SchedulingPolicy::Fcfs, Some("low"), 3);
    let fcfs_normal = journey_ms(SchedulingPolicy::Fcfs, None, 3);
    assert!(fcfs_low <= fcfs_normal + 50);
}

#[test]
fn low_priority_vm_agent_killed_at_reduced_budget() {
    // a VM program that burns ~1500 gas: fits the normal budget (2000)
    // but exceeds the low-priority budget (1000) under sharing
    let src = r#"
        .program burn
        .func main locals=1
            int 0
            store 0
        head:
            load 0
            int 150
            lt
            jmpf done
            load 0
            int 1
            add
            store 0
            jmp head
        done:
            nil
            halt
        .end
    "#;
    let program = naplet_vm::assemble(src).unwrap();
    let image = naplet_vm::VmImage::new(program).unwrap();
    let key = SigningKey::new("czxu", b"k");

    let run = |priority: Option<&str>| -> NapletStatus {
        let mut reg = CodebaseRegistry::new();
        reg.register("unused", 0, || Worker);
        let fabric = Fabric::new(LatencyModel::Constant(1), Bandwidth(None), 5);
        let mut rt = SimRuntime::new(fabric);
        for host in ["home", "busy"] {
            let mut cfg = ServerConfig::open(host, LocationMode::ForwardingTrace);
            cfg.codebase = reg.clone();
            cfg.monitor_policy = MonitorPolicy {
                gas_slice: 200,
                max_gas_per_visit: 2_000,
                scheduling: SchedulingPolicy::PrioritySharing,
                ..MonitorPolicy::default()
            };
            rt.add_server(cfg);
        }
        let it = Itinerary::new(Pattern::seq_of_hosts(&["busy"], None)).unwrap();
        let attrs = priority
            .map(|p| vec![("priority".to_string(), p.to_string())])
            .unwrap_or_default();
        let naplet = Naplet::create(
            &key,
            "czxu",
            "home",
            Millis(1),
            "vm:burn",
            AgentKind::Vm(image.to_wire().unwrap()),
            it,
            attrs,
        )
        .unwrap();
        let id = naplet.id().clone();
        rt.launch(naplet).unwrap();
        rt.run_to_quiescence(1_000_000);
        rt.server("home")
            .unwrap()
            .manager
            .table_entry(&id)
            .unwrap()
            .status
    };

    assert_eq!(run(None), NapletStatus::Completed);
    assert_eq!(run(Some("high")), NapletStatus::Completed);
    assert_eq!(run(Some("low")), NapletStatus::Destroyed);
}
