//! Property tests of the replicated directory's consensus core under
//! crash injection: for a random journey over a replicated-directory
//! space, crash a directory replica just before *every* event index in
//! turn. Two invariants must hold at every instant and at the end:
//!
//! 1. at most one leader per term (election safety), and
//! 2. the committed log never rolls back — a registration observed
//!    committed anywhere is still committed on every live replica at
//!    the end, and all replicas converge to the same directory state.
//!
//! The journey itself must also converge to the crash-free outcome
//! (same report, same visit list): directory failover is invisible to
//! the agents riding on it.

use std::collections::BTreeMap;

use proptest::collection::vec;
use proptest::prelude::*;

use naplet_core::behavior::NapletBehavior;
use naplet_core::clock::Millis;
use naplet_core::codebase::CodebaseRegistry;
use naplet_core::context::NapletContext;
use naplet_core::credential::SigningKey;
use naplet_core::error::Result;
use naplet_core::itinerary::{ActionSpec, Itinerary, Pattern};
use naplet_core::naplet::{AgentKind, Naplet};
use naplet_core::value::Value;
use naplet_net::{Bandwidth, Fabric, LatencyModel};
use naplet_server::repl::Role;
use naplet_server::{LocationMode, MonitorPolicy, ReplConfig, ServerConfig, SimRuntime};

const CODEBASE: &str = "naplet://code/collector.jar";
const REPLICAS: [&str; 3] = ["d0", "d1", "d2"];
const WORKERS: [&str; 2] = ["s0", "s1"];

struct Collector;

impl NapletBehavior for Collector {
    fn on_start(&mut self, ctx: &mut dyn NapletContext) -> Result<()> {
        let host = ctx.host_name().to_string();
        let mut visits = match ctx.state().get("visits") {
            Value::List(l) => l,
            _ => Vec::new(),
        };
        visits.push(Value::Str(host));
        ctx.state().set("visits", Value::List(visits));
        Ok(())
    }
}

fn build_world(seed: u64) -> SimRuntime {
    let mut reg = CodebaseRegistry::new();
    reg.register(CODEBASE, 4096, || Collector);
    let fabric = Fabric::new(LatencyModel::Constant(2), Bandwidth::fast_ethernet(), seed);
    let mut rt = SimRuntime::new(fabric);
    let replicas: Vec<String> = REPLICAS.iter().map(|r| r.to_string()).collect();
    let mode = LocationMode::ReplicatedDirectory(replicas.clone());
    // a coarser consensus clock keeps the event count (and so the
    // crash-at-every-index sweep) bounded without changing the protocol
    let repl = ReplConfig {
        tick_ms: 50,
        heartbeat_ms: 200,
        lease_ms: 600,
        election_ms: 800,
        ..ReplConfig::new(replicas)
    };
    for host in std::iter::once("home").chain(WORKERS).chain(REPLICAS) {
        let mut cfg = ServerConfig::open(host, mode.clone());
        cfg.codebase = reg.clone();
        cfg.monitor_policy = MonitorPolicy {
            native_dwell_ms: 5,
            ..MonitorPolicy::default()
        };
        cfg.repl = Some(repl.clone());
        rt.add_server(cfg);
    }
    rt
}

fn probe(route: &[&str]) -> Naplet {
    let it = Itinerary::new(Pattern::seq_of_hosts(route, None))
        .unwrap()
        .with_final_action(ActionSpec::ReportHome);
    Naplet::create(
        &SigningKey::new("czxu", b"campus-secret"),
        "czxu",
        "home",
        Millis(1),
        CODEBASE,
        AgentKind::Native,
        it,
        vec![],
    )
    .unwrap()
}

#[derive(Debug, PartialEq, Eq)]
struct RunOutcome {
    visits: Vec<String>,
    directory: Vec<String>,
}

/// Scan the replica set after one event: record any leader per term
/// (at most one may ever exist) and the highest committed index seen.
fn observe(
    rt: &SimRuntime,
    leaders_by_term: &mut BTreeMap<u64, String>,
    max_commit: &mut u64,
) -> std::result::Result<(), String> {
    for r in REPLICAS {
        let Some(core) = rt.server(r).and_then(|s| s.repl_core()) else {
            continue;
        };
        *max_commit = (*max_commit).max(core.commit_index());
        if core.role() == Role::Leader {
            let prev = leaders_by_term.insert(core.term(), r.to_string());
            if let Some(prev) = prev {
                if prev != r {
                    return Err(format!(
                        "two leaders in term {}: {prev} and {r}",
                        core.term()
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Run the journey, crashing the replica the `crash_at`-th event
/// targets just before it is processed (restart 600 ms later). `None`
/// runs crash-free. Returns `None` when the chosen event does not
/// target a replica (workers/home stay up — this suite is about
/// directory failover; `recovery_proptests` covers the rest).
fn run(
    route: &[&str],
    seed: u64,
    crash_at: Option<u64>,
) -> std::result::Result<Option<(RunOutcome, u64)>, String> {
    let mut rt = build_world(seed);
    rt.launch(probe(route)).unwrap();
    let mut leaders_by_term = BTreeMap::new();
    let mut max_commit = 0u64;
    let mut steps = 0u64;
    if let Some(k) = crash_at {
        while steps < k {
            if rt.step().is_none() {
                break;
            }
            steps += 1;
            observe(&rt, &mut leaders_by_term, &mut max_commit)?;
        }
        match rt.peek_target() {
            Some(host) if REPLICAS.contains(&host.as_str()) => {
                rt.crash_server(&host, Some(600));
            }
            _ => return Ok(None),
        }
    }
    while rt.step().is_some() {
        steps += 1;
        observe(&rt, &mut leaders_by_term, &mut max_commit)?;
        if steps > 2_000_000 {
            return Err("run did not quiesce".into());
        }
    }
    // commit durability: nothing observed committed may have rolled
    // back, and every replica converged to the same directory state
    let mut states = Vec::new();
    for r in REPLICAS {
        let core = rt.server(r).unwrap().repl_core().unwrap();
        if core.commit_index() < max_commit {
            return Err(format!(
                "{r} lost committed entries: commit {} < observed {max_commit}",
                core.commit_index()
            ));
        }
        states.push(
            core.state
                .entries()
                .into_iter()
                .map(|(id, e)| format!("{id}@{}", e.host))
                .collect::<Vec<_>>(),
        );
    }
    if states[0] != states[1] || states[1] != states[2] {
        return Err(format!("replica states diverged: {states:?}"));
    }
    let reports = rt.drain_reports("home");
    let mut visits = Vec::new();
    for (_, report) in &reports {
        if let Value::List(l) = report.get("visits") {
            for v in &l {
                if let Value::Str(s) = v {
                    visits.push(s.clone());
                }
            }
        }
    }
    Ok(Some((
        RunOutcome {
            visits,
            directory: states.remove(0),
        },
        steps,
    )))
}

proptest! {
    // every case sweeps the crash point across the full event
    // schedule, so one case is itself a few hundred simulations;
    // PROPTEST_CASES scales the count
    #[test]
    fn replica_crash_at_any_instant_preserves_commits_and_outcome(
        hops in vec(0..WORKERS.len(), 1..3),
        seed in any::<u64>(),
    ) {
        let mut route: Vec<&str> = Vec::new();
        for i in hops {
            if route.last() != Some(&WORKERS[i]) {
                route.push(WORKERS[i]);
            }
        }
        route.push("home");

        let (baseline, events) = run(&route, seed, None)
            .map_err(TestCaseError::fail)?
            .unwrap();
        prop_assert!(!baseline.visits.is_empty(), "crash-free journey must report");
        prop_assert!(baseline.directory.is_empty(), "finished journey must be deregistered");
        for k in 0..events {
            let Some((outcome, _)) = run(&route, seed, Some(k))
                .map_err(|e| TestCaseError::fail(format!("crash before event {k}: {e}")))?
            else {
                continue; // next event does not target a replica
            };
            prop_assert_eq!(
                &outcome.visits,
                &baseline.visits,
                "crash before event {} diverged (route {:?}, seed {})",
                k,
                &route,
                seed
            );
            // deregistration is fire-and-forget: when the journey's
            // single DirRemove hits a crashed replica it is lost, and
            // at most the probe's own entry may linger (the locator
            // chase heals such stale hits; the tombstone machinery
            // guarantees it can never *resurrect* after a successful
            // removal). Anything else lingering is a real leak.
            prop_assert!(
                outcome.directory.len() <= 1
                    && outcome
                        .directory
                        .iter()
                        .all(|e| e.starts_with("czxu@home:1@")),
                "crash before event {} left stale entries {:?}",
                k,
                &outcome.directory
            );
        }
    }
}
