//! Reliability-layer tests: acknowledged handoff under faults, parked
//! naplets, `Alt` fallback, message redelivery, special-mailbox
//! drains, confirmation-driven cache refresh and forward-cap cycle
//! breaking.

use naplet_core::behavior::NapletBehavior;
use naplet_core::clock::Millis;
use naplet_core::codebase::CodebaseRegistry;
use naplet_core::context::NapletContext;
use naplet_core::credential::SigningKey;
use naplet_core::error::Result;
use naplet_core::id::NapletId;
use naplet_core::itinerary::{ActionSpec, Itinerary, Pattern};
use naplet_core::message::{Message, Payload, Sender};
use naplet_core::naplet::{AgentKind, Naplet};
use naplet_core::value::Value;
use naplet_net::{Bandwidth, Fabric, LatencyModel};
use naplet_server::{
    Input, LocationMode, MonitorPolicy, NapletServer, NapletStatus, Output, ServerConfig,
    SimRuntime, TransferEnvelope, Wire,
};

const CODEBASE: &str = "naplet://code/collector.jar";

/// Records visits and drains the mailbox into state, like the e2e
/// Collector.
struct Collector;

impl NapletBehavior for Collector {
    fn on_start(&mut self, ctx: &mut dyn NapletContext) -> Result<()> {
        let host = ctx.host_name().to_string();
        let mut visits = match ctx.state().get("visits") {
            Value::List(l) => l,
            _ => Vec::new(),
        };
        visits.push(Value::Str(host));
        ctx.state().set("visits", Value::List(visits));
        let mut inbox = match ctx.state().get("inbox") {
            Value::List(l) => l,
            _ => Vec::new(),
        };
        while let Some(m) = ctx.get_message()? {
            if let Payload::User(v) = m.payload {
                inbox.push(v);
            }
        }
        ctx.state().set("inbox", Value::List(inbox));
        Ok(())
    }
}

fn registry() -> CodebaseRegistry {
    let mut r = CodebaseRegistry::new();
    r.register(CODEBASE, 4096, || Collector);
    r
}

fn key() -> SigningKey {
    SigningKey::new("czxu", b"campus-secret")
}

fn world(mode: LocationMode, n: usize, seed: u64) -> SimRuntime {
    let fabric = Fabric::new(LatencyModel::Constant(2), Bandwidth::fast_ethernet(), seed);
    let mut rt = SimRuntime::new(fabric);
    for host in std::iter::once("home".to_string()).chain((0..n).map(|i| format!("s{i}"))) {
        let mut cfg = ServerConfig::open(&host, mode.clone());
        cfg.codebase = registry();
        cfg.monitor_policy = MonitorPolicy {
            native_dwell_ms: 5,
            ..MonitorPolicy::default()
        };
        rt.add_server(cfg);
    }
    rt
}

fn agent(route: Pattern, ts: u64) -> Naplet {
    let it = Itinerary::new(route)
        .unwrap()
        .with_final_action(ActionSpec::ReportHome);
    Naplet::create(
        &key(),
        "czxu",
        "home",
        Millis(ts),
        CODEBASE,
        AgentKind::Native,
        it,
        vec![],
    )
    .unwrap()
}

fn report_list(report: &Value, field: &str) -> Vec<Value> {
    match report.get(field) {
        Value::List(l) => l,
        _ => Vec::new(),
    }
}

#[test]
fn early_message_drained_confirmed_and_cache_refreshed() {
    let mut rt = world(LocationMode::HomeManagers, 1, 3);
    let naplet = agent(Pattern::seq_of_hosts(&["s0"], None), 1);
    let id = naplet.id().clone();

    // posted before launch: no directory entry yet, so the message
    // waits in home's special mailbox, then chases the departure
    rt.owner_post("home", id.clone(), Payload::User(Value::Int(7)))
        .unwrap();
    rt.launch(naplet).unwrap();
    rt.run_to_quiescence(1_000_000);

    let reports = rt.drain_reports("home");
    assert_eq!(reports.len(), 1);
    let inbox = report_list(&reports[0].1, "inbox");
    assert_eq!(
        inbox,
        vec![Value::Int(7)],
        "late arrival must drain the stash"
    );

    // the drain confirmed delivery back to the origin…
    let home = rt.server("home").unwrap();
    let c = home
        .messenger
        .confirmation(&Sender::Owner("home".into()), 1)
        .expect("delivery must be confirmed to the origin");
    assert_eq!(c.delivered_at, "s0");
    assert_eq!(
        home.messenger.outstanding_count(),
        0,
        "no redelivery left armed"
    );
    // …and the confirmation refreshed the origin's location cache
    let loc = rt
        .server_mut("home")
        .unwrap()
        .locator
        .get(&id)
        .expect("confirmation must refresh the location cache");
    assert_eq!(loc.host, "s0");
}

#[test]
fn redelivery_gives_up_after_max_retries() {
    let mut rt = world(LocationMode::HomeManagers, 1, 4);
    // target never launched anywhere: every delivery attempt strands
    let ghost = NapletId::new("czxu", "home", Millis(99)).unwrap();
    rt.owner_post("home", ghost, Payload::User(Value::Int(1)))
        .unwrap();
    rt.run_to_quiescence(1_000_000);
    let home = rt.server("home").unwrap();
    assert_eq!(
        home.messenger.redeliveries, 5,
        "attempts 2..=6 are redeliveries"
    );
    assert_eq!(home.messenger.redelivery_given_up, 1);
    assert_eq!(home.messenger.outstanding_count(), 0);
}

#[test]
fn permanent_outage_parks_with_failure_record_and_status() {
    let mut rt = world(LocationMode::HomeManagers, 2, 5);
    rt.fabric().schedule_down("s1", 0, u64::MAX);
    let naplet = agent(Pattern::seq_of_hosts(&["s0", "s1"], None), 1);
    let id = naplet.id().clone();
    rt.launch(naplet).unwrap();
    rt.run_to_quiescence(5_000_000);

    let s0 = rt.server("s0").unwrap();
    let parked = s0.parked.get(&id).expect("naplet must be parked at s0");
    let failures = parked.nav_log.failures();
    assert_eq!(failures.len(), 1);
    assert_eq!(failures[0].host, "s1");
    assert!(failures[0].attempts >= 2, "retries precede parking");
    assert!(
        s0.log.iter().any(|e| e.line.starts_with("RETRY")),
        "retransmissions must be logged"
    );
    let home = rt.server("home").unwrap();
    let entry = home.manager.table_entry(&id).unwrap();
    assert_eq!(entry.status, NapletStatus::Parked);
    assert!(rt.fabric().stats().snapshot().retransmits >= 1);
}

#[test]
fn alt_falls_back_to_reachable_branch() {
    let mut rt = world(LocationMode::HomeManagers, 2, 6);
    rt.fabric().schedule_down("s0", 0, u64::MAX);
    let naplet = agent(
        Pattern::alt(Pattern::singleton("s0"), Pattern::singleton("s1")),
        1,
    );
    let id = naplet.id().clone();
    rt.launch(naplet).unwrap();
    rt.run_to_quiescence(5_000_000);

    let reports = rt.drain_reports("home");
    assert_eq!(reports.len(), 1, "journey must still complete");
    let visits = report_list(&reports[0].1, "visits");
    assert_eq!(visits, vec![Value::Str("s1".into())], "Alt must fall back");
    let home = rt.server("home").unwrap();
    assert_eq!(
        home.manager.table_entry(&id).unwrap().status,
        NapletStatus::Completed
    );
    assert!(
        home.log
            .iter()
            .any(|e| e.line.starts_with("HANDOFF failed")),
        "the failed branch must be visible in the log"
    );
}

#[test]
fn duplicate_transfer_is_reacked_but_not_readmitted() {
    let mut cfg = ServerConfig::open("b", LocationMode::ForwardingTrace);
    cfg.codebase = registry();
    let mut server = NapletServer::new(cfg);
    let naplet = agent(Pattern::singleton("b"), 1);
    let id = naplet.id().clone();
    let envelope = TransferEnvelope {
        naplet: naplet.into(),
        action: None,
        transfer_id: 7,
        attempt: 1,
    };

    let acks = |outputs: &[Output]| {
        outputs
            .iter()
            .filter(|o| {
                matches!(
                    o,
                    Output::Send {
                        wire: Wire::TransferAck { transfer_id: 7, .. },
                        ..
                    }
                )
            })
            .count()
    };
    let first = server.handle(
        Millis(10),
        Input::Wire {
            from: "a".into(),
            wire: Wire::Transfer(envelope.clone()),
        },
    );
    assert_eq!(acks(&first), 1);
    // the ack was lost: origin retransmits the same transfer
    let mut retry = envelope;
    retry.attempt = 2;
    let second = server.handle(
        Millis(300),
        Input::Wire {
            from: "a".into(),
            wire: Wire::Transfer(retry),
        },
    );
    assert_eq!(acks(&second), 1, "every attempt is re-acknowledged");
    let arrivals = server
        .log
        .iter()
        .filter(|e| e.line == format!("ARRIVAL {id}"))
        .count();
    assert_eq!(arrivals, 1, "idempotent: admitted exactly once");
    assert!(server
        .log
        .iter()
        .any(|e| e.line.contains("duplicate TRANSFER")));
}

#[test]
fn forward_cap_breaks_chase_cycles() {
    // two servers with opposing stale footprints ping-pong a message
    // until the hop cap drops it
    let build = |host: &str| {
        let cfg = ServerConfig::open(host, LocationMode::ForwardingTrace);
        let mut s = NapletServer::new(cfg);
        s.messenger.forward_cap = 4;
        s
    };
    let mut a = build("a");
    let mut b = build("b");
    let id = NapletId::new("czxu", "home", Millis(50)).unwrap();
    a.manager.record_launch(id.clone(), "a", Millis(0));
    a.manager.record_arrival(&id, None, Millis(0));
    a.manager.record_departure(&id, "b", Millis(1));
    b.manager.record_launch(id.clone(), "b", Millis(0));
    b.manager.record_arrival(&id, None, Millis(0));
    b.manager.record_departure(&id, "a", Millis(2));

    let msg = Message::user(
        1,
        Sender::Owner("home".into()),
        id,
        Millis(3),
        Value::Int(1),
    );
    let mut inputs = vec![(
        "a".to_string(),
        Wire::Post {
            msg,
            origin_host: "home".into(),
        },
    )];
    let mut hops = 0usize;
    while let Some((to, wire)) = inputs.pop() {
        hops += 1;
        assert!(hops < 50, "cycle must terminate");
        let server = if to == "a" { &mut a } else { &mut b };
        let outputs = server.handle(
            Millis(10 + hops as u64),
            Input::Wire {
                from: if to == "a" { "b".into() } else { "a".into() },
                wire,
            },
        );
        for o in outputs {
            if let Output::Send {
                to,
                wire: wire @ Wire::Post { .. },
            } = o
            {
                inputs.push((to, wire));
            }
        }
    }
    assert_eq!(
        a.messenger.undeliverable + b.messenger.undeliverable,
        1,
        "the cap must drop the cycling message exactly once"
    );
    assert!(a.messenger.forwards_performed + b.messenger.forwards_performed <= 4);
}
