//! Location-mode and communication scenarios beyond the basic
//! end-to-end suite: a directory host separate from the home, the
//! location cache, the paper's directory invariant, Alt itineraries
//! and the DataComm collective.

use naplet_core::behavior::NapletBehavior;
use naplet_core::clock::Millis;
use naplet_core::codebase::CodebaseRegistry;
use naplet_core::context::NapletContext;
use naplet_core::credential::SigningKey;
use naplet_core::error::Result;
use naplet_core::itinerary::{ActionSpec, Guard, Itinerary, Pattern, Visit};
use naplet_core::message::Payload;
use naplet_core::naplet::{AgentKind, Naplet};
use naplet_core::value::Value;
use naplet_net::{Bandwidth, Fabric, LatencyModel};
use naplet_server::{DirEvent, LocationMode, MonitorPolicy, ServerConfig, SimRuntime};

const CODEBASE: &str = "probe";

struct Probe;
impl NapletBehavior for Probe {
    fn on_start(&mut self, ctx: &mut dyn NapletContext) -> Result<()> {
        let host = ctx.host_name().to_string();
        let mut visits = match ctx.state().get("visits") {
            Value::List(l) => l,
            _ => Vec::new(),
        };
        visits.push(Value::Str(host));
        ctx.state().set("visits", Value::List(visits));
        let mut inbox = match ctx.state().get("inbox") {
            Value::List(l) => l,
            _ => Vec::new(),
        };
        while let Some(m) = ctx.get_message()? {
            if let Payload::User(v) = m.payload {
                inbox.push(v);
            }
        }
        ctx.state().set("inbox", Value::List(inbox));
        Ok(())
    }
}

fn registry() -> CodebaseRegistry {
    let mut r = CodebaseRegistry::new();
    r.register(CODEBASE, 2048, || Probe);
    r
}

fn key() -> SigningKey {
    SigningKey::new("czxu", b"s")
}

fn world(mode: LocationMode, hosts: &[&str], dwell: u64) -> SimRuntime {
    let fabric = Fabric::new(LatencyModel::Constant(2), Bandwidth::fast_ethernet(), 17);
    let mut rt = SimRuntime::new(fabric);
    for h in hosts {
        let mut cfg = ServerConfig::open(h, mode.clone());
        cfg.codebase = registry().clone();
        cfg.monitor_policy = MonitorPolicy {
            native_dwell_ms: dwell,
            ..MonitorPolicy::default()
        };
        rt.add_server(cfg);
    }
    rt
}

fn probe(route: &[&str], ts: u64) -> Naplet {
    let it = Itinerary::new(Pattern::seq_of_hosts(route, None))
        .unwrap()
        .with_final_action(ActionSpec::ReportHome);
    Naplet::create(
        &key(),
        "czxu",
        "home",
        Millis(ts),
        CODEBASE,
        AgentKind::Native,
        it,
        vec![],
    )
    .unwrap()
}

#[test]
fn dedicated_directory_host_tracks_all_movement() {
    // the directory lives on `dir`, which is neither home nor visited
    let mut rt = world(
        LocationMode::CentralDirectory("dir".into()),
        &["home", "dir", "s0", "s1"],
        5,
    );
    rt.launch(probe(&["s0", "s1"], 1)).unwrap();
    rt.run_to_quiescence(100_000);

    assert_eq!(rt.drain_reports("home").len(), 1);
    let dir = rt.server("dir").unwrap();
    // departures: home, s0, s1(end: removed); arrivals: s0, s1
    assert!(
        dir.directory.registrations >= 4,
        "got {}",
        dir.directory.registrations
    );
    // journey over: the directory forgot the naplet (DirRemove)
    assert_eq!(dir.directory.len(), 0);
}

#[test]
fn directory_invariant_departure_means_in_transit() {
    // paper §4.1: "If the latest registration about a naplet in the
    // directory is a departure from a server, the naplet must be in
    // transmission out of the server. If its latest registration is an
    // arrival at a server, the naplet can be either running in or
    // leaving the server."
    let mut rt = world(
        LocationMode::CentralDirectory("dir".into()),
        &["home", "dir", "s0", "s1"],
        200,
    );
    let naplet = probe(&["s0", "s1"], 1);
    let id = naplet.id().clone();
    rt.launch(naplet).unwrap();

    // sample the directory at many instants and check the invariant
    for t in (0..600).step_by(7) {
        rt.run_until(Millis(t));
        let entry = rt.server("dir").unwrap().directory.lookup(&id).cloned();
        let Some(entry) = entry else { continue };
        let resident_at_entry_host = rt
            .server(&entry.host)
            .map(|s| s.monitor.get(&id).is_some())
            .unwrap_or(false);
        match entry.event {
            DirEvent::Departure => {
                // must NOT be resident at the host it departed
                assert!(
                    !resident_at_entry_host,
                    "t={t}: departed {} yet resident there",
                    entry.host
                );
            }
            DirEvent::Arrival => {
                // may be running in or leaving — no constraint to check
            }
        }
    }
    rt.run_to_quiescence(100_000);
}

#[test]
fn locator_cache_accelerates_repeat_sends() {
    // two owner messages to a naplet parked on a long dwell: the first
    // resolves via the directory, the second hits the location cache
    let mut rt = world(
        LocationMode::CentralDirectory("dir".into()),
        &["home", "dir", "s0"],
        2_000,
    );
    let naplet = probe(&["s0"], 1);
    let id = naplet.id().clone();
    rt.launch(naplet).unwrap();
    rt.run_until(Millis(100)); // resident and dwelling at s0

    rt.owner_post("home", id.clone(), Payload::User(Value::Int(1)))
        .unwrap();
    rt.run_until(Millis(200));
    let (hits_a, misses_a) = {
        let home = rt.server("home").unwrap();
        (home.locator.hits, home.locator.misses)
    };
    rt.owner_post("home", id, Payload::User(Value::Int(2)))
        .unwrap();
    rt.run_until(Millis(300));
    let home = rt.server("home").unwrap();
    assert_eq!(home.locator.misses, misses_a, "second send must not miss");
    assert_eq!(home.locator.hits, hits_a + 1, "second send hits the cache");

    rt.run_to_quiescence(100_000);
    let reports = rt.drain_reports("home");
    assert_eq!(reports.len(), 1);
    // both messages arrived (read on the only visit? they arrived
    // during the dwell, so they were forwarded and read... the journey
    // has a single visit, so they ride along to the journey end and
    // are dropped with the mailbox — delivery was still confirmed)
    let confirmed = {
        let home = rt.server("home").unwrap();
        home.messenger
            .confirmation(&naplet_core::message::Sender::Owner("home".into()), 1)
            .is_some()
    };
    assert!(confirmed);
}

#[test]
fn forwarded_message_counts_a_stale_cache_hit() {
    // message 1 caches the naplet's location at s0; the agent then
    // migrates to s1, so message 2 is routed on a stale hint and has
    // to chase — which must show up in the locator staleness counters
    let mut rt = world(
        LocationMode::CentralDirectory("dir".into()),
        &["home", "dir", "s0", "s1"],
        200,
    );
    let naplet = probe(&["s0", "s1"], 1);
    let id = naplet.id().clone();
    rt.launch(naplet).unwrap();
    rt.run_until(Millis(100)); // resident and dwelling at s0

    rt.owner_post("home", id.clone(), Payload::User(Value::Int(1)))
        .unwrap();
    rt.run_until(Millis(150)); // delivered; hint "s0" cached at home
    let stale_before = rt.obs().metrics.counter("locator_cache_stale_hits");
    rt.run_until(Millis(350)); // dwell over: the agent moved on to s1

    rt.owner_post("home", id, Payload::User(Value::Int(2)))
        .unwrap();
    rt.run_to_quiescence(100_000);
    let stale_after = rt.obs().metrics.counter("locator_cache_stale_hits");
    assert!(
        stale_after > stale_before,
        "the chased delivery must count a stale cache hit \
         (before {stale_before}, after {stale_after})"
    );
    let home = rt.server("home").unwrap();
    assert!(
        home.messenger
            .confirmation(&naplet_core::message::Sender::Owner("home".into()), 2)
            .is_some(),
        "message 2 still reaches the agent via the chase"
    );
    assert!(
        rt.obs().metrics.counter("locator_cache_hits") >= 1,
        "message 2's first hop was served from the (stale) cache"
    );
}

#[test]
fn alt_itinerary_picks_reachable_alternative_end_to_end() {
    let mut rt = world(
        LocationMode::ForwardingTrace,
        &["home", "mirror", "origin"],
        5,
    );
    // the guard consults carried state: mirror is marked down
    let p = Pattern::alt(
        Pattern::visit(Visit::to("mirror").when(Guard::state_truthy("mirror-up"))),
        Pattern::singleton("origin"),
    );
    let it = Itinerary::new(p)
        .unwrap()
        .with_final_action(ActionSpec::ReportHome);
    let mut naplet = Naplet::create(
        &key(),
        "czxu",
        "home",
        Millis(1),
        CODEBASE,
        AgentKind::Native,
        it,
        vec![],
    )
    .unwrap();
    naplet.state.set("mirror-up", false);
    rt.launch(naplet).unwrap();
    rt.run_to_quiescence(100_000);
    let reports = rt.drain_reports("home");
    let visits = reports[0].1.get("visits");
    assert_eq!(visits.as_list().unwrap(), &[Value::from("origin")]);
}

#[test]
fn datacomm_collective_exchanges_state_between_clones() {
    // par of two branches with a DataComm action after each branch:
    // each executor posts its `datacomm` payload to every known peer
    let mut rt = world(
        LocationMode::CentralDirectory("home".into()),
        &["home", "s0", "s1"],
        50,
    );
    let p = Pattern::par_with_action(
        vec![Pattern::singleton("s0"), Pattern::singleton("s1")],
        ActionSpec::DataComm,
    );
    let it = Itinerary::new(p)
        .unwrap()
        .with_final_action(ActionSpec::ReportHome);
    let mut naplet = Naplet::create(
        &key(),
        "czxu",
        "home",
        Millis(1),
        CODEBASE,
        AgentKind::Native,
        it,
        vec![],
    )
    .unwrap();
    naplet.state.set("datacomm", "findings-from-me");
    rt.launch(naplet).unwrap();
    rt.run_to_quiescence(100_000);

    // the originator ran DataComm and ReportHome; the clone ran DataComm
    let reports = rt.drain_reports("home");
    assert_eq!(reports.len(), 1);
    // at least one message travelled between the agents
    let snap = rt.fabric().stats().snapshot();
    assert!(
        snap.messages(naplet_net::TrafficClass::Message) >= 1,
        "datacomm should post peer messages"
    );
}

#[test]
fn revisiting_itinerary_keeps_footprint_history() {
    let mut rt = world(LocationMode::ForwardingTrace, &["home", "s0", "s1"], 5);
    rt.launch(probe(&["s0", "s1", "s0", "s1"], 1)).unwrap();
    rt.run_to_quiescence(100_000);
    let reports = rt.drain_reports("home");
    assert_eq!(
        reports[0].1.get("visits").as_list().unwrap().len(),
        4,
        "all four (revisiting) hops happen"
    );
    // each worker holds two footprints for the naplet
    let s0 = rt.server("s0").unwrap();
    let id = &reports[0].0;
    assert_eq!(s0.manager.footprints(id).len(), 2);
}

#[test]
fn two_agents_message_each_other_via_address_books() {
    // a stationary "anchor" agent parks at s1; a "courier" visits s0
    // and posts to the anchor via its address book hint
    struct Anchor;
    impl NapletBehavior for Anchor {
        fn on_start(&mut self, ctx: &mut dyn NapletContext) -> Result<()> {
            // collect whatever arrives, report it
            let mut got = Vec::new();
            while let Some(m) = ctx.get_message()? {
                if let Payload::User(v) = m.payload {
                    got.push(v);
                }
            }
            if !got.is_empty() {
                ctx.report_home(Value::List(got))?;
            }
            Ok(())
        }
    }
    struct Courier;
    impl NapletBehavior for Courier {
        fn on_start(&mut self, ctx: &mut dyn NapletContext) -> Result<()> {
            let peer_text = ctx.state().get("peer");
            let peer: naplet_core::NapletId = peer_text.as_str().unwrap().parse().unwrap();
            ctx.post_message(&peer, Value::from("psst"))?;
            Ok(())
        }
    }
    let mut reg = CodebaseRegistry::new();
    reg.register("anchor", 512, || Anchor);
    reg.register("courier", 512, || Courier);

    let fabric = Fabric::new(LatencyModel::Constant(2), Bandwidth(None), 3);
    let mut rt = SimRuntime::new(fabric);
    for h in ["home", "s0", "s1"] {
        let mut cfg = ServerConfig::open(h, LocationMode::CentralDirectory("home".into()));
        cfg.codebase = reg.clone();
        if h == "s1" {
            // park the anchor long enough for the courier's message
            cfg.monitor_policy = MonitorPolicy {
                native_dwell_ms: 200,
                ..MonitorPolicy::default()
            };
        }
        rt.add_server(cfg);
    }

    // anchor: long dwell at s1 then revisit to read mail
    let anchor_it = Itinerary::new(Pattern::seq_of_hosts(&["s1", "s1"], None)).unwrap();
    let anchor = Naplet::create(
        &key(),
        "czxu",
        "home",
        Millis(1),
        "anchor",
        AgentKind::Native,
        anchor_it,
        vec![],
    )
    .unwrap();
    let anchor_id = anchor.id().clone();
    rt.launch(anchor).unwrap();
    rt.run_until(Millis(30)); // anchor resident at s1

    let courier_it = Itinerary::new(Pattern::seq_of_hosts(&["s0"], None)).unwrap();
    let mut courier = Naplet::create(
        &key(),
        "czxu",
        "home",
        Millis(2),
        "courier",
        AgentKind::Native,
        courier_it,
        vec![],
    )
    .unwrap();
    courier.state.set("peer", anchor_id.to_string());
    courier.address_book.put(anchor_id, "s1");
    rt.launch(courier).unwrap();
    rt.run_to_quiescence(100_000);

    let reports = rt.drain_reports("home");
    assert!(
        reports.iter().any(|(_, r)| r
            .as_list()
            .map(|l| l.contains(&Value::from("psst")))
            .unwrap_or(false)),
        "anchor should have received the courier's message: {reports:?}"
    );
}

#[test]
fn directory_outage_does_not_stall_arrivals() {
    // liveness no longer depends on the directory in CentralDirectory
    // mode: the arrival registration is retransmitted with backoff,
    // and when the directory stays down past the retry budget the
    // server stops gating and executes anyway (a stale directory is
    // repaired by the forwarding chase; a stranded agent is not).
    let mut rt = world(
        LocationMode::CentralDirectory("dir".into()),
        &["home", "dir", "s0"],
        5,
    );
    rt.fabric().take_down("dir");
    let naplet = probe(&["s0"], 1);
    let id = naplet.id().clone();
    rt.launch(naplet).unwrap();
    rt.run_to_quiescence(100_000);

    assert!(rt.dropped > 0, "registration traffic must be dropped");
    let s0 = rt.server("s0").unwrap();
    assert!(
        s0.log.iter().any(|e| e.line.starts_with("RETRY register")),
        "registration retransmissions must be logged"
    );
    assert!(
        s0.log.iter().any(|e| e.line.contains("REGISTER unacked")),
        "the give-up must be visible in the log"
    );
    assert!(s0.monitor.get(&id).is_none(), "the visit must have run");
    assert_eq!(
        rt.drain_reports("home").len(),
        1,
        "journey must complete despite the dead directory"
    );

    // forwarding mode never had the dependence: same outage, same route
    let mut rt = world(LocationMode::ForwardingTrace, &["home", "dir", "s0"], 5);
    rt.fabric().take_down("dir");
    rt.launch(probe(&["s0"], 2)).unwrap();
    rt.run_to_quiescence(100_000);
    assert_eq!(rt.drain_reports("home").len(), 1);
}
